//! Quickstart: profile a design, run a small TEESec campaign against it,
//! and print every vulnerability class the checker uncovers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use teesec::campaign::Campaign;
use teesec::fuzz::Fuzzer;
use teesec::VerificationPlan;
use teesec_uarch::CoreConfig;

fn main() {
    // 1. Pick a design under test: the BOOM-like preset (try
    //    `CoreConfig::xiangshan()` for the other core, or build your own).
    let design = CoreConfig::boom();

    // 2. The verification plan profiles the microarchitecture: storage
    //    elements, access paths and their permission-check policies, and
    //    the TEE API surface.
    let plan = VerificationPlan::profile(&design);
    println!("verification plan for `{}`:", plan.design);
    println!("  storage elements : {}", plan.storage.elements.len());
    println!("  access paths     : {}", plan.path_count());
    println!(
        "  weakly checked   : {} (unchecked or lazily checked)",
        plan.weakly_checked_paths().count()
    );

    // 3. Run a campaign: the fuzzer generates test cases from the gadget
    //    catalog, each case executes on the simulated Keystone platform,
    //    and the checker scans the trace for P1/P2 violations.
    let (result, _) = Campaign::new(design, Fuzzer::with_target(60)).run();
    println!(
        "\ncampaign: {} cases, avg {} cycles/case",
        result.case_count,
        result.avg_cycles()
    );
    println!("vulnerability classes discovered:");
    for class in &result.classes_found {
        println!("  {class}: {}", class.description());
    }
    let leaking = result.leaking_cases().count();
    println!(
        "\n{leaking}/{} cases surfaced at least one classified leak.",
        result.case_count
    );
}
