//! Case study D1, built **by hand** against the platform API (no fuzzer):
//! the untrusted host touches the last doubleword before a PMP-protected
//! enclave region; the next-line prefetcher pulls the first enclave line
//! into the line-fill buffer without any permission check (paper Figure 2).
//!
//! ```sh
//! cargo run --release --example case_d1_prefetcher
//! ```

use teesec::secret::secret_for;
use teesec_isa::reg::Reg;
use teesec_tee::layout;
use teesec_tee::platform::Platform;
use teesec_uarch::trace::{FillPurpose, Structure, TraceEventKind};
use teesec_uarch::CoreConfig;

fn main() {
    let enclave_line = layout::enclave_base(0);
    let boundary = enclave_line - 8; // last doubleword of the adjacent page
    let secret = secret_for(enclave_line);

    // Build the scenario directly on the platform: a created (never run)
    // enclave whose first line holds a secret, and a host that reads right
    // up against the protection boundary.
    let mut platform = Platform::builder(CoreConfig::boom())
        .seed_u64(enclave_line, secret)
        .host_code(move |a, _| {
            // The faultless access at the boundary (Figure 2's `ld a5`).
            a.li(Reg::A4, boundary);
            a.ld(Reg::A5, Reg::A4, 0);
            // Idle while the asynchronous prefetch lands.
            for _ in 0..64 {
                a.nop();
            }
        })
        .build()
        .expect("build platform");

    platform.run(1_000_000);
    assert!(platform.core.halted, "host program must complete");

    println!(
        "host accessed {boundary:#x} (allowed); enclave line at {enclave_line:#x} is PMP-protected"
    );
    let mut leaked = false;
    for e in platform.core.trace.for_structure(Structure::Lfb) {
        if let TraceEventKind::Fill {
            addr,
            data,
            purpose,
        } = &e.kind
        {
            let hit = data[..8] == secret.to_le_bytes();
            println!(
                "cycle {:>5}: LFB fill line {addr:#x} purpose {purpose:?} domain {:?}{}",
                e.cycle,
                e.domain,
                if hit { "  <-- enclave secret!" } else { "" }
            );
            if hit && *purpose == FillPurpose::Prefetch {
                leaked = true;
            }
        }
    }
    assert!(
        leaked,
        "the unchecked prefetch must have pulled the enclave line"
    );
    println!("\nD1 reproduced: the prefetcher crossed the PMP boundary with no check.");
    println!("(Run with CoreConfig::xiangshan() and the assertion fails: no L1 prefetcher.)");
}
