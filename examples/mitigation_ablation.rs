//! Mitigation ablation: sweep every Table 4 countermeasure on both designs
//! and report (a) which vulnerability classes it eliminates and (b) what it
//! costs in simulated cycles on a representative enclave workload — the
//! performance question the paper leaves to future work (§8).
//!
//! ```sh
//! cargo run --release --example mitigation_ablation -- 120
//! ```

use teesec::assemble::{assemble_case, CaseParams, Lifecycle};
use teesec::campaign::Campaign;
use teesec::fuzz::Fuzzer;
use teesec::paths::AccessPath;
use teesec::runner::run_case;
use teesec_uarch::config::MitigationSet;
use teesec_uarch::CoreConfig;

fn variants() -> Vec<(&'static str, MitigationSet)> {
    vec![
        ("baseline", MitigationSet::default()),
        (
            "flush_l1d",
            MitigationSet {
                flush_l1d_on_domain_switch: true,
                ..Default::default()
            },
        ),
        (
            "flush_sb",
            MitigationSet {
                flush_store_buffer_on_domain_switch: true,
                ..Default::default()
            },
        ),
        (
            "clear_illegal",
            MitigationSet {
                clear_illegal_data_returns: true,
                ..Default::default()
            },
        ),
        (
            "flush_lfb",
            MitigationSet {
                flush_lfb_on_domain_switch: true,
                ..Default::default()
            },
        ),
        (
            "flush_bpu_hpc",
            MitigationSet {
                flush_bpu_on_domain_switch: true,
                clear_hpc_on_domain_switch: true,
                ..Default::default()
            },
        ),
        (
            "serialize_pmp",
            MitigationSet {
                serialize_pmp_check: true,
                ..Default::default()
            },
        ),
        (
            "tag_bpu",
            MitigationSet {
                tag_bpu_with_domain: true,
                ..Default::default()
            },
        ),
        ("flush_everything", MitigationSet::flush_everything()),
        ("all", MitigationSet::all()),
    ]
}

/// Simulated cycles of a stop/resume-heavy enclave workload.
fn workload_cycles(cfg: &CoreConfig) -> u64 {
    let params = CaseParams {
        lifecycle: Lifecycle::StopResumeStop,
        warm_via_stores: true,
        ..CaseParams::default()
    };
    let tc = assemble_case(AccessPath::LoadL1Hit, params, cfg).expect("workload");
    run_case(&tc, cfg).expect("run").cycles
}

fn main() {
    let cases: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    for base in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        println!("=== design: {} ({cases}-case corpus) ===", base.name);
        let mut baseline_cycles = 0;
        for (label, m) in variants() {
            let cfg = base.clone().with_mitigations(m);
            let (result, _) = Campaign::new(cfg.clone(), Fuzzer::with_target(cases)).run();
            let cycles = workload_cycles(&cfg);
            if label == "baseline" {
                baseline_cycles = cycles;
            }
            let overhead = if baseline_cycles > 0 {
                100.0 * (cycles as f64 - baseline_cycles as f64) / baseline_cycles as f64
            } else {
                0.0
            };
            println!(
                "{label:<18} classes {:<34} workload {:>7} cycles ({overhead:+6.1}%)",
                format!("{:?}", result.classes_found),
                cycles
            );
        }
        println!();
    }
}
