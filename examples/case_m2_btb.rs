//! Case study M2, built by hand: host and enclave conditional branches
//! whose PCs differ only in bits excluded from the uBTB's partial tag
//! collide in one entry; the entry trained inside the enclave survives the
//! context switch and is observable by the host (paper Figure 7).
//!
//! ```sh
//! cargo run --release --example case_m2_btb
//! ```

use teesec_isa::reg::Reg;
use teesec_tee::platform::{emit_sbi_call, Platform};
use teesec_tee::{layout, SbiCall};
use teesec_uarch::trace::Domain;
use teesec_uarch::CoreConfig;

/// Pads to `offset` within the region, then emits a conditional branch
/// taken iff `taken`.
fn branch_at(a: &mut teesec_isa::asm::Assembler, base: u64, offset: u64, taken: bool, tag: &str) {
    while a.cursor() + 4 < base + offset {
        a.nop();
    }
    a.addi(Reg::T4, Reg::ZERO, if taken { 0 } else { 1 });
    let label = format!("after_{tag}");
    a.beqz(Reg::T4, &label);
    a.nop();
    a.label(label);
}

fn main() {
    const OFF: u64 = 0x400;
    let host_pc = layout::HOST_BASE + OFF;
    let encl_pc = layout::enclave_base(0) + OFF;

    let mut platform = Platform::builder(CoreConfig::xiangshan())
        .enclave_code(0, |a, lay| {
            // The victim's secret-dependent branch (taken here).
            branch_at(a, lay.enclave_bases[0], OFF, true, "enclave");
        })
        .host_code(|a, lay| {
            // Prime: host branch at the colliding offset.
            branch_at(a, lay.host_base, OFF, true, "host");
            emit_sbi_call(a, SbiCall::RunEnclave, 0);
            // Probe happens by inspecting predictor state below; a real
            // attacker would time a re-execution of the branch.
        })
        .build()
        .expect("build platform");
    platform.run(2_000_000);
    assert!(platform.core.halted);

    let ubtb = &platform.core.ubtb;
    println!(
        "host branch   : {host_pc:#x} (index {}, tag {:#x})",
        ubtb.index(host_pc),
        ubtb.tag(host_pc)
    );
    println!(
        "enclave branch: {encl_pc:#x} (index {}, tag {:#x})",
        ubtb.index(encl_pc),
        ubtb.tag(encl_pc)
    );
    assert!(ubtb.collides(host_pc, encl_pc), "partial tags must collide");

    let entry = ubtb
        .predict(host_pc)
        .expect("entry survives the context switch");
    println!(
        "entry hit by the HOST pc after enclave exit: trained by {:?} at {:#x} -> {:#x}",
        entry.train_domain, entry.train_pc, entry.target
    );
    assert_eq!(entry.train_domain, Domain::Enclave(0));
    assert_ne!(
        entry.train_pc, host_pc,
        "the entry belongs to the enclave's branch"
    );
    println!("\nM2 reproduced: enclave branch metadata is observable through uBTB");
    println!("collisions — the BPU is not flushed at enclave context switches.");
}
