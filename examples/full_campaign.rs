//! Full reproduction campaign: the paper's 585-case corpus against both
//! BOOM-like and XiangShan-like designs, ending with the Table 3 matrix
//! and a serialized JSON report.
//!
//! ```sh
//! cargo run --release --example full_campaign            # 585 cases/design
//! cargo run --release --example full_campaign -- 100     # smaller corpus
//! ```

use std::fs;

use teesec::campaign::{vulnerability_matrix, Campaign};
use teesec::fuzz::Fuzzer;
use teesec_uarch::CoreConfig;

fn main() {
    let cases: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("case count must be a number"))
        .unwrap_or(teesec::fuzz::PAPER_TEST_CASE_COUNT);

    let mut results = Vec::new();
    for design in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        println!("running {cases}-case campaign on `{}`...", design.name);
        let (result, _) = Campaign::new(design, Fuzzer::with_target(cases)).run();
        println!(
            "  {} cases, {} leaking, classes: {:?}",
            result.case_count,
            result.leaking_cases().count(),
            result.classes_found
        );
        println!(
            "  phase costs: construct {} ms, simulate {} ms, check {} ms",
            result.timing.construct_us / 1000,
            result.timing.simulate_us / 1000,
            result.timing.check_us / 1000
        );
        results.push(result);
    }

    println!(
        "\n{}",
        vulnerability_matrix(&results.iter().collect::<Vec<_>>())
    );

    let json = serde_json::to_string_pretty(&results).expect("serialize");
    let path = "campaign_results.json";
    fs::write(path, json).expect("write report");
    println!("full per-case results written to {path}");
}
