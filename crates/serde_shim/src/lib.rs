//! An offline, in-repo stand-in for the `serde` facade.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small serialization surface it actually uses. The model is a
//! concrete JSON-like [`Value`] tree rather than serde's visitor machinery:
//!
//! * [`Serialize`] converts `&self` into a [`Value`];
//! * [`Deserialize`] reconstructs `Self` from a [`&Value`][Value];
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the in-repo
//!   `serde_derive`) generates both for structs and enums, honouring
//!   field-level `#[serde(skip)]`.
//!
//! The `serde_json` shim renders and parses [`Value`] as real JSON, so all
//! existing `serde_json::to_string`/`from_str` round trips keep working.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Integers keep 128-bit precision so `u64` secrets and `u128` timing
/// fields round-trip exactly (floats would not).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u128),
    /// A negative integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|pairs| object_get(pairs, key))
    }
}

/// First value bound to `key` in an object's pair list.
pub fn object_get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An arbitrary error message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// The value had the wrong shape; `expected` describes what was needed.
    pub fn invalid_type(expected: &str) -> Error {
        Error(format!("invalid type: expected {expected}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> Error {
        Error(format!("missing field `{field}`"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(ty: &str, tag: &str) -> Error {
        Error(format!("unknown {ty} variant `{tag}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent from the serialized object.
    /// Errors by default; `Option<T>` treats absence as `None`.
    fn absent(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::invalid_type(stringify!($t))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::invalid_type(stringify!($t))),
                    _ => Err(Error::invalid_type(stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u128) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::invalid_type(stringify!($t))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::invalid_type(stringify!($t))),
                    _ => Err(Error::invalid_type(stringify!($t))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);
impl_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::invalid_type("bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(Error::invalid_type("f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::invalid_type("single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::invalid_type("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::invalid_type("array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items).map_err(|_| Error::invalid_type("fixed-size array"))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::invalid_type("array")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::invalid_type("tuple array"))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::invalid_type("tuple array of matching arity"));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types usable as JSON object keys (strings and integers; integers render
/// in decimal).
pub trait JsonKey: Sized {
    /// The key's string form.
    fn to_key(&self) -> String;
    /// Parses the string form back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::invalid_type(stringify!($t key)))
            }
        }
    )*};
}

impl_json_key_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs = value
            .as_object()
            .ok_or_else(|| Error::invalid_type("object map"))?;
        pairs
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs = value
            .as_object()
            .ok_or_else(|| Error::invalid_type("object map"))?;
        pairs
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}
