//! The in-flight metrics hub: latest rendered artifacts plus a bounded
//! event ring with per-subscriber cursors and drop accounting.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use teesec_trace::Tracer;

/// Default capacity of the event ring: enough to absorb a burst of
/// per-case events between SSE flushes without unbounded memory.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Latest rendered artifacts, swapped in whole by the publisher.
#[derive(Debug, Default)]
struct Artifacts {
    /// Rendered Prometheus text for `GET /metrics`.
    metrics: Option<String>,
    /// Rendered status JSON for `GET /status`.
    status: Option<String>,
    /// Rendered coverage report JSON for `GET /coverage`.
    coverage: Option<String>,
    /// Tracer to snapshot on demand for `GET /trace`.
    tracer: Option<Tracer>,
}

/// One subscriber's position in the ring.
#[derive(Debug)]
struct Cursor {
    /// Next unseen event id.
    next: u64,
    /// Events evicted past this cursor since its last read (surfaced as
    /// the batch `gap`, already counted in the hub's dropped total).
    lost: u64,
}

/// The bounded event ring. Event ids are 1-based and monotonic; the ring
/// holds the tail `capacity` events. Each registered subscriber keeps a
/// "next unseen id" cursor in the ring so evictions past a live cursor are
/// counted as drops.
#[derive(Debug)]
struct EventRing {
    events: VecDeque<(u64, String)>,
    capacity: usize,
    next_id: u64,
    /// Subscriber token → cursor.
    cursors: BTreeMap<u64, Cursor>,
}

impl EventRing {
    fn new(capacity: usize) -> EventRing {
        EventRing {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            next_id: 1,
            cursors: BTreeMap::new(),
        }
    }

    /// Oldest id still buffered (equals `next_id` when empty).
    fn first_id(&self) -> u64 {
        self.events.front().map_or(self.next_id, |(id, _)| *id)
    }

    /// Appends one event; returns its id and how many live-subscriber
    /// reads were lost to the eviction (0 or the number of lagging
    /// subscribers whose cursor pointed at the evicted event).
    fn push(&mut self, line: &str) -> (u64, u64) {
        let id = self.next_id;
        self.next_id += 1;
        self.events.push_back((id, line.to_string()));
        let mut dropped = 0u64;
        while self.events.len() > self.capacity {
            let (evicted, _) = self.events.pop_front().expect("non-empty ring");
            for cursor in self.cursors.values_mut() {
                if cursor.next <= evicted {
                    dropped += 1;
                    cursor.lost += 1;
                    cursor.next = evicted + 1;
                }
            }
        }
        (id, dropped)
    }
}

#[derive(Debug)]
struct HubInner {
    artifacts: Mutex<Artifacts>,
    ring: Mutex<EventRing>,
    /// Signals subscribers when events arrive or the campaign completes.
    ring_cv: Condvar,
    /// Total events dropped: ring evictions past a live cursor plus resume
    /// gaps acknowledged to late subscribers.
    dropped: AtomicU64,
    /// Whether a producer is attached (`teesec_up`).
    up: AtomicBool,
    /// Whether the campaign has finished (SSE streams drain and end).
    complete: AtomicBool,
    /// Campaign progress in parts per million.
    progress_ppm: AtomicU64,
    next_token: AtomicU64,
}

/// The in-flight publication point between the campaign engine and the
/// telemetry server. Cloning shares the hub (engine and server each hold
/// one).
///
/// ```
/// use teesec_telemetry::MetricsHub;
///
/// let hub = MetricsHub::new(16);
/// hub.publish_metrics("teesec_up 1\n".to_string());
/// hub.push_event("{\"event\":\"CaseStarted\"}");
/// assert_eq!(hub.metrics().as_deref(), Some("teesec_up 1\n"));
/// let mut sub = hub.subscribe(None);
/// let batch = sub.next_batch(std::time::Duration::from_millis(10));
/// assert_eq!(batch.events.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MetricsHub {
    inner: Arc<HubInner>,
}

impl Default for MetricsHub {
    fn default() -> MetricsHub {
        MetricsHub::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl MetricsHub {
    /// A hub whose event ring buffers at most `event_capacity` events.
    pub fn new(event_capacity: usize) -> MetricsHub {
        MetricsHub {
            inner: Arc::new(HubInner {
                artifacts: Mutex::default(),
                ring: Mutex::new(EventRing::new(event_capacity)),
                ring_cv: Condvar::new(),
                dropped: AtomicU64::new(0),
                up: AtomicBool::new(false),
                complete: AtomicBool::new(false),
                progress_ppm: AtomicU64::new(0),
                next_token: AtomicU64::new(1),
            }),
        }
    }

    fn artifacts(&self) -> std::sync::MutexGuard<'_, Artifacts> {
        self.inner.artifacts.lock().expect("hub artifacts poisoned")
    }

    fn ring(&self) -> std::sync::MutexGuard<'_, EventRing> {
        self.inner.ring.lock().expect("hub event ring poisoned")
    }

    /// Swaps in a freshly rendered Prometheus scrape body.
    pub fn publish_metrics(&self, text: String) {
        self.artifacts().metrics = Some(text);
    }

    /// Swaps in a freshly rendered `/status` JSON body.
    pub fn publish_status(&self, json: String) {
        self.artifacts().status = Some(json);
    }

    /// Swaps in a freshly rendered `/coverage` report JSON body.
    pub fn publish_coverage(&self, json: String) {
        self.artifacts().coverage = Some(json);
    }

    /// Attaches the campaign tracer so `/trace` can snapshot mid-flight.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.artifacts().tracer = Some(tracer);
    }

    /// The latest published Prometheus scrape body, if any.
    pub fn metrics(&self) -> Option<String> {
        self.artifacts().metrics.clone()
    }

    /// The latest published status JSON, if any.
    pub fn status(&self) -> Option<String> {
        self.artifacts().status.clone()
    }

    /// The latest published coverage report JSON, if any.
    pub fn coverage(&self) -> Option<String> {
        self.artifacts().coverage.clone()
    }

    /// A Chrome-trace JSON snapshot of the attached tracer, if one is
    /// attached and enabled.
    pub fn trace_json(&self) -> Option<String> {
        let tracer = self.artifacts().tracer.clone()?;
        if !tracer.enabled() {
            return None;
        }
        Some(tracer.snapshot().to_chrome_json())
    }

    /// Marks the producer attached (`true`) or gone (`false`).
    pub fn set_up(&self, up: bool) {
        self.inner.up.store(up, Ordering::Relaxed);
    }

    /// Whether a producer is attached.
    pub fn up(&self) -> bool {
        self.inner.up.load(Ordering::Relaxed)
    }

    /// Marks the campaign finished; wakes every SSE subscriber so streams
    /// drain their tail and end.
    pub fn set_complete(&self, complete: bool) {
        self.inner.complete.store(complete, Ordering::Relaxed);
        self.inner.ring_cv.notify_all();
    }

    /// Whether the campaign has finished.
    pub fn complete(&self) -> bool {
        self.inner.complete.load(Ordering::Relaxed)
    }

    /// Publishes campaign progress in parts per million (0..=1_000_000).
    pub fn set_progress_ppm(&self, ppm: u64) {
        self.inner.progress_ppm.store(ppm, Ordering::Relaxed);
    }

    /// Latest published progress in parts per million.
    pub fn progress_ppm(&self) -> u64 {
        self.inner.progress_ppm.load(Ordering::Relaxed)
    }

    /// Appends one event line to the ring and wakes subscribers. Returns
    /// the event's id. Evictions that overrun a registered subscriber's
    /// cursor bump the dropped counter.
    pub fn push_event(&self, line: &str) -> u64 {
        let (id, dropped) = self.ring().push(line);
        if dropped > 0 {
            self.inner.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        self.inner.ring_cv.notify_all();
        id
    }

    /// Total events lost to lagging or late subscribers so far — the value
    /// of `teesec_events_dropped_total`.
    pub fn events_dropped_total(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Opens a subscription on the event ring. With `last_event_id` the
    /// stream resumes after that id; events already evicted are accounted
    /// as a gap (dropped counter bumped, [`EventBatch::gap`] set once).
    pub fn subscribe(&self, last_event_id: Option<u64>) -> Subscription {
        let mut ring = self.ring();
        let resume_from = last_event_id.map_or(0, |id| id + 1).max(1);
        let first = ring.first_id();
        let (cursor, gap) = if resume_from < first {
            (first, first - resume_from)
        } else {
            (resume_from, 0)
        };
        if gap > 0 {
            self.inner.dropped.fetch_add(gap, Ordering::Relaxed);
        }
        let token = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
        ring.cursors.insert(
            token,
            Cursor {
                next: cursor,
                lost: gap,
            },
        );
        drop(ring);
        Subscription {
            hub: self.clone(),
            token,
        }
    }
}

/// One read from a [`Subscription`].
#[derive(Debug, Clone, Default)]
pub struct EventBatch {
    /// `(id, line)` pairs in id order; empty on timeout.
    pub events: Vec<(u64, String)>,
    /// Events skipped since the previous read (evicted before delivery).
    pub gap: u64,
    /// Whether the campaign is complete (streams should drain and end).
    pub complete: bool,
}

/// A registered cursor on a hub's event ring. Dropping unregisters it, so
/// a disconnected SSE client stops counting toward drop accounting.
#[derive(Debug)]
pub struct Subscription {
    hub: MetricsHub,
    token: u64,
}

impl Subscription {
    /// Blocks up to `timeout` for events past this subscription's cursor.
    /// Advances the cursor past everything returned. A batch with empty
    /// `events`, zero `gap`, and `complete` false is a plain timeout.
    pub fn next_batch(&mut self, timeout: Duration) -> EventBatch {
        let mut ring = self.hub.ring();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let cursor = ring.cursors.get_mut(&self.token).expect("live cursor");
            // Evictions advanced the cursor and recorded what was lost;
            // surface that as this batch's gap.
            let gap = std::mem::take(&mut cursor.lost);
            let start = cursor.next;
            let events: Vec<(u64, String)> = ring
                .events
                .iter()
                .filter(|(id, _)| *id >= start)
                .cloned()
                .collect();
            let complete = self.hub.complete();
            if !events.is_empty() || gap > 0 || complete {
                let next = events.last().map_or(start, |(id, _)| id + 1);
                let cursor = ring.cursors.get_mut(&self.token).expect("live cursor");
                cursor.next = next;
                return EventBatch {
                    events,
                    gap,
                    complete,
                };
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return EventBatch::default();
            }
            let (guard, result) = self
                .hub
                .inner
                .ring_cv
                .wait_timeout(ring, deadline - now)
                .expect("hub event ring poisoned");
            ring = guard;
            if result.timed_out() {
                // Re-check once more under the lock before giving up.
                continue;
            }
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.hub.ring().cursors.remove(&self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_swap_in_whole() {
        let hub = MetricsHub::new(8);
        assert_eq!(hub.metrics(), None);
        hub.publish_metrics("a 1\n".to_string());
        hub.publish_metrics("a 2\n".to_string());
        assert_eq!(hub.metrics().as_deref(), Some("a 2\n"));
        hub.publish_status("{}".to_string());
        assert_eq!(hub.status().as_deref(), Some("{}"));
        assert_eq!(hub.coverage(), None);
    }

    #[test]
    fn event_ids_are_monotonic_from_one() {
        let hub = MetricsHub::new(8);
        assert_eq!(hub.push_event("a"), 1);
        assert_eq!(hub.push_event("b"), 2);
        assert_eq!(hub.push_event("c"), 3);
    }

    #[test]
    fn eviction_without_subscribers_drops_nothing() {
        let hub = MetricsHub::new(2);
        for i in 0..10 {
            hub.push_event(&format!("e{i}"));
        }
        assert_eq!(hub.events_dropped_total(), 0);
    }

    #[test]
    fn slow_subscriber_is_overrun_and_counted() {
        let hub = MetricsHub::new(2);
        let mut sub = hub.subscribe(None);
        for i in 0..5 {
            hub.push_event(&format!("e{i}"));
        }
        // Ring holds e3, e4; cursor started at 1 so e0..=e2 were dropped.
        assert_eq!(hub.events_dropped_total(), 3);
        let batch = sub.next_batch(Duration::from_millis(50));
        assert_eq!(batch.gap, 3);
        let lines: Vec<&str> = batch.events.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(lines, ["e3", "e4"]);
    }

    #[test]
    fn resume_with_last_event_id_skips_delivered_events() {
        let hub = MetricsHub::new(16);
        for i in 0..6 {
            hub.push_event(&format!("e{i}"));
        }
        let mut sub = hub.subscribe(Some(4));
        let batch = sub.next_batch(Duration::from_millis(50));
        assert_eq!(batch.gap, 0);
        let ids: Vec<u64> = batch.events.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, [5, 6]);
    }

    #[test]
    fn resume_past_eviction_reports_gap_and_bumps_dropped() {
        let hub = MetricsHub::new(2);
        for i in 0..10 {
            hub.push_event(&format!("e{i}"));
        }
        // Ring holds ids 9, 10; resuming after id 2 misses 3..=8.
        let mut sub = hub.subscribe(Some(2));
        assert_eq!(hub.events_dropped_total(), 6);
        let batch = sub.next_batch(Duration::from_millis(50));
        assert_eq!(batch.gap, 6);
        let ids: Vec<u64> = batch.events.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, [9, 10]);
    }

    #[test]
    fn next_batch_times_out_empty_when_idle() {
        let hub = MetricsHub::new(8);
        let mut sub = hub.subscribe(None);
        let batch = sub.next_batch(Duration::from_millis(20));
        assert!(batch.events.is_empty());
        assert_eq!(batch.gap, 0);
        assert!(!batch.complete);
    }

    #[test]
    fn completion_wakes_subscribers_with_complete_flag() {
        let hub = MetricsHub::new(8);
        let waiter = {
            let hub = hub.clone();
            std::thread::spawn(move || {
                let mut sub = hub.subscribe(None);
                sub.next_batch(Duration::from_secs(10))
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        hub.set_complete(true);
        let batch = waiter.join().expect("subscriber thread");
        assert!(batch.complete);
    }

    #[test]
    fn dropped_subscription_unregisters_its_cursor() {
        let hub = MetricsHub::new(2);
        let sub = hub.subscribe(None);
        drop(sub);
        for i in 0..10 {
            hub.push_event(&format!("e{i}"));
        }
        assert_eq!(hub.events_dropped_total(), 0);
    }

    #[test]
    fn cross_thread_delivery_preserves_order() {
        let hub = MetricsHub::new(1024);
        let mut sub = hub.subscribe(None);
        let producer = {
            let hub = hub.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    hub.push_event(&format!("e{i}"));
                }
                hub.set_complete(true);
            })
        };
        let mut seen = Vec::new();
        loop {
            let batch = sub.next_batch(Duration::from_secs(10));
            seen.extend(batch.events.iter().map(|(id, _)| *id));
            if batch.complete && seen.len() == 100 {
                break;
            }
        }
        producer.join().expect("producer thread");
        let expect: Vec<u64> = (1..=100).collect();
        assert_eq!(seen, expect);
    }
}
