//! The shared campaign progress model: one place computes "cases
//! done/total" and the ETA, for both the engine's stderr progress line and
//! the `/status` endpoint.

/// A point-in-time view of campaign progress.
///
/// The ETA prefers the per-case mean from the phase histograms (CPU time
/// per case, divided across `threads`); with no histogram yet it falls
/// back to extrapolating the elapsed wall clock. Both estimators shrink as
/// `done` grows with `elapsed_us` fixed, so the ETA is monotone
/// non-increasing under out-of-order case completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressModel {
    /// Cases finished so far (including quarantined ones).
    pub done: usize,
    /// Cases in the corpus.
    pub total: usize,
    /// Cases quarantined so far.
    pub quarantined: usize,
    /// Wall-clock µs since the campaign started.
    pub elapsed_us: u64,
    /// Worker threads executing cases.
    pub threads: usize,
    /// Mean per-case CPU µs from the phase histograms, when observability
    /// counters are on.
    pub mean_case_us: Option<u64>,
}

impl ProgressModel {
    /// Progress in parts per million (1_000_000 for an empty corpus).
    pub fn progress_ppm(&self) -> u64 {
        if self.total == 0 {
            return 1_000_000;
        }
        (self.done.min(self.total) as u64 * 1_000_000) / self.total as u64
    }

    /// Estimated µs until completion. `Some(0)` when done; `None` before
    /// the first case finishes without histogram data to lean on.
    pub fn eta_us(&self) -> Option<u64> {
        let remaining = self.total.saturating_sub(self.done) as u64;
        if remaining == 0 {
            return Some(0);
        }
        let threads = self.threads.max(1) as u64;
        if let Some(mean) = self.mean_case_us.filter(|&m| m > 0) {
            // Histogram means are per-case CPU time; work is spread across
            // the workers.
            return Some((remaining * mean).div_ceil(threads));
        }
        if self.done == 0 {
            return None;
        }
        // elapsed/done is already wall time per case under parallelism —
        // no further division by threads.
        Some((self.elapsed_us * remaining).div_ceil(self.done as u64))
    }

    /// The engine's progress line (sans carriage return): cases done,
    /// quarantine count, and the ETA once one is known.
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "[{}/{}] cases done, {} quarantined",
            self.done, self.total, self.quarantined
        );
        if let Some(eta) = self.eta_us() {
            if eta > 0 {
                line.push_str(&format!(", eta {}", render_eta(eta)));
            }
        }
        line
    }
}

/// Renders an ETA compactly: `42s`, `3m07s`, or `2h05m`.
fn render_eta(eta_us: u64) -> String {
    let secs = eta_us.div_ceil(1_000_000);
    if secs < 60 {
        format!("{secs}s")
    } else if secs < 3600 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(done: usize, total: usize) -> ProgressModel {
        ProgressModel {
            done,
            total,
            quarantined: 0,
            elapsed_us: 10_000_000,
            threads: 4,
            mean_case_us: None,
        }
    }

    #[test]
    fn progress_ppm_is_exact_at_the_edges() {
        assert_eq!(model(0, 100).progress_ppm(), 0);
        assert_eq!(model(50, 100).progress_ppm(), 500_000);
        assert_eq!(model(100, 100).progress_ppm(), 1_000_000);
        assert_eq!(model(0, 0).progress_ppm(), 1_000_000);
    }

    #[test]
    fn eta_is_unknown_before_any_signal() {
        assert_eq!(model(0, 100).eta_us(), None);
    }

    #[test]
    fn eta_is_zero_when_done() {
        assert_eq!(model(100, 100).eta_us(), Some(0));
        assert_eq!(model(0, 0).eta_us(), Some(0));
    }

    #[test]
    fn histogram_mean_divides_across_threads() {
        let mut m = model(10, 110);
        m.mean_case_us = Some(1_000_000);
        // 100 remaining cases × 1 s CPU each ÷ 4 threads = 25 s.
        assert_eq!(m.eta_us(), Some(25_000_000));
    }

    #[test]
    fn elapsed_fallback_does_not_divide_by_threads() {
        let m = model(10, 110);
        // 10 s wall for 10 cases → 1 s wall per case × 100 remaining.
        assert_eq!(m.eta_us(), Some(100_000_000));
    }

    #[test]
    fn eta_is_monotone_under_out_of_order_completion() {
        // Cases complete out of order (work stealing), so `done` ticks up
        // in arbitrary sequence; with elapsed and mean fixed, the ETA must
        // never increase as done grows.
        for &mean in &[None, Some(750_000u64)] {
            let mut last = u64::MAX;
            for done in 1..=200usize {
                let mut m = model(done, 200);
                m.mean_case_us = mean;
                let eta = m.eta_us().expect("eta known once done > 0");
                assert!(
                    eta <= last,
                    "eta rose from {last} to {eta} at done={done} (mean {mean:?})"
                );
                last = eta;
            }
            assert_eq!(last, 0);
        }
    }

    #[test]
    fn render_line_matches_engine_format() {
        let mut m = model(0, 6);
        m.elapsed_us = 0;
        assert_eq!(m.render_line(), "[0/6] cases done, 0 quarantined");
        let mut m = model(3, 6);
        m.quarantined = 1;
        m.mean_case_us = Some(2_000_000);
        // 3 remaining × 2 s ÷ 4 threads = 1.5 s → 2s rendered.
        assert_eq!(m.render_line(), "[3/6] cases done, 1 quarantined, eta 2s");
    }

    #[test]
    fn eta_renders_all_magnitudes() {
        assert_eq!(render_eta(1), "1s");
        assert_eq!(render_eta(59_000_000), "59s");
        assert_eq!(render_eta(187_000_000), "3m07s");
        assert_eq!(render_eta(7_500_000_000), "2h05m");
    }
}
