//! Live campaign telemetry for the TEESec framework.
//!
//! Three pieces, all free of external dependencies (shim-crate style, like
//! `teesec-obs` and `teesec-trace`):
//!
//! * [`MetricsHub`] — an in-flight publication point the engine's workers
//!   feed. It holds the latest rendered Prometheus scrape, status JSON, and
//!   coverage report, plus a bounded event ring ([`MetricsHub::push_event`])
//!   that Server-Sent-Events subscribers tail with `Last-Event-ID` resume.
//!   Evictions that overrun a lagging subscriber are counted in
//!   `teesec_events_dropped_total` rather than silently lost.
//! * [`serve`] / [`TelemetryServer`] — a tiny HTTP/1.1 exposition server on
//!   `std::net::TcpListener` with the endpoints `GET /metrics` (Prometheus
//!   text), `/events` (SSE), `/status`, `/coverage`, `/trace`, and
//!   `/health`. One thread accepts, one short-lived thread per connection
//!   responds; the whole thing drains on drop.
//! * [`ProgressModel`] — the single source of truth for "cases done/total,
//!   ETA" shared by the engine's stderr progress line and the `/status`
//!   endpoint, so the two can never disagree.
//!
//! The engine publishes by rendering strings *outside* the hub lock and
//! swapping them in; scrapes are therefore a lock-free-in-spirit read of
//! pre-rendered bytes and never contend with case execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hub;
mod progress;
mod server;

pub use hub::{EventBatch, MetricsHub, Subscription, DEFAULT_EVENT_CAPACITY};
pub use progress::ProgressModel;
pub use server::{serve, TelemetryServer};
