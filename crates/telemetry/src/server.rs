//! A dependency-free HTTP/1.1 exposition server over a [`MetricsHub`].
//!
//! One thread accepts on a non-blocking `TcpListener`; each connection is
//! answered on its own short-lived thread. Every response carries
//! `Connection: close`, so the protocol surface stays a single
//! request/response exchange — except `GET /events`, which streams
//! Server-Sent Events until the campaign completes and its tail drains.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use teesec_obs::PROMETHEUS_CONTENT_TYPE;

use crate::hub::MetricsHub;

/// Accept-loop poll interval while waiting for connections.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// How long an SSE subscriber waits per batch before re-checking shutdown.
const SSE_BATCH_WAIT: Duration = Duration::from_millis(250);

/// A running telemetry server. Dropping it stops the accept loop; live
/// SSE streams notice the stop flag within one batch wait and close.
#[derive(Debug)]
pub struct TelemetryServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// The bound address — the way a `--serve 127.0.0.1:0` caller learns
    /// the kernel-assigned port.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `hub` until the returned server is dropped.
///
/// # Errors
///
/// Fails when the address cannot be bound.
pub fn serve(hub: MetricsHub, addr: impl ToSocketAddrs) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(listener, hub, stop))
    };
    Ok(TelemetryServer {
        local_addr,
        stop,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, hub: MetricsHub, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let hub = hub.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // A failed or disconnected client is the client's
                    // problem; the server just moves on.
                    let _ = handle_connection(stream, &hub, &stop);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// One parsed request: method, path, query string, and headers.
struct Request {
    method: String,
    path: String,
    query: String,
    headers: Vec<(String, String)>,
}

impl Request {
    /// A header value by case-insensitive name.
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// A query parameter value by name (no percent-decoding; the only
    /// parameter the server defines, `last_id`, is numeric).
    fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Request> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            break;
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
    })
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn handle_connection(
    stream: TcpStream,
    hub: &MetricsHub,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = read_request(&mut reader)?;
    let mut stream = stream;
    if request.method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    match request.path.as_str() {
        "/metrics" => match hub.metrics() {
            Some(body) => write_response(&mut stream, "200 OK", PROMETHEUS_CONTENT_TYPE, &body),
            None => write_response(
                &mut stream,
                "503 Service Unavailable",
                "text/plain; charset=utf-8",
                "no metrics published yet\n",
            ),
        },
        "/status" => match hub.status() {
            Some(body) => write_response(&mut stream, "200 OK", "application/json", &body),
            None => write_response(
                &mut stream,
                "503 Service Unavailable",
                "text/plain; charset=utf-8",
                "no status published yet\n",
            ),
        },
        "/coverage" => match hub.coverage() {
            Some(body) => write_response(&mut stream, "200 OK", "application/json", &body),
            None => write_response(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no coverage report for this run\n",
            ),
        },
        "/trace" => match hub.trace_json() {
            Some(body) => write_response(&mut stream, "200 OK", "application/json", &body),
            None => write_response(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "tracing is not enabled for this run\n",
            ),
        },
        "/health" => {
            let body = format!("{{\"up\":{},\"complete\":{}}}\n", hub.up(), hub.complete());
            write_response(&mut stream, "200 OK", "application/json", &body)
        }
        "/events" => serve_events(stream, hub, &request, stop),
        _ => write_response(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "no such endpoint; try /metrics /events /status /coverage /trace /health\n",
        ),
    }
}

/// Streams the event ring as Server-Sent Events. Resumes after the
/// standard `Last-Event-ID` header (or a `?last_id=` query parameter for
/// curl convenience); evicted events surface as one `event: gap` record
/// carrying the count. When the campaign completes and the tail has
/// drained, an `event: end` record is sent and the stream closes.
fn serve_events(
    mut stream: TcpStream,
    hub: &MetricsHub,
    request: &Request,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    let last_event_id = request
        .header("Last-Event-ID")
        .or_else(|| request.query_param("last_id"))
        .and_then(|v| v.trim().parse::<u64>().ok());
    let mut subscription = hub.subscribe(last_event_id);
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let batch = subscription.next_batch(SSE_BATCH_WAIT);
        if batch.gap > 0 {
            write!(stream, "event: gap\ndata: {}\n\n", batch.gap)?;
        }
        for (id, line) in &batch.events {
            write!(stream, "id: {id}\ndata: {line}\n\n")?;
        }
        if !batch.events.is_empty() || batch.gap > 0 {
            stream.flush()?;
        }
        if batch.complete && batch.events.is_empty() {
            write!(stream, "event: end\ndata: campaign complete\n\n")?;
            return stream.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// A blocking one-shot HTTP GET against the test server.
    fn http_get(addr: SocketAddr, target: &str, extra_headers: &str) -> (String, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: test\r\n{extra_headers}\r\n"
        )
        .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
        let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
        (status.to_string(), headers.to_string(), body.to_string())
    }

    fn started(hub: &MetricsHub) -> TelemetryServer {
        serve(hub.clone(), "127.0.0.1:0").expect("bind test server")
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_content_type() {
        let hub = MetricsHub::default();
        let server = started(&hub);
        let (status, _, _) = http_get(server.local_addr(), "/metrics", "");
        assert!(status.contains("503"), "{status}");
        hub.publish_metrics("teesec_up 1\n".to_string());
        let (status, headers, body) = http_get(server.local_addr(), "/metrics", "");
        assert!(status.contains("200"), "{status}");
        assert!(
            headers.contains(&format!("Content-Type: {PROMETHEUS_CONTENT_TYPE}")),
            "{headers}"
        );
        assert_eq!(body, "teesec_up 1\n");
    }

    #[test]
    fn status_coverage_health_and_unknown_routes() {
        let hub = MetricsHub::default();
        let server = started(&hub);
        let addr = server.local_addr();
        assert!(http_get(addr, "/status", "").0.contains("503"));
        hub.publish_status("{\"cases_done\":1}".to_string());
        let (status, headers, body) = http_get(addr, "/status", "");
        assert!(status.contains("200"));
        assert!(headers.contains("application/json"), "{headers}");
        assert_eq!(body, "{\"cases_done\":1}");
        assert!(http_get(addr, "/coverage", "").0.contains("404"));
        hub.publish_coverage("{}".to_string());
        assert!(http_get(addr, "/coverage", "").0.contains("200"));
        assert!(http_get(addr, "/trace", "").0.contains("404"));
        let (status, _, body) = http_get(addr, "/health", "");
        assert!(status.contains("200"));
        assert_eq!(body, "{\"up\":false,\"complete\":false}\n");
        hub.set_up(true);
        let (_, _, body) = http_get(addr, "/health", "");
        assert_eq!(body, "{\"up\":true,\"complete\":false}\n");
        assert!(http_get(addr, "/nope", "").0.contains("404"));
    }

    #[test]
    fn trace_endpoint_serves_a_chrome_snapshot() {
        let hub = MetricsHub::default();
        let tracer = teesec_trace::Tracer::new(1);
        drop(tracer.span(0, "case", 0));
        hub.set_tracer(tracer);
        let server = started(&hub);
        let (status, _, body) = http_get(server.local_addr(), "/trace", "");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("traceEvents"), "{body}");
    }

    #[test]
    fn post_is_rejected() {
        let hub = MetricsHub::default();
        let server = started(&hub);
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.contains("405"), "{response}");
    }

    #[test]
    fn sse_streams_events_then_ends_on_completion() {
        let hub = MetricsHub::default();
        hub.push_event("{\"n\":1}");
        hub.push_event("{\"n\":2}");
        let server = started(&hub);
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write!(stream, "GET /events HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        hub.set_complete(true);
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.contains("text/event-stream"), "{response}");
        assert!(
            response.contains("id: 1\ndata: {\"n\":1}\n\n"),
            "{response}"
        );
        assert!(
            response.contains("id: 2\ndata: {\"n\":2}\n\n"),
            "{response}"
        );
        assert!(response.contains("event: end"), "{response}");
    }

    #[test]
    fn sse_resumes_after_last_event_id_header() {
        let hub = MetricsHub::default();
        for i in 1..=4 {
            hub.push_event(&format!("{{\"n\":{i}}}"));
        }
        hub.set_complete(true);
        let server = started(&hub);
        let (_, _, body) = {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            write!(
                stream,
                "GET /events HTTP/1.1\r\nHost: t\r\nLast-Event-ID: 2\r\n\r\n"
            )
            .expect("send");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read");
            let (head, body) = response.split_once("\r\n\r\n").expect("terminator");
            (head.to_string(), String::new(), body.to_string())
        };
        assert!(!body.contains("id: 2\n"), "{body}");
        assert!(body.contains("id: 3\n"), "{body}");
        assert!(body.contains("id: 4\n"), "{body}");
    }

    #[test]
    fn sse_reports_a_gap_when_resuming_past_eviction() {
        let hub = MetricsHub::new(2);
        for i in 1..=10 {
            hub.push_event(&format!("{{\"n\":{i}}}"));
        }
        hub.set_complete(true);
        let server = started(&hub);
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write!(stream, "GET /events?last_id=2 HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.contains("event: gap\ndata: 6\n\n"), "{response}");
        assert!(response.contains("id: 9\n"), "{response}");
        assert!(response.contains("id: 10\n"), "{response}");
        assert!(hub.events_dropped_total() >= 6);
    }
}
