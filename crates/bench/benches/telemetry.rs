//! Live-telemetry benchmarks: the engine with the metrics hub attached
//! (publication every few cases) against the plain engine, plus the hub
//! primitives the hot path leans on — event-ring pushes, artifact swaps,
//! and the live exposition render. `tests/telemetry_integration.rs`
//! guards the overhead with a loose bound; this bench quantifies it, and
//! the `telemetry_overhead` binary records the headline serve-on vs
//! serve-off numbers committed in `BENCH_pr10.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineOptions};
use teesec::fuzz::Fuzzer;
use teesec::live_campaign_snapshot;
use teesec_telemetry::MetricsHub;
use teesec_uarch::CoreConfig;

const CORPUS: usize = 32;

fn bench_engine_telemetry(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let mut g = c.benchmark_group("telemetry_engine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CORPUS as u64));

    g.bench_function("serve_off", |b| {
        b.iter(|| {
            Engine::new(cfg.clone(), EngineOptions::default())
                .run_corpus(&corpus, PhaseTiming::default())
        });
    });

    // Hub attached and an HTTP server bound, but nobody scraping: the
    // cost of live folding plus the periodic publish renders.
    let hub = MetricsHub::default();
    let _server = teesec_telemetry::serve(hub.clone(), "127.0.0.1:0").expect("bind");
    g.bench_function("serve_on_idle", |b| {
        b.iter(|| {
            let opts = EngineOptions {
                telemetry: Some(hub.clone()),
                ..EngineOptions::default()
            };
            Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default())
        });
    });
    g.finish();
}

fn bench_hub_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_hub");

    // One event line through the bounded ring with a live subscriber
    // cursor registered (the common SSE-attached shape).
    let hub = MetricsHub::new(4096);
    let _subscriber = hub.subscribe(None);
    let line = "{\"CaseFinished\":{\"seq\":42,\"case\":\"exp_load_l1_hit__case\"}}";
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_event", |b| {
        b.iter(|| hub.push_event(line));
    });

    // Swapping in a full rendered exposition (what the publishing worker
    // does every LIVE_PUBLISH_EVERY cases).
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let (result, _) = Engine::new(
        cfg,
        EngineOptions {
            counters: true,
            coverage: true,
            ..EngineOptions::default()
        },
    )
    .run_corpus(&corpus, PhaseTiming::default());
    let exposition = live_campaign_snapshot(&result, 500_000, 0).render_prometheus();
    g.bench_function("publish_metrics", |b| {
        b.iter(|| hub.publish_metrics(exposition.clone()));
    });

    // The live exposition render itself — the dominant per-publish cost.
    g.bench_function("render_live_exposition", |b| {
        b.iter(|| live_campaign_snapshot(&result, 500_000, 0).render_prometheus());
    });
    g.finish();
}

criterion_group!(benches, bench_engine_telemetry, bench_hub_primitives);
criterion_main!(benches);
