//! Plan-coverage observability overhead: the same corpus through the
//! engine with coverage recording off (baseline) and on, plus the
//! one-shot cost of rendering the campaign coverage report. Residency
//! windows derive from provenance chains the checker already builds, so
//! the recording cost is bounded by the per-event cell tracking; the
//! <5% overhead bound is recorded in `BENCH_pr7.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineOptions};
use teesec::fuzz::Fuzzer;
use teesec::metrics::campaign_snapshot;
use teesec_uarch::CoreConfig;

const CORPUS: usize = 32;

fn bench_coverage_overhead(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let mut g = c.benchmark_group("coverage_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CORPUS as u64));

    g.bench_function("off", |b| {
        b.iter(|| {
            Engine::new(cfg.clone(), EngineOptions::default())
                .run_corpus(&corpus, PhaseTiming::default())
        });
    });
    g.bench_function("on", |b| {
        b.iter(|| {
            let opts = EngineOptions {
                coverage: true,
                ..EngineOptions::default()
            };
            Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default())
        });
    });
    g.bench_function("on_streaming", |b| {
        b.iter(|| {
            let opts = EngineOptions {
                coverage: true,
                streaming: true,
                ..EngineOptions::default()
            };
            Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default())
        });
    });
    g.finish();
}

fn bench_report_render(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let (result, _) = Engine::new(
        cfg,
        EngineOptions {
            coverage: true,
            ..EngineOptions::default()
        },
    )
    .run_corpus(&corpus, PhaseTiming::default());
    let pc = result
        .engine
        .as_ref()
        .and_then(|m| m.plan_coverage.clone())
        .expect("coverage on");
    let mut g = c.benchmark_group("coverage_report");
    g.sample_size(20);
    g.bench_function("render_heatmap", |b| {
        b.iter(|| pc.render_heatmap());
    });
    g.bench_function("report_json", |b| {
        b.iter(|| serde_json::to_string(&pc.report_json()).unwrap());
    });
    g.bench_function("prometheus_with_coverage", |b| {
        b.iter(|| campaign_snapshot(&result).render_prometheus());
    });
    g.finish();
}

criterion_group!(benches, bench_coverage_overhead, bench_report_render);
criterion_main!(benches);
