//! Ablation benchmark: the simulated-cycle overhead of each Table 4
//! mitigation on a representative enclave workload (create → run →
//! stop/resume ×2 → destroy), per design.
//!
//! The paper leaves the performance evaluation of countermeasures to future
//! work (§8); this bench supplies the missing measurement on the model:
//! flush-based mitigations cost refills after every domain switch,
//! serialized PMP checks lengthen every load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use teesec_isa::inst::MemWidth;
use teesec_uarch::config::MitigationSet;
use teesec_uarch::CoreConfig;

use teesec::assemble::{assemble_case, CaseParams, Lifecycle};
use teesec::paths::AccessPath;
use teesec::runner::run_case;
use teesec::testcase::{Actor, Step};

/// A representative multi-switch workload.
fn workload(cfg: &CoreConfig) -> teesec::TestCase {
    let params = CaseParams {
        lifecycle: Lifecycle::StopResumeStop,
        warm_via_stores: true,
        width: MemWidth::D,
        ..CaseParams::default()
    };
    let mut tc = assemble_case(AccessPath::LoadL1Hit, params, cfg).expect("workload");
    // Extra host activity after the switch to surface refill costs.
    for k in 0..16u64 {
        tc.push(
            Actor::Host,
            Step::Load {
                addr: teesec_tee::layout::SHARED_BASE + 64 * k,
                width: MemWidth::D,
            },
        );
    }
    tc
}

fn variants() -> Vec<(&'static str, MitigationSet)> {
    vec![
        ("baseline", MitigationSet::default()),
        (
            "flush_l1d",
            MitigationSet {
                flush_l1d_on_domain_switch: true,
                ..MitigationSet::default()
            },
        ),
        (
            "clear_illegal",
            MitigationSet {
                clear_illegal_data_returns: true,
                ..MitigationSet::default()
            },
        ),
        (
            "serialize_pmp",
            MitigationSet {
                serialize_pmp_check: true,
                ..MitigationSet::default()
            },
        ),
        ("flush_everything", MitigationSet::flush_everything()),
        ("all", MitigationSet::all()),
    ]
}

fn bench_mitigation_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("mitigation_overhead");
    g.sample_size(10);
    for base in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        for (label, m) in variants() {
            let cfg = base.clone().with_mitigations(m);
            let tc = workload(&cfg);
            g.bench_with_input(BenchmarkId::new(label, &base.name), &cfg, |b, cfg| {
                b.iter(|| {
                    let out = run_case(&tc, cfg).expect("run");
                    out.cycles // simulated cycles are the figure of merit
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_mitigation_overhead);
criterion_main!(benches);
