//! Core-model throughput benchmarks: host-cycles-per-second of the
//! cycle-driven simulator with and without tracing, plus the assembler and
//! decoder hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use teesec_isa::asm::Assembler;
use teesec_isa::inst::Inst;
use teesec_isa::reg::Reg;
use teesec_uarch::core::Core;
use teesec_uarch::mem::Memory;
use teesec_uarch::CoreConfig;

/// A ~50k-cycle compute loop image.
fn loop_image() -> (Memory, u64) {
    let base = 0x8000_0000;
    let mut asm = Assembler::new(base);
    asm.li(Reg::T0, 5_000);
    asm.li(Reg::A0, 0);
    asm.label("loop");
    asm.add(Reg::A0, Reg::A0, Reg::T0);
    asm.xori(Reg::A1, Reg::A0, 0x55);
    asm.sd(Reg::A1, Reg::SP, 0);
    asm.ld(Reg::A2, Reg::SP, 0);
    asm.addi(Reg::T0, Reg::T0, -1);
    asm.bnez(Reg::T0, "loop");
    asm.inst(Inst::Ebreak);
    let mut mem = Memory::new();
    mem.load_words(base, &asm.assemble().expect("assemble"));
    (mem, base)
}

fn bench_core_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_cycles");
    g.sample_size(10);
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        for (label, traced) in [("traced", true), ("untraced", false)] {
            g.bench_with_input(BenchmarkId::new(label, &cfg.name), &cfg, |b, cfg| {
                b.iter(|| {
                    let (mem, base) = loop_image();
                    let mut core = Core::new(cfg.clone(), mem, base);
                    core.set_reg(Reg::SP, 0x8030_0000);
                    core.trace.set_enabled(traced);
                    core.run(1_000_000);
                    assert!(core.halted);
                    core.cycle
                });
            });
        }
    }
    g.finish();
}

fn bench_isa(c: &mut Criterion) {
    let mut g = c.benchmark_group("isa");
    // Decoder throughput over a realistic word mix.
    let (mem, base) = loop_image();
    let words: Vec<u32> = (0..16).map(|i| mem.read_u32(base + 4 * i)).collect();
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut n = 0;
            for &w in &words {
                if Inst::decode(w).is_ok() {
                    n += 1;
                }
            }
            n
        });
    });
    g.bench_function("assemble_li64", |b| {
        b.iter(|| {
            let mut asm = Assembler::new(0);
            asm.li(Reg::A0, 0x1234_5678_9ABC_DEF0);
            asm.assemble().expect("assemble").len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_core_throughput, bench_isa);
criterion_main!(benches);
