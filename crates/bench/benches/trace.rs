//! Tracing overhead benchmarks: the same engine corpus executed with the
//! span recorder disabled (the default no-op tracer), enabled, and enabled
//! plus Chrome JSON export + critical-path analysis. The disabled case is
//! the one that matters for the acceptance bar — tracing off must be
//! indistinguishable from the pre-tracing engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineOptions};
use teesec::fuzz::Fuzzer;
use teesec_trace::Tracer;
use teesec_uarch::CoreConfig;

const CORPUS: usize = 32;
const THREADS: usize = 2;

fn bench_traced_vs_untraced(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let mut g = c.benchmark_group("engine_tracing");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CORPUS as u64));
    for traced in [false, true] {
        let label = if traced { "traced" } else { "untraced" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &traced, |b, &traced| {
            b.iter(|| {
                let opts = EngineOptions {
                    threads: THREADS,
                    tracer: if traced {
                        Tracer::new(THREADS)
                    } else {
                        Tracer::disabled()
                    },
                    ..EngineOptions::default()
                };
                Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default())
            });
        });
    }
    g.finish();
}

fn bench_export_and_analyze(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let tracer = Tracer::new(THREADS);
    let opts = EngineOptions {
        threads: THREADS,
        tracer: tracer.clone(),
        ..EngineOptions::default()
    };
    Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());
    let trace = tracer.snapshot();

    let mut g = c.benchmark_group("trace_post_processing");
    g.sample_size(10);
    g.bench_function("chrome_export", |b| b.iter(|| trace.to_chrome_json()));
    g.bench_function("critical_path_analysis", |b| b.iter(|| trace.analyze(5)));
    g.finish();
}

criterion_group!(benches, bench_traced_vs_untraced, bench_export_and_analyze);
criterion_main!(benches);
