//! Thread-scaling benchmarks of the work-stealing campaign engine: the same
//! corpus executed at 1/2/4/8 workers, against the serial reference loop.
//! Near-linear scaling up to the physical core count is the expectation,
//! since cases share no mutable state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineOptions};
use teesec::fuzz::Fuzzer;
use teesec::Campaign;
use teesec_uarch::CoreConfig;

const CORPUS: usize = 32;

fn bench_engine_scaling(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let mut g = c.benchmark_group("engine_scaling");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CORPUS as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let opts = EngineOptions {
                        threads,
                        ..EngineOptions::default()
                    };
                    Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default())
                });
            },
        );
    }
    g.finish();
}

fn bench_serial_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_vs_serial");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CORPUS as u64));
    g.bench_function("serial_run", |b| {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(CORPUS));
        b.iter(|| campaign.run());
    });
    g.finish();
}

criterion_group!(benches, bench_engine_scaling, bench_serial_reference);
criterion_main!(benches);
