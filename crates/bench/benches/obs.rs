//! Observability-overhead benchmarks: the same corpus through the engine
//! with deep observability off (baseline), with counters + histograms on,
//! and with the full event stream on top. The delta between groups is the
//! cost of the `teesec-obs` layer; `tests/obs_overhead.rs` guards it,
//! this bench quantifies it (recorded in `BENCH_pr2.json`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineOptions, EventSink};
use teesec::fuzz::Fuzzer;
use teesec::metrics::campaign_snapshot;
use teesec_uarch::CoreConfig;

const CORPUS: usize = 32;

fn bench_obs_overhead(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CORPUS as u64));

    g.bench_function("plain", |b| {
        b.iter(|| {
            Engine::new(cfg.clone(), EngineOptions::default())
                .run_corpus(&corpus, PhaseTiming::default())
        });
    });
    g.bench_function("counters", |b| {
        b.iter(|| {
            let opts = EngineOptions {
                counters: true,
                ..EngineOptions::default()
            };
            Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default())
        });
    });
    g.bench_function("counters_and_events", |b| {
        b.iter(|| {
            let opts = EngineOptions {
                counters: true,
                events: Some(EventSink::new(std::io::sink())),
                ..EngineOptions::default()
            };
            Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default())
        });
    });
    g.finish();
}

fn bench_snapshot_render(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    let (result, _) = Engine::new(
        cfg,
        EngineOptions {
            counters: true,
            ..EngineOptions::default()
        },
    )
    .run_corpus(&corpus, PhaseTiming::default());
    let mut g = c.benchmark_group("metrics_exposition");
    g.sample_size(20);
    g.bench_function("build_and_render_prometheus", |b| {
        b.iter(|| campaign_snapshot(&result).render_prometheus());
    });
    g.bench_function("build_and_render_json", |b| {
        b.iter(|| campaign_snapshot(&result).render_json());
    });
    g.finish();
}

criterion_group!(benches, bench_obs_overhead, bench_snapshot_render);
criterion_main!(benches);
