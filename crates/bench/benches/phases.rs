//! Criterion benchmarks of the three TEESec phases (the Table 2 cost
//! shape): verification-plan profiling, test-case construction, and the
//! simulate+check loop, per design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use teesec::assemble::{assemble_case, CaseParams};
use teesec::checker::check_case;
use teesec::fuzz::Fuzzer;
use teesec::paths::AccessPath;
use teesec::runner::run_case;
use teesec::VerificationPlan;
use teesec_uarch::CoreConfig;

fn configs() -> Vec<CoreConfig> {
    vec![CoreConfig::boom(), CoreConfig::xiangshan()]
}

fn bench_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("verification_plan");
    for cfg in configs() {
        g.bench_with_input(BenchmarkId::from_parameter(&cfg.name), &cfg, |b, cfg| {
            b.iter(|| VerificationPlan::profile(cfg));
        });
    }
    g.finish();
}

fn bench_construct(c: &mut Criterion) {
    let mut g = c.benchmark_group("gadget_construction");
    g.sample_size(20);
    for cfg in configs() {
        g.bench_with_input(BenchmarkId::new("corpus_60", &cfg.name), &cfg, |b, cfg| {
            b.iter(|| Fuzzer::with_target(60).generate(cfg));
        });
    }
    g.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_case");
    g.sample_size(10);
    for cfg in configs() {
        // The Figure-5-style demand-load case: the workhorse of the corpus.
        let tc = assemble_case(AccessPath::LoadL1Hit, CaseParams::default(), &cfg).expect("case");
        g.bench_with_input(
            BenchmarkId::new("load_l1_hit", &cfg.name),
            &cfg,
            |b, cfg| {
                b.iter(|| run_case(&tc, cfg).expect("run"));
            },
        );
        // The most expensive case: the destroy-time scrub.
        let scrub =
            assemble_case(AccessPath::SmScrub, CaseParams::default(), &cfg).expect("scrub case");
        g.bench_with_input(BenchmarkId::new("sm_scrub", &cfg.name), &cfg, |b, cfg| {
            b.iter(|| run_case(&scrub, cfg).expect("run"));
        });
    }
    g.finish();
}

fn bench_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("checker");
    g.sample_size(20);
    for cfg in configs() {
        let tc = assemble_case(AccessPath::LoadL1Hit, CaseParams::default(), &cfg).expect("case");
        let outcome = run_case(&tc, &cfg).expect("run");
        g.bench_with_input(BenchmarkId::new("scan_trace", &cfg.name), &cfg, |b, cfg| {
            b.iter(|| check_case(&tc, &outcome, cfg));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_plan,
    bench_construct,
    bench_simulate,
    bench_check
);
criterion_main!(benches);
