//! End-to-end pipeline comparison for the PR 4 streaming/snapshot work:
//! the same corpus executed through (a) the batch pipeline (buffer the
//! whole trace, then scan it), (b) the streaming checker (online scan,
//! no trace buffering), and (c) streaming plus the copy-on-write
//! platform-snapshot cache (setup prefix forked instead of rebuilt).
//!
//! Two campaign shapes:
//!
//! - `end_to_end`: the fuzzer's mixed corpus, where cases mostly carry
//!   distinct programs (the cache can only share boot work);
//! - `irq_sweep`: a Figure 6-style interrupt-timing sweep, where every
//!   case shares the setup-gadget prefix and only the interrupt cycle
//!   varies — the scenario the setup-prefix checkpoint exists for.
//!
//! The numbers behind `BENCH_pr4.json` come from this bench.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use teesec::assemble::{assemble_case, CaseParams};
use teesec::campaign::PhaseTiming;
use teesec::engine::{Engine, EngineOptions};
use teesec::fuzz::Fuzzer;
use teesec::{AccessPath, TestCase};
use teesec_uarch::CoreConfig;

const CORPUS: usize = 32;

fn variants() -> [(&'static str, EngineOptions); 3] {
    [
        ("batch", EngineOptions::default()),
        (
            "streaming",
            EngineOptions {
                streaming: true,
                ..EngineOptions::default()
            },
        ),
        (
            "streaming_snapshot",
            EngineOptions {
                streaming: true,
                snapshot_cache: true,
                ..EngineOptions::default()
            },
        ),
    ]
}

fn run_group(c: &mut Criterion, name: &str, cfg: &CoreConfig, corpus: &[TestCase]) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.throughput(Throughput::Elements(corpus.len() as u64));
    for (variant, opts) in variants() {
        g.bench_function(variant, |b| {
            b.iter(|| {
                Engine::new(cfg.clone(), opts.clone()).run_corpus(corpus, PhaseTiming::default())
            });
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus = Fuzzer::with_target(CORPUS).generate(&cfg);
    run_group(c, "end_to_end", &cfg, &corpus);
}

fn bench_irq_sweep(c: &mut Criterion) {
    let cfg = CoreConfig::boom();
    let corpus: Vec<TestCase> = (0..CORPUS as u64)
        .map(|k| {
            let params = CaseParams {
                restricted_counters: true,
                irq_at: Some(2_000 + 37 * k),
                ..CaseParams::default()
            };
            let mut tc = assemble_case(AccessPath::HpcRead, params, &cfg).expect("sweep case");
            tc.name = format!("{}_irq{k}", tc.name);
            tc
        })
        .collect();
    run_group(c, "irq_sweep", &cfg, &corpus);
}

criterion_group!(benches, bench_end_to_end, bench_irq_sweep);
criterion_main!(benches);
