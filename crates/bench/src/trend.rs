//! Cross-PR benchmark trend checking.
//!
//! Every PR that changes performance-relevant machinery commits a
//! `BENCH_prN.json` at the repo root. Those files are a *contract*:
//! `tools/bench_trend` (the `bench_trend` binary here) loads all of them,
//! asserts the shared schema stayed consistent — `pr`, `date`,
//! `environment{cpus,profile}`, `commands[]` — and renders a per-metric
//! trend table so a regression (or an accidentally renamed metric key)
//! shows up as a visible column wiggle instead of an archaeology session.

use std::path::{Path, PathBuf};

use serde_json::Value;

/// One loaded and schema-checked `BENCH_prN.json`.
#[derive(Debug)]
pub struct BenchFile {
    /// File name (`BENCH_pr4.json`).
    pub name: String,
    /// The `pr` field.
    pub pr: u64,
    /// The parsed document.
    pub value: Value,
}

/// All `BENCH_*.json` paths directly under `root`, name-sorted.
pub fn find_bench_files(root: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(root)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    out.sort();
    out
}

fn field<'v>(v: &'v Value, key: &str, name: &str) -> Result<&'v Value, String> {
    v.get(key)
        .ok_or_else(|| format!("{name}: missing required key `{key}`"))
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => u64::try_from(*u).ok(),
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Checks one document against the shared cross-PR schema.
fn schema_check(name: &str, v: &Value) -> Result<u64, String> {
    v.as_object()
        .ok_or_else(|| format!("{name}: top level must be an object"))?;
    let pr = as_u64(field(v, "pr", name)?)
        .ok_or_else(|| format!("{name}: `pr` must be an unsigned integer"))?;
    match field(v, "date", name)? {
        Value::String(d) if d.len() == 10 && d.chars().filter(|c| *c == '-').count() == 2 => {}
        other => return Err(format!("{name}: `date` must be YYYY-MM-DD, got {other:?}")),
    }
    let env = field(v, "environment", name)?;
    env.as_object()
        .ok_or_else(|| format!("{name}: `environment` must be an object"))?;
    as_u64(field(env, "cpus", name)?)
        .ok_or_else(|| format!("{name}: `environment.cpus` must be an unsigned integer"))?;
    match field(env, "profile", name)? {
        Value::String(_) => {}
        other => {
            return Err(format!(
                "{name}: `environment.profile` must be a string, got {other:?}"
            ))
        }
    }
    let commands = field(v, "commands", name)?
        .as_array()
        .ok_or_else(|| format!("{name}: `commands` must be an array"))?;
    if commands.is_empty() {
        return Err(format!("{name}: `commands` must name at least one command"));
    }
    for c in commands {
        if !matches!(c, Value::String(_)) {
            return Err(format!(
                "{name}: `commands` entries must be strings, got {c:?}"
            ));
        }
    }
    Ok(pr)
}

/// Loads and schema-checks every bench file under `root`, PR-sorted.
///
/// # Errors
///
/// Unreadable/unparseable files, schema violations, and duplicate `pr`
/// values are all reported with the offending file named.
pub fn load(root: &Path) -> Result<Vec<BenchFile>, String> {
    let paths = find_bench_files(root);
    if paths.is_empty() {
        return Err(format!("no BENCH_*.json files under {}", root.display()));
    }
    let mut files = Vec::new();
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("BENCH_?.json")
            .to_string();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{name}: read failed: {e}"))?;
        let value: Value =
            serde_json::from_str(&text).map_err(|e| format!("{name}: invalid JSON: {e}"))?;
        let pr = schema_check(&name, &value)?;
        files.push(BenchFile { name, pr, value });
    }
    files.sort_by_key(|f| f.pr);
    for pair in files.windows(2) {
        if pair[0].pr == pair[1].pr {
            return Err(format!(
                "{} and {} both claim pr {}",
                pair[0].name, pair[1].name, pair[0].pr
            ));
        }
    }
    Ok(files)
}

/// Flattens a document's numeric leaves to dotted metric paths.
///
/// Bookkeeping keys (`pr`, the `environment` block) and arrays (per-run
/// sample lists) are skipped — rows are the *headline* numbers.
pub fn flatten_metrics(v: &Value) -> Vec<(String, f64)> {
    fn walk(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
        match v {
            Value::Object(fields) => {
                for (k, child) in fields {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    walk(&path, child, out);
                }
            }
            _ => {
                if let Some(n) = as_f64(v) {
                    out.push((prefix.to_string(), n));
                }
            }
        }
    }
    let mut out = Vec::new();
    if let Some(fields) = v.as_object() {
        for (k, child) in fields {
            if k == "pr" || k == "environment" {
                continue;
            }
            walk(k, child, &mut out);
        }
    }
    out
}

/// One metric that got worse than the tolerance against the most recent
/// earlier PR reporting it.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Dotted metric path (`boom_wall_ms.fast_on`).
    pub metric: String,
    /// PR the baseline value came from.
    pub baseline_pr: u64,
    /// Baseline value.
    pub baseline: f64,
    /// PR that regressed.
    pub pr: u64,
    /// The regressed value.
    pub current: f64,
    /// How much worse, percent (always positive).
    pub worse_pct: f64,
}

/// `true` when larger values of a metric are better. Speedup-style
/// ratios improve upward; everything else the suite reports (wall
/// times, latencies, memory) improves downward.
fn higher_is_better(path: &str) -> bool {
    path.contains("speedup")
}

/// Compares every metric of every PR against the most recent *earlier*
/// PR that reports the same dotted path, and returns the metrics that
/// got more than `tolerance_pct` percent worse. Metrics only one PR
/// reports (the common case: each PR benches what it changed) have no
/// baseline and cannot regress.
///
/// `files` must be PR-sorted, as [`load`] returns them.
pub fn check_regressions(files: &[BenchFile], tolerance_pct: f64) -> Vec<Regression> {
    let per_file: Vec<Vec<(String, f64)>> =
        files.iter().map(|f| flatten_metrics(&f.value)).collect();
    let mut out = Vec::new();
    for (i, metrics) in per_file.iter().enumerate() {
        for (path, current) in metrics {
            let baseline = per_file[..i]
                .iter()
                .enumerate()
                .rev()
                .find_map(|(j, earlier)| {
                    earlier
                        .iter()
                        .find(|(p, _)| p == path)
                        .map(|(_, v)| (files[j].pr, *v))
                });
            let Some((baseline_pr, baseline)) = baseline else {
                continue;
            };
            if baseline == 0.0 {
                continue; // no meaningful ratio against a zero baseline
            }
            let worse_pct = if higher_is_better(path) {
                100.0 * (baseline - current) / baseline
            } else {
                100.0 * (current - baseline) / baseline
            };
            if worse_pct > tolerance_pct {
                out.push(Regression {
                    metric: path.clone(),
                    baseline_pr,
                    baseline,
                    pr: files[i].pr,
                    current: *current,
                    worse_pct,
                });
            }
        }
    }
    out
}

fn fmt_num(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:.3}")
    }
}

/// Renders the per-metric trend table: one row per dotted metric path,
/// one column per PR, `-` where a PR does not report the metric.
pub fn trend_table(files: &[BenchFile]) -> String {
    use std::fmt::Write as _;
    let per_file: Vec<Vec<(String, f64)>> =
        files.iter().map(|f| flatten_metrics(&f.value)).collect();
    let mut rows: Vec<String> = per_file
        .iter()
        .flatten()
        .map(|(path, _)| path.clone())
        .collect();
    rows.sort();
    rows.dedup();

    let width = rows.iter().map(String::len).max().unwrap_or(6).max(6);
    let mut out = String::new();
    let _ = write!(out, "{:<width$}", "metric");
    for f in files {
        let _ = write!(out, " {:>12}", format!("pr{}", f.pr));
    }
    out.push('\n');
    for row in &rows {
        let _ = write!(out, "{row:<width$}");
        for metrics in &per_file {
            let cell = metrics
                .iter()
                .find(|(p, _)| p == row)
                .map_or_else(|| "-".to_string(), |(_, n)| fmt_num(*n));
            let _ = write!(out, " {cell:>12}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real committed BENCH files must satisfy the contract — this is
    /// the in-CI version of `bench_trend`'s check.
    #[test]
    fn committed_bench_files_pass_the_schema_check() {
        let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let files = load(root).expect("committed BENCH files load");
        assert!(
            files.len() >= 2,
            "expected BENCH_pr2 and BENCH_pr4 at least"
        );
        assert!(files.windows(2).all(|w| w[0].pr < w[1].pr));
        let pr2 = files.iter().find(|f| f.pr == 2).expect("BENCH_pr2.json");
        let metrics = flatten_metrics(&pr2.value);
        assert!(
            metrics
                .iter()
                .any(|(p, _)| p == "engine_scaling_ms.threads_1"),
            "expected the PR 2 headline metric, got {metrics:?}"
        );
    }

    #[test]
    fn trend_table_lines_up_metrics_across_prs() {
        let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let files = load(root).expect("load");
        let table = trend_table(&files);
        let header = table.lines().next().expect("header row");
        for f in &files {
            assert!(header.contains(&format!("pr{}", f.pr)), "{header}");
        }
        assert!(table.contains("engine_scaling_ms.threads_1"), "{table}");
        // A metric reported by one PR but not another renders as `-`.
        assert!(
            table.contains(" -"),
            "absent cells must render as -:\n{table}"
        );
    }

    #[test]
    fn schema_violations_are_reported_with_the_file_named() {
        let bad = |json: &str| -> String {
            let v: Value = serde_json::from_str(json).expect("test JSON parses");
            schema_check("BENCH_bad.json", &v).expect_err("must fail")
        };
        assert!(bad(r#"{"date":"2026-08-07"}"#).contains("`pr`"));
        assert!(bad(r#"{"pr":9,"date":"yesterday"}"#).contains("`date`"));
        assert!(bad(r#"{"pr":9,"date":"2026-08-07","environment":{}}"#).contains("cpus"));
        assert!(bad(r#"{"pr":9,"date":"2026-08-07",
                    "environment":{"cpus":1,"profile":"bench"},"commands":[]}"#)
        .contains("commands"));
        let ok = r#"{"pr":9,"date":"2026-08-07",
            "environment":{"cpus":1,"profile":"bench"},
            "commands":["cargo bench"],"wall_ms":{"x":1.5}}"#;
        let v: Value = serde_json::from_str(ok).unwrap();
        assert_eq!(schema_check("BENCH_pr9.json", &v), Ok(9));
        assert_eq!(flatten_metrics(&v), vec![("wall_ms.x".to_string(), 1.5)]);
    }

    fn bench_file(pr: u64, metrics: &str) -> BenchFile {
        let doc = format!(
            r#"{{"pr":{pr},"date":"2026-08-07",
                "environment":{{"cpus":1,"profile":"bench"}},
                "commands":["x"],{metrics}}}"#
        );
        let value: Value = serde_json::from_str(&doc).expect("test JSON parses");
        BenchFile {
            name: format!("BENCH_pr{pr}.json"),
            pr,
            value,
        }
    }

    #[test]
    fn regression_check_compares_against_most_recent_reporting_pr() {
        let files = vec![
            bench_file(2, r#""wall_ms":{"engine":100.0}"#),
            bench_file(4, r#""other_ms":7.0"#), // does not report wall_ms
            bench_file(9, r#""wall_ms":{"engine":120.0},"other_ms":7.2"#),
        ];
        let regs = check_regressions(&files, 10.0);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "wall_ms.engine");
        assert_eq!(
            regs[0].baseline_pr, 2,
            "baseline skips PRs without the metric"
        );
        assert_eq!(regs[0].pr, 9);
        assert!((regs[0].worse_pct - 20.0).abs() < 1e-9);
        // Within tolerance: other_ms moved 2.9% < 10%.
        assert!(check_regressions(&files, 25.0).is_empty());
    }

    #[test]
    fn speedup_metrics_regress_downward() {
        let files = vec![
            bench_file(7, r#""mixed_corpus_speedup":2.3"#),
            bench_file(9, r#""mixed_corpus_speedup":1.8"#),
        ];
        let regs = check_regressions(&files, 10.0);
        assert_eq!(regs.len(), 1, "a speedup *drop* is the regression");
        assert!(regs[0].worse_pct > 20.0);
        // An improved speedup is never a regression.
        let files = vec![
            bench_file(7, r#""mixed_corpus_speedup":2.3"#),
            bench_file(9, r#""mixed_corpus_speedup":3.1"#),
        ];
        assert!(check_regressions(&files, 10.0).is_empty());
    }

    #[test]
    fn committed_bench_files_have_no_regressions() {
        let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let files = load(root).expect("load");
        let regs = check_regressions(&files, 10.0);
        assert!(regs.is_empty(), "committed BENCH files regressed: {regs:?}");
    }

    #[test]
    fn duplicate_pr_numbers_are_rejected() {
        let dir = std::env::temp_dir().join("teesec_bench_trend_dup_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let doc = r#"{"pr":7,"date":"2026-08-07",
            "environment":{"cpus":1,"profile":"bench"},"commands":["x"]}"#;
        std::fs::write(dir.join("BENCH_pr7.json"), doc).unwrap();
        std::fs::write(dir.join("BENCH_pr7b.json"), doc).unwrap();
        let err = load(&dir).expect_err("duplicate pr must fail");
        assert!(err.contains("both claim pr 7"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
