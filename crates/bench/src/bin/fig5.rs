//! Regenerates paper Figure 5: the two access-path timelines of a
//! PMP-faulting load on XiangShan. When the protected data *is* in the L1D,
//! the fast hit path returns the verbatim secret before the lazy fault
//! resolves; when it is *not*, the slower miss path gives the cache time to
//! observe the fault and answer with a zeroed "fake hit".

use teesec_isa::csr::Satp;
use teesec_isa::pmp::PmpCfg;
use teesec_isa::priv_level::PrivLevel;
use teesec_uarch::csr_file::CsrFile;
use teesec_uarch::lsu::{LoadRequest, Lsu};
use teesec_uarch::mem::Memory;
use teesec_uarch::trace::{Domain, Trace};
use teesec_uarch::CoreConfig;

const SECRET: u64 = 0x5EC2_E7F1_65AB_1E00;
const ADDR: u64 = 0x8040_2000;

fn run_lane(cfg: &CoreConfig, warm: bool) {
    let mut lsu = Lsu::new(cfg);
    let mut csr = CsrFile::new(cfg.hpm_counters);
    let mut mem = Memory::new();
    let mut trace = Trace::new();
    mem.write_u64(ADDR, SECRET);
    let mut cycle = 0u64;
    if warm {
        // Warm the line with a permitted access first.
        lsu.start_load(
            LoadRequest {
                seq: 1,
                vaddr: ADDR,
                width: 8,
                priv_level: PrivLevel::Supervisor,
                sum: false,
                satp: Satp::default(),
            },
            cycle,
        );
        loop {
            cycle += 1;
            lsu.tick(
                cycle,
                PrivLevel::Supervisor,
                Domain::Untrusted,
                &mut csr,
                &mut mem,
                &mut trace,
            );
            if !lsu.take_completions().is_empty() {
                break;
            }
        }
    }
    // Protect the region, then probe it.
    csr.pmp
        .program_napot(0, ADDR & !0xFFF, 0x1000, PmpCfg::napot(false, false, false));
    csr.pmp
        .program_napot(1, 0, 1 << 48, PmpCfg::napot(true, true, true));
    let start = cycle;
    lsu.start_load(
        LoadRequest {
            seq: 2,
            vaddr: ADDR,
            width: 8,
            priv_level: PrivLevel::Supervisor,
            sum: false,
            satp: Satp::default(),
        },
        cycle,
    );
    let done = loop {
        cycle += 1;
        lsu.tick(
            cycle,
            PrivLevel::Supervisor,
            Domain::Untrusted,
            &mut csr,
            &mut mem,
            &mut trace,
        );
        let mut c = lsu.take_completions();
        if let Some(d) = c.pop() {
            break d;
        }
    };
    let t = done.timeline;
    let rel = |c: u64| {
        if c >= start {
            format!("C{}", c - start)
        } else {
            "-".into()
        }
    };
    println!(
        "  secret {} in L1D:",
        if warm { "IS    " } else { "is NOT" }
    );
    println!(
        "    TLB req {}  TLB resp {}  perm check {}  cache req {}  cache resp {}",
        rel(t.tlb_req.max(start)),
        rel(t.tlb_resp),
        rel(t.perm_check),
        if t.cache_req > 0 {
            rel(t.cache_req)
        } else {
            "-".into()
        },
        rel(t.cache_resp),
    );
    let verdict = if done.value == SECRET {
        "VERBATIM SECRET forwarded + written back"
    } else if t.fake_hit {
        "fake hit: ZEROED data returned, no L2 fill"
    } else {
        "zeroed / suppressed"
    };
    println!(
        "    value {:#018x}  exception {:?}",
        done.value,
        done.exception.map(|e| e.cause())
    );
    println!("    -> {verdict}");
}

fn main() {
    teesec_bench::header("Figure 5: PMP-faulting load timelines (hit vs miss lanes)");
    for cfg in [CoreConfig::xiangshan(), CoreConfig::boom()] {
        println!("--- design: {} ---", cfg.name);
        run_lane(&cfg, true);
        run_lane(&cfg, false);
        println!();
    }
    println!("Paper: XiangShan leaks the verbatim secret on the hit lane and fakes a");
    println!("zeroed hit on the miss lane; BOOM leaks on both (the miss forwards to L2).");
}
