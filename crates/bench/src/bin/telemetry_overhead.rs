//! `telemetry_overhead` — the serve-on vs serve-off A/B behind
//! `BENCH_pr10.json`.
//!
//! Runs the same fuzzer-generated corpus through the engine three ways —
//! no telemetry at all (reference), with the metrics hub attached and an
//! HTTP server bound but idle, and with a live scraper hitting
//! `/metrics` + `/status` on an interval — interleaved round-robin, and
//! reports the min and median wall time of each arm plus the min-based
//! overhead over the reference in percent. The acceptance bar is the
//! scraped arm staying within 2% of serve-off at a 1 Hz scrape cadence.
//!
//! Usage: `cargo run --release -p teesec-bench --bin telemetry_overhead
//! [-- --cases N] [--threads N] [--scrape-ms MS] [--json]`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use teesec::campaign::Campaign;
use teesec::engine::EngineOptions;
use teesec::fuzz::Fuzzer;
use teesec_telemetry::MetricsHub;
use teesec_uarch::config::CoreConfig;

const RUNS: usize = 5;

/// One blocking scrape of `target`; a failed scrape is the scraper's
/// problem, never the benchmark's.
fn scrape(addr: &str, target: &str) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    if write!(stream, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").is_err() {
        return;
    }
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
}

enum Arm {
    Off,
    OnIdle,
    OnScraped { interval: Duration },
}

fn run_once(cfg: &CoreConfig, cases: usize, threads: usize, arm: &Arm) -> f64 {
    let campaign = Campaign::new(cfg.clone(), Fuzzer::with_target(cases));
    let mut opts = EngineOptions {
        threads,
        ..EngineOptions::default()
    };
    let mut infra = None;
    if !matches!(arm, Arm::Off) {
        let hub = MetricsHub::default();
        let server = teesec_telemetry::serve(hub.clone(), "127.0.0.1:0").expect("bind");
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = if let Arm::OnScraped { interval } = arm {
            let addr = server.local_addr().to_string();
            let (stop, interval) = (Arc::clone(&stop), *interval);
            Some(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    scrape(&addr, "/metrics");
                    scrape(&addr, "/status");
                    std::thread::sleep(interval);
                }
            }))
        } else {
            None
        };
        opts.telemetry = Some(hub);
        infra = Some((server, stop, scraper));
    }
    let t0 = Instant::now();
    let (result, _) = campaign.run_engine(opts);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        result.engine.as_ref().map_or(0, |m| m.cases_quarantined),
        0,
        "quarantines would skew the A/B"
    );
    if let Some((_server, stop, scraper)) = infra {
        stop.store(true, Ordering::Relaxed);
        if let Some(handle) = scraper {
            handle.join().expect("scraper thread");
        }
    }
    wall_ms
}

fn median(runs: &[f64; RUNS]) -> f64 {
    let mut sorted = *runs;
    sorted.sort_by(f64::total_cmp);
    sorted[RUNS / 2]
}

/// Min-of-N: the noise-robust wall statistic. External load only ever
/// adds time, so the fastest run of each arm is the cleanest view of the
/// arm's true cost on a shared machine.
fn min(runs: &[f64; RUNS]) -> f64 {
    runs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn fmt_runs(runs: &[f64; RUNS]) -> String {
    let cells: Vec<String> = runs.iter().map(|r| format!("{r:.3}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let mut cases = 585usize;
    let mut threads = 4usize;
    let mut scrape_ms = 1000u64;
    let mut json = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let num = |i: &mut usize| -> u64 {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("`{}` requires a number", args[*i - 1]))
        };
        match args[i].as_str() {
            "--json" => json = true,
            "--cases" => cases = num(&mut i) as usize,
            "--threads" => threads = num(&mut i) as usize,
            "--scrape-ms" => scrape_ms = num(&mut i),
            other => panic!("unknown argument `{other}`"),
        }
        i += 1;
    }

    let cfg = CoreConfig::boom();
    let arms = [
        ("serve_off", Arm::Off),
        ("serve_on_idle", Arm::OnIdle),
        (
            "serve_on_scraped",
            Arm::OnScraped {
                interval: Duration::from_millis(scrape_ms),
            },
        ),
    ];
    if !json {
        teesec_bench::header("Live-telemetry overhead A/B (off = no hub, no server)");
        println!(
            "design: {} ({cases} cases, {threads} threads, scrape every {scrape_ms} ms, \
             min/median of {RUNS})",
            cfg.name
        );
    }
    // One throwaway warm-up, then the arms interleaved round-robin so
    // slow machine drift lands on every arm equally instead of biasing
    // whichever ran last.
    run_once(&cfg, cases, threads, &Arm::Off);
    let mut runs = [[0.0f64; RUNS]; 3];
    for r in 0..RUNS {
        for ((_, arm), per_arm) in arms.iter().zip(runs.iter_mut()) {
            per_arm[r] = run_once(&cfg, cases, threads, arm);
        }
    }
    let measured: Vec<(&str, [f64; RUNS], f64, f64)> = arms
        .iter()
        .zip(runs)
        .map(|((name, _), runs)| (*name, runs, median(&runs), min(&runs)))
        .collect();
    let baseline = measured[0].3;
    if json {
        // The exact shape BENCH_pr10.json commits (minus date/environment).
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"cases\": {cases},\n  \"threads\": {threads},\n  \"scrape_interval_ms\": {scrape_ms},\n"
        ));
        for (name, runs, med, best) in &measured {
            let pct = 100.0 * (best - baseline) / baseline;
            out.push_str(&format!(
                "  \"telemetry.{name}\": {{\n    \"wall_ms_min\": {best:.3},\n    \"wall_ms_median\": {med:.3},\n    \"runs\": {},\n    \"overhead_pct\": {pct:.3}\n  }},\n",
                fmt_runs(runs)
            ));
        }
        out.truncate(out.len() - 2);
        out.push_str("\n}");
        println!("{out}");
    } else {
        for (name, runs, med, best) in &measured {
            let pct = 100.0 * (best - baseline) / baseline;
            println!(
                "  {name:<17}: min {best:>9.3} ms, median {med:>9.3} ms  ({pct:>+6.2}%)  runs {}",
                fmt_runs(runs)
            );
        }
    }
}
