//! Regenerates paper Figure 2 (case D1): the host accesses the last
//! doubleword of the page adjacent to a PMP-protected enclave region; the
//! next-line prefetcher — which performs no permission checks — pulls the
//! first enclave line into the line-fill buffer.

use teesec::assemble::{assemble_case, CaseParams};
use teesec::checker::check_case;
use teesec::paths::AccessPath;
use teesec::runner::run_case;
use teesec_uarch::trace::{FillPurpose, Structure, TraceEventKind};
use teesec_uarch::CoreConfig;

fn run_on(cfg: &CoreConfig) {
    println!("--- design: {} ---", cfg.name);
    let Ok(tc) = assemble_case(AccessPath::PrefetchNextLine, CaseParams::default(), cfg) else {
        println!("  access path absent: no L1D prefetcher on this design.\n");
        return;
    };
    let outcome = run_case(&tc, cfg).expect("build");
    println!("  test case: {}", tc.name);
    println!("  seeded secrets (hash-of-address) in the first enclave line:");
    for r in tc.secrets.records().iter().filter(|r| r.owner.is_enclave()) {
        println!("    [{:#x}] = {:#018x}", r.addr, r.value);
    }
    // Walk the trace: the demand access, the prefetch fill, the leak.
    for e in outcome.platform.core.trace.for_structure(Structure::Lfb) {
        if let TraceEventKind::Fill { addr, purpose, .. } = &e.kind {
            println!(
                "  cycle {:>6}: LFB fill of line {:#x} ({:?}, domain {:?})",
                e.cycle, addr, purpose, e.domain
            );
            if *purpose == FillPurpose::Prefetch {
                println!("             ^ implicit prefetch — no PMP check was performed");
            }
        }
    }
    let report = check_case(&tc, &outcome, cfg);
    let d1 = report
        .findings
        .iter()
        .filter(|f| f.class == Some(teesec::LeakClass::D1))
        .count();
    println!(
        "  checker: {} finding(s), {} classified D1 -> {}",
        report.findings.len(),
        d1,
        if d1 > 0 {
            "VULNERABLE (paper: BOOM vulnerable)"
        } else {
            "clean"
        }
    );
    if let Some(f) = report
        .findings
        .iter()
        .find(|f| f.class == Some(teesec::LeakClass::D1))
    {
        println!("\n{}", f.render_checker_log());
    }
}

fn main() {
    teesec_bench::header("Figure 2: abusing the L1D next-line prefetcher (case D1)");
    run_on(&CoreConfig::boom());
    run_on(&CoreConfig::xiangshan());
}
