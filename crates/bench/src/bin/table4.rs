//! Regenerates paper Table 4: which mitigation eliminates which leakage
//! case. Each column re-runs the full campaign with one countermeasure
//! enabled and reports, per case, whether the baseline finding disappears.
//!
//! Notable paper shapes this reproduces: flushing the L1D only mitigates
//! D4–D7 on XiangShan (BOOM's faulting miss still forwards to L2 — the
//! table's `*` footnote), D1 survives every mitigation (prefetches refetch
//! after any flush), and "clear illegal data returns" covers D2 and D4–D8.

use std::collections::BTreeSet;

use teesec::report::LeakClass;
use teesec_uarch::config::MitigationSet;
use teesec_uarch::CoreConfig;

struct Column {
    label: &'static str,
    mitigations: MitigationSet,
}

fn columns() -> Vec<Column> {
    vec![
        Column {
            label: "FlushL1D",
            mitigations: MitigationSet {
                flush_l1d_on_domain_switch: true,
                ..MitigationSet::default()
            },
        },
        Column {
            label: "FlushSB",
            mitigations: MitigationSet {
                flush_store_buffer_on_domain_switch: true,
                ..MitigationSet::default()
            },
        },
        Column {
            label: "ClrIllegal",
            mitigations: MitigationSet {
                clear_illegal_data_returns: true,
                ..MitigationSet::default()
            },
        },
        Column {
            label: "FlushLFB",
            mitigations: MitigationSet {
                flush_lfb_on_domain_switch: true,
                ..MitigationSet::default()
            },
        },
        Column {
            label: "FlushBPU+HPC",
            mitigations: MitigationSet {
                flush_bpu_on_domain_switch: true,
                clear_hpc_on_domain_switch: true,
                ..MitigationSet::default()
            },
        },
        Column {
            label: "FlushEvery",
            mitigations: MitigationSet::flush_everything(),
        },
    ]
}

fn main() {
    let opts = teesec_bench::parse_args();
    teesec_bench::header("Table 4: mitigation effectiveness per leakage case");

    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let design = cfg.name.clone();
        let baseline = teesec_bench::run_design(cfg.clone(), MitigationSet::default(), opts.cases);
        let cols = columns();
        let mut per_column: Vec<BTreeSet<LeakClass>> = Vec::new();
        for col in &cols {
            let r = teesec_bench::run_design(cfg.clone(), col.mitigations, opts.cases);
            per_column.push(r.classes_found);
        }

        println!("design: {design}");
        print!("{:<6}", "Case");
        for col in &cols {
            print!(" {:>13}", col.label);
        }
        println!();
        for &class in LeakClass::all() {
            if !baseline.found(class) {
                continue; // not present on this design at all
            }
            print!("{:<6}", class.to_string());
            for found in &per_column {
                let mitigated = !found.contains(&class);
                print!(" {:>13}", if mitigated { "X" } else { "-" });
            }
            println!();
        }
        println!("  (X = the mitigation eliminates the finding; baseline cases only)\n");
    }
    println!("Paper shape: D1 survives everything; ClrIllegal covers D2,D4-D8;");
    println!("FlushL1D covers D4-D7 only on XiangShan (BOOM misses still forward to L2);");
    println!("FlushLFB covers D3; FlushSB covers D8; FlushBPU/HPC covers M1,M2.");
}
