//! Regenerates paper Figure 4 (case D3): destroying an enclave makes the
//! security monitor scrub its memory with stores; the write-allocate
//! refills pull the *old* enclave lines through the line-fill buffer, where
//! they persist after the context switch back to the untrusted host.

use teesec::assemble::{assemble_case, CaseParams};
use teesec::checker::check_case;
use teesec::paths::AccessPath;
use teesec::runner::run_case;
use teesec_uarch::cache::LfbState;
use teesec_uarch::CoreConfig;

fn run_on(cfg: &CoreConfig) {
    println!("--- design: {} ---", cfg.name);
    let tc = assemble_case(AccessPath::SmScrub, CaseParams::default(), cfg).expect("scrub case");
    let outcome = run_case(&tc, cfg).expect("build");
    println!("  sequence: Fill_Enc_Mem -> Run -> Stop -> Destroy (SM memset) -> host idles");
    println!("  enclave memory after the scrub (must be zero):");
    let probe = tc
        .secrets
        .records()
        .iter()
        .find(|r| r.owner.is_enclave())
        .expect("secret");
    println!(
        "    [{:#x}] = {:#x} (was {:#018x})",
        probe.addr,
        outcome.platform.core.mem.read_u64(probe.addr),
        probe.value
    );
    println!(
        "  line-fill buffer snapshot at test end (final domain: {:?}):",
        outcome.platform.core.domain
    );
    let mut secrets = tc.secrets.clone();
    secrets.reindex();
    let mut residual = 0;
    for (i, e) in outcome.platform.core.lsu.lfb.entries().iter().enumerate() {
        if !e.valid || e.state != LfbState::Filled {
            continue;
        }
        let hits = secrets.scan_bytes(&e.data);
        println!(
            "    entry {i}: line {:#x} purpose {:?} filled at cycle {} — {} secret word(s)",
            e.line_addr,
            e.purpose,
            e.fill_cycle,
            hits.len()
        );
        residual += hits.len();
    }
    let report = check_case(&tc, &outcome, cfg);
    let d3 = report
        .findings
        .iter()
        .filter(|f| f.class == Some(teesec::LeakClass::D3))
        .count();
    println!(
        "  checker: {residual} residual secret word(s) in the LFB, {d3} D3 finding(s) -> {}\n",
        if d3 > 0 {
            "VULNERABLE (paper: BOOM vulnerable)"
        } else {
            "clean (paper: XiangShan not vulnerable)"
        }
    );
}

fn main() {
    teesec_bench::header("Figure 4: LFB residue after enclave destroy (case D3)");
    run_on(&CoreConfig::boom());
    run_on(&CoreConfig::xiangshan());
}
