//! Regenerates paper Figure 7 (case M2): a host branch and an enclave
//! branch whose PCs differ only in bits excluded from the uBTB's partial
//! tag collide in the same entry. The host can prime the entry, run the
//! enclave, and probe it after exit — the surviving entry reveals enclave
//! control flow.

use teesec::assemble::{assemble_case, CaseParams};
use teesec::checker::check_case;
use teesec::paths::AccessPath;
use teesec::report::LeakClass;
use teesec::runner::run_case;
use teesec_tee::layout;
use teesec_uarch::CoreConfig;

fn run_on(cfg: &CoreConfig) {
    println!("--- design: {} ---", cfg.name);
    let tc = assemble_case(AccessPath::BtbLookup, CaseParams::default(), cfg).expect("btb case");
    let outcome = run_case(&tc, cfg).expect("build");
    let core = &outcome.platform.core;

    // The structural collision predicate of Figure 7.
    let branch_off = 0x400u64;
    let host_pc = layout::HOST_BASE + branch_off;
    let encl_pc = layout::enclave_base(0) + branch_off;
    println!(
        "  host branch PC    : {host_pc:#x}  (index {}, tag {:#x})",
        core.ubtb.index(host_pc),
        core.ubtb.tag(host_pc)
    );
    println!(
        "  enclave branch PC : {encl_pc:#x}  (index {}, tag {:#x})",
        core.ubtb.index(encl_pc),
        core.ubtb.tag(encl_pc)
    );
    println!(
        "  partial-tag collision: {}",
        if core.ubtb.collides(host_pc, encl_pc) {
            "YES — same entry, same tag"
        } else {
            "no"
        }
    );

    // What does the primed entry hold after the enclave ran?
    if let Some(e) = core.ubtb.predict(host_pc) {
        println!(
            "  uBTB entry the *host* PC hits after enclave exit: trained by {:?} (pc {:#x} -> target {:#x}, taken={})",
            e.train_domain, e.train_pc, e.target, e.taken
        );
    } else {
        println!("  uBTB entry for the host PC: none (flushed or evicted)");
    }

    let report = check_case(&tc, &outcome, cfg);
    let m2 = report
        .findings
        .iter()
        .filter(|f| f.class == Some(LeakClass::M2))
        .count();
    println!(
        "  checker: {m2} M2 finding(s) -> {}\n",
        if m2 > 0 {
            "VULNERABLE (paper: both BOOM and XiangShan vulnerable)"
        } else {
            "clean"
        }
    );
}

fn main() {
    teesec_bench::header("Figure 7: host/enclave uBTB collisions via partial tags (M2)");
    run_on(&CoreConfig::xiangshan());
    run_on(&CoreConfig::boom());
    println!("Neither design flushes BTB structures on enclave context switches, and");
    println!("Keystone deploys no software mechanism either — enclave branch metadata");
    println!("survives into untrusted execution on both.");
}
