//! Regenerates paper Figure 3 (case D2): the malicious OS points `satp` at
//! PMP-protected enclave memory and issues a TLB-missing load. On BOOM the
//! hardware page-table walker's root access traverses the L1D port and
//! fills the LFB with the enclave line before the access fault resolves;
//! on XiangShan the PMP pre-check suppresses the request entirely.

use teesec::assemble::{assemble_case, CaseParams};
use teesec::checker::check_case;
use teesec::paths::AccessPath;
use teesec::runner::run_case;
use teesec_uarch::trace::{FillPurpose, Structure, TraceEventKind};
use teesec_uarch::CoreConfig;

fn run_on(cfg: &CoreConfig) {
    println!("--- design: {} ---", cfg.name);
    let tc = assemble_case(AccessPath::PtwPoisonedRoot, CaseParams::default(), cfg)
        .expect("poisoned-root case");
    let outcome = run_case(&tc, cfg).expect("build");
    println!("  steps: csrw satp, <enclave page>; ld a5, <unmapped VA>  (Figure 3's 1-2)");
    let mut walk_fills = 0;
    for e in outcome.platform.core.trace.iter_events() {
        match (&e.structure, &e.kind) {
            (
                Structure::Lfb,
                TraceEventKind::Fill {
                    addr,
                    purpose: FillPurpose::PageWalk,
                    ..
                },
            ) => {
                walk_fills += 1;
                println!(
                    "  cycle {:>6}: PTW refill -> LFB line {:#x} (domain {:?})   [steps 4-7]",
                    e.cycle, addr, e.domain
                );
            }
            (
                Structure::L2,
                TraceEventKind::Fill {
                    addr,
                    purpose: FillPurpose::PageWalk,
                    ..
                },
            ) => {
                println!(
                    "  cycle {:>6}: PTW refill -> L2 line {:#x} (domain {:?})",
                    e.cycle, addr, e.domain
                );
            }
            _ => {}
        }
    }
    if walk_fills == 0 {
        println!("  no PTW refill request was created — the PMP pre-check rejected the");
        println!("  refill address before any request left the walker (XiangShan behaviour).");
    }
    let report = check_case(&tc, &outcome, cfg);
    let d2 = report
        .findings
        .iter()
        .filter(|f| f.class == Some(teesec::LeakClass::D2))
        .count();
    println!(
        "  checker: {} D2 finding(s) -> {}\n",
        d2,
        if d2 > 0 {
            "VULNERABLE (paper: BOOM vulnerable)"
        } else {
            "clean (paper: XiangShan not vulnerable)"
        }
    );
}

fn main() {
    teesec_bench::header("Figure 3: poisoned root page table walk (case D2)");
    run_on(&CoreConfig::boom());
    run_on(&CoreConfig::xiangshan());
}
