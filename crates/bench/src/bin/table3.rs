//! Regenerates paper Table 3: the ten leakage cases and which of the two
//! designs each was discovered on.
//!
//! Expected (paper): BOOM exhibits D1–D7, M1, M2; XiangShan exhibits
//! D4–D8, M1, M2. The discoveries emerge from the modeled microarchitecture
//! via the checker — nothing is hard-coded.

use teesec::campaign::vulnerability_matrix;
use teesec::report::LeakClass;
use teesec_uarch::config::MitigationSet;
use teesec_uarch::CoreConfig;

fn main() {
    let opts = teesec_bench::parse_args();
    teesec_bench::header("Table 3: enclave data/metadata leakage cases per design");
    let boom = teesec_bench::run_design(CoreConfig::boom(), MitigationSet::default(), opts.cases);
    let xs = teesec_bench::run_design(
        CoreConfig::xiangshan(),
        MitigationSet::default(),
        opts.cases,
    );

    println!("{}", vulnerability_matrix(&[&boom, &xs]));
    println!("Case descriptions:");
    for &c in LeakClass::all() {
        println!("  {c}: {} [source: {}]", c.description(), c.source());
    }

    let expected_boom: Vec<LeakClass> = LeakClass::all()
        .iter()
        .copied()
        .filter(|c| *c != LeakClass::D8)
        .collect();
    let expected_xs = [
        LeakClass::D4,
        LeakClass::D5,
        LeakClass::D6,
        LeakClass::D7,
        LeakClass::D8,
        LeakClass::M1,
        LeakClass::M2,
    ];
    let boom_ok = expected_boom.iter().all(|c| boom.found(*c)) && !boom.found(LeakClass::D8);
    let xs_ok = expected_xs.iter().all(|c| xs.found(*c))
        && !xs.found(LeakClass::D1)
        && !xs.found(LeakClass::D2)
        && !xs.found(LeakClass::D3);
    println!();
    println!(
        "paper-match: BOOM {}  XiangShan {}",
        if boom_ok { "REPRODUCED" } else { "MISMATCH" },
        if xs_ok { "REPRODUCED" } else { "MISMATCH" }
    );
    println!(
        "distinct vulnerabilities found across both designs: {}",
        boom.classes_found.union(&xs.classes_found).count()
    );
}
