//! `bench_trend` — cross-PR benchmark consistency check and trend table.
//!
//! Usage: `cargo run -p teesec-bench --bin bench_trend [-- [--check] [<repo-root>]]`
//!
//! Loads every `BENCH_*.json` under the repo root (default: two levels up
//! from this crate, i.e. the workspace root), fails with exit code 1 if
//! any file violates the shared schema, and prints a per-metric table
//! with one column per PR so regressions are visible at a glance.
//!
//! With `--check`, additionally fails if any metric got more than 10%
//! worse than the most recent earlier PR reporting the same metric
//! (speedup-style metrics regress downward, everything else upward).

use std::path::PathBuf;
use std::process::ExitCode;

use teesec_bench::trend;

/// Tolerated worsening before `--check` fails, percent.
const TOLERANCE_PCT: f64 = 10.0;

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other if root.is_none() => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("bench_trend: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));
    let files = match trend::load(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_trend: {} file(s) under {} pass the schema check",
        files.len(),
        root.display()
    );
    for f in &files {
        println!("  {} (pr {})", f.name, f.pr);
    }
    println!();
    print!("{}", trend::trend_table(&files));
    if check {
        let regs = trend::check_regressions(&files, TOLERANCE_PCT);
        if !regs.is_empty() {
            println!();
            for r in &regs {
                eprintln!(
                    "bench_trend: REGRESSION {}: pr{} = {:.3} vs pr{} = {:.3} ({:.1}% worse, tolerance {TOLERANCE_PCT}%)",
                    r.metric, r.pr, r.current, r.baseline_pr, r.baseline, r.worse_pct
                );
            }
            return ExitCode::FAILURE;
        }
        println!("\nbench_trend: no metric regressed more than {TOLERANCE_PCT}% (--check passed)");
    }
    ExitCode::SUCCESS
}
