//! `bench_trend` — cross-PR benchmark consistency check and trend table.
//!
//! Usage: `cargo run -p teesec-bench --bin bench_trend [-- <repo-root>]`
//!
//! Loads every `BENCH_*.json` under the repo root (default: two levels up
//! from this crate, i.e. the workspace root), fails with exit code 1 if
//! any file violates the shared schema, and prints a per-metric table
//! with one column per PR so regressions are visible at a glance.

use std::path::PathBuf;
use std::process::ExitCode;

use teesec_bench::trend;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(
        || PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
        PathBuf::from,
    );
    let files = match trend::load(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_trend: {} file(s) under {} pass the schema check",
        files.len(),
        root.display()
    );
    for f in &files {
        println!("  {} (pr {})", f.name, f.pr);
    }
    println!();
    print!("{}", trend::trend_table(&files));
    ExitCode::SUCCESS
}
