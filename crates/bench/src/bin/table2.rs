//! Regenerates paper Table 2: gadget counts, total test cases, and the
//! time cost of each TEESec phase.
//!
//! Absolute times differ from the paper (their substrate was Verilator RTL
//! simulation on a Xeon; ours is a Rust core model), but the *shape* holds:
//! the verification plan is a one-time cost, construction is cheap, and
//! simulation dominates per-case time.

use teesec::gadgets::{catalog, GadgetKind};

fn main() {
    let opts = teesec_bench::parse_args();
    teesec_bench::header("Table 2: gadget inventory and per-phase cost");

    let cat = catalog();
    let setup = cat.iter().filter(|g| g.kind == GadgetKind::Setup).count();
    let helper = cat.iter().filter(|g| g.kind == GadgetKind::Helper).count();
    let access = cat.iter().filter(|g| g.kind == GadgetKind::Access).count();
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6}",
        "Gadgets", "Setup", "Helper", "Access", "Total"
    );
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6}",
        "No.",
        setup,
        helper,
        access,
        setup + helper + access
    );
    println!("(paper: 8 setup, 12 helper, 15 access; 585 generated test cases)\n");

    for cfg in [
        teesec_uarch::CoreConfig::boom(),
        teesec_uarch::CoreConfig::xiangshan(),
    ] {
        let name = cfg.name.clone();
        let result = teesec_bench::run_design(
            cfg,
            teesec_uarch::config::MitigationSet::default(),
            opts.cases,
        );
        let t = result.timing;
        let per_case_us =
            (t.construct_us + t.simulate_us + t.check_us) / result.case_count.max(1) as u128;
        println!("design: {name}");
        println!("  test cases generated/run : {}", result.case_count);
        println!(
            "  verification plan        : {:>10} us  (one-time, automated)",
            t.plan_us
        );
        println!(
            "  gadget construction      : {:>10} us  (~1 min in the paper)",
            t.construct_us
        );
        println!("  simulation               : {:>10} us", t.simulate_us);
        println!(
            "  checker                  : {:>10} us  (~4 min in the paper)",
            t.check_us
        );
        println!(
            "  avg per test case        : {:>10} us  (~5 min in the paper)",
            per_case_us
        );
        println!("  avg simulated cycles/case: {:>10}", result.avg_cycles());
        println!();
    }
    println!("Run with --full for the paper's 585-case corpus.");
}
