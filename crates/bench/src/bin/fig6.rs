//! Regenerates paper Figure 6 (the XiangShan M1 variant): with counters
//! restricted (`mcounteren = 0`), a user/supervisor read of `hpmcounterN`
//! still transiently writes the value back to the register file; an
//! external interrupt arriving inside the flush window makes the firmware's
//! context save spill that value into the store buffer, where store-buffer
//! forwarding exposes it.

use teesec::assemble::{assemble_case, CaseParams};
use teesec::checker::check_case;
use teesec::paths::AccessPath;
use teesec::report::LeakClass;
use teesec::runner::run_case;
use teesec_uarch::trace::{Structure, TraceEventKind};
use teesec_uarch::CoreConfig;

fn run_on(cfg: &CoreConfig) {
    println!("--- design: {} ---", cfg.name);
    // Calibration: run once without the interrupt to learn the cycle at
    // which the privileged counter read transiently writes back (execution
    // is deterministic), then aim the interrupt into the flush window.
    let cal_params = CaseParams {
        restricted_counters: true,
        ..CaseParams::default()
    };
    let Ok(cal_tc) = assemble_case(AccessPath::HpcRead, cal_params, cfg) else {
        return;
    };
    let cal = run_case(&cal_tc, cfg).expect("build");
    let windows: Vec<u64> = cal
        .platform
        .core
        .trace
        .iter_events()
        .filter(|e| {
            e.structure == Structure::Hpc
                && e.priv_level != teesec_isa::priv_level::PrivLevel::Machine
                && matches!(e.kind, TraceEventKind::Read { value, .. } if value > 0)
        })
        .map(|e| e.cycle)
        .collect();
    if windows.is_empty() {
        println!("  no transient privileged-counter writeback observed — the core waits");
        println!("  for the privilege check and writes nothing back (BOOM behaviour).\n");
        println!("  -> clean (paper: BOOM not vulnerable to the Figure 6 variant)\n");
        return;
    }
    println!(
        "  calibration: transient privileged reads at cycles {:?}; aiming the IRQ",
        windows
    );
    let mut best: Option<(u64, usize)> = None;
    for &w in &windows {
        for delta in 0..3u64 {
            let params = CaseParams {
                restricted_counters: true,
                irq_at: Some(w + delta),
                ..CaseParams::default()
            };
            let Ok(tc) = assemble_case(AccessPath::HpcRead, params, cfg) else {
                continue;
            };
            let outcome = run_case(&tc, cfg).expect("build");
            let report = check_case(&tc, &outcome, cfg);
            let hits = report
                .findings
                .iter()
                .filter(|f| f.class == Some(LeakClass::M1) && f.structure == Structure::StoreBuffer)
                .count();
            if hits > 0 {
                // Show the chain for the first leaking timing.
                if best.is_none() {
                    println!("  interrupt at cycle {}:", w + delta);
                    for e in outcome.platform.core.trace.iter_events() {
                        match (&e.structure, &e.kind) {
                            (Structure::Hpc, TraceEventKind::Read { index, value })
                                if e.priv_level != teesec_isa::priv_level::PrivLevel::Machine
                                    && *value > 0 =>
                            {
                                println!(
                                "    cycle {:>6}: transient read of hpmcounter{} = {} at priv {} (t1-t2)",
                                e.cycle,
                                index + 3,
                                value,
                                e.priv_level
                            );
                            }
                            (Structure::StoreBuffer, TraceEventKind::Write { value, .. })
                                if *value > 0 && *value < 10_000 =>
                            {
                                println!(
                                "    cycle {:>6}: context-save store of {:#x} entered the store buffer (t4-t5)",
                                e.cycle, value
                            );
                            }
                            _ => {}
                        }
                    }
                    if let Some(f) = report.findings.iter().find(|f| {
                        f.class == Some(LeakClass::M1) && f.structure == Structure::StoreBuffer
                    }) {
                        println!("\n{}", f.render_checker_log());
                    }
                }
                best = Some((w + delta, hits));
            }
        }
    }
    match best {
        Some((at, _)) => println!(
            "  -> VULNERABLE: interrupt timing {at} lands in the transient window \
             (paper: XiangShan vulnerable)\n"
        ),
        None => println!(
            "  -> clean: no interrupt timing exposed a privileged counter value \
             (paper: BOOM waits for the privilege check and writes nothing)\n"
        ),
    }
}

fn main() {
    teesec_bench::header(
        "Figure 6: leaking restricted performance counters via the store buffer (M1)",
    );
    run_on(&CoreConfig::xiangshan());
    run_on(&CoreConfig::boom());
}
