//! Regenerates paper Table 1: the TEESec components and whether each is
//! manual, automatable, or automatic.
//!
//! In this reproduction every component is executable code, so the table
//! reports which paper-manual steps became automatic here (the paper
//! predicted exactly this automation for a production system).

fn main() {
    teesec_bench::header("Table 1: TEESec components (manual vs automatic)");
    println!(
        "{:<22} {:<38} {:>8} {:>10}",
        "Component", "Step", "Paper", "This repo"
    );
    let rows = [
        (
            "Verification Plan",
            "Identifying storage elements",
            "auto",
            "auto",
        ),
        (
            "Verification Plan",
            "Listing memory access paths",
            "manual*",
            "auto",
        ),
        (
            "Verification Plan",
            "Listing TEE HW/SW APIs",
            "manual*",
            "auto",
        ),
        (
            "Gadget Constructor",
            "Access gadgets per access path",
            "manual",
            "auto",
        ),
        ("Gadget Constructor", "Test case assembly", "auto", "auto"),
        (
            "TEESec Checker",
            "RTL simulation log analysis",
            "auto",
            "auto",
        ),
        ("TEESec Checker", "Leakage discovery", "auto", "auto"),
    ];
    for (comp, step, paper, here) in rows {
        println!("{comp:<22} {step:<38} {paper:>8} {here:>10}");
    }
    println!("\n(*) steps the paper marks automatable but implemented manually there.");

    // Prove the claims by invoking the automatic steps.
    let plan = teesec::VerificationPlan::profile(&teesec_uarch::CoreConfig::boom());
    println!(
        "\nProfiled automatically for `{}`: {} storage elements, {} access paths, {} API calls.",
        plan.design,
        plan.storage.elements.len(),
        plan.path_count(),
        plan.api.len()
    );
    let catalog = teesec::gadgets::catalog();
    println!(
        "Gadget catalog: {} gadgets constructed programmatically.",
        catalog.len()
    );
}
