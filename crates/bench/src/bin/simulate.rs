//! `simulate` — the fast-path A/B microbench behind `BENCH_pr9.json`.
//!
//! Runs the same fuzzer-generated corpus through the engine twice per
//! design — once with the fast-path simulator forced OFF (the reference
//! path: decode every fetch, rescan every stalled ROB entry every cycle,
//! deep-copy the trace on snapshot forks) and once forced ON — and
//! reports the median-of-3 end-to-end wall time of each arm plus the
//! off/on speedup. The two arms are byte-identical on every
//! checker-visible output (reports, coverage, counter digests,
//! provenance); the `fastpath_equivalence` suite is the proof, this
//! binary is the payoff.
//!
//! Usage: `cargo run --release -p teesec-bench --bin simulate [-- --cases N] [--json]`

use std::time::Instant;

use teesec::campaign::Campaign;
use teesec::engine::EngineOptions;
use teesec::fuzz::Fuzzer;
use teesec_uarch::config::CoreConfig;

const RUNS: usize = 3;

struct Arm {
    /// Per-run wall times, ms, in execution order.
    runs: [f64; RUNS],
    /// Median wall time, ms.
    median: f64,
    /// Decode-cache hit rate of the last run, percent (fast arm only).
    decode_hit_pct: Option<f64>,
    /// Scan-skip rate of the last run, percent (fast arm only).
    scan_skip_pct: Option<f64>,
}

fn run_arm(cfg: &CoreConfig, cases: usize, fast: bool) -> Arm {
    let mut runs = [0.0f64; RUNS];
    let mut decode_hit_pct = None;
    let mut scan_skip_pct = None;
    for r in &mut runs {
        let campaign = Campaign::new(cfg.clone(), Fuzzer::with_target(cases));
        let t0 = Instant::now();
        let (result, _) = campaign.run_engine(EngineOptions {
            threads: 1,
            fast_path: Some(fast),
            ..EngineOptions::default()
        });
        *r = t0.elapsed().as_secs_f64() * 1e3;
        let metrics = result.engine.expect("engine metrics");
        assert_eq!(
            metrics.cases_quarantined, 0,
            "quarantines would skew the A/B"
        );
        if let Some(fp) = metrics.fastpath {
            let fetches = (fp.decode_hits + fp.decode_misses).max(1);
            decode_hit_pct = Some(100.0 * fp.decode_hits as f64 / fetches as f64);
            let scans = (fp.scan_checks + fp.scan_skips).max(1);
            scan_skip_pct = Some(100.0 * fp.scan_skips as f64 / scans as f64);
        }
    }
    let mut sorted = runs;
    sorted.sort_by(f64::total_cmp);
    Arm {
        runs,
        median: sorted[RUNS / 2],
        decode_hit_pct,
        scan_skip_pct,
    }
}

fn fmt_runs(runs: &[f64; RUNS]) -> String {
    let cells: Vec<String> = runs.iter().map(|r| format!("{r:.3}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let mut cases = 60usize;
    let mut json = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--cases" => {
                i += 1;
                cases = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--cases requires a number"));
            }
            other => panic!("unknown argument `{other}`"),
        }
        i += 1;
    }

    if !json {
        teesec_bench::header("Fast-path simulator A/B (off = reference path)");
    }
    let mut lines = Vec::new();
    let mut speedups = Vec::new();
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let name = cfg.name.clone();
        let off = run_arm(&cfg, cases, false);
        let on = run_arm(&cfg, cases, true);
        let speedup = off.median / on.median;
        speedups.push(speedup);
        if !json {
            println!("design: {name} ({cases} cases, medians of {RUNS})");
            println!(
                "  fast off : {:>9.3} ms  runs {}",
                off.median,
                fmt_runs(&off.runs)
            );
            println!(
                "  fast on  : {:>9.3} ms  runs {}",
                on.median,
                fmt_runs(&on.runs)
            );
            println!("  speedup  : {speedup:>9.3}x");
            if let (Some(h), Some(s)) = (on.decode_hit_pct, on.scan_skip_pct) {
                println!("  decode-cache hit rate {h:.1}%, scan-skip rate {s:.1}%");
            }
            println!();
        }
        lines.push((name, off, on, speedup));
    }
    let mixed = speedups
        .iter()
        .product::<f64>()
        .powf(1.0 / speedups.len() as f64);
    if json {
        // The exact shape BENCH_pr9.json commits (minus date/environment).
        let mut out = String::from("{\n");
        for (name, off, on, speedup) in &lines {
            out.push_str(&format!(
                "  \"{name}_wall_ms\": {{\n    \"fast_off\": {:.3},\n    \"fast_off_runs\": {},\n    \"fast_on\": {:.3},\n    \"fast_on_runs\": {},\n    \"speedup\": {:.3}\n  }},\n",
                off.median,
                fmt_runs(&off.runs),
                on.median,
                fmt_runs(&on.runs),
                speedup
            ));
        }
        out.push_str(&format!("  \"mixed_corpus_speedup\": {mixed:.3}\n}}"));
        println!("{out}");
    } else {
        println!("mixed-corpus speedup (geomean): {mixed:.3}x");
    }
}
