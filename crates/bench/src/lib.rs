//! Shared support for the TEESec experiment harness binaries.
//!
//! Each `src/bin/tableN.rs` / `src/bin/figN.rs` regenerates one table or
//! figure of the paper (see DESIGN.md §6 for the experiment index). The
//! binaries accept `--cases N` to size the fuzzing corpus (default 250;
//! pass `--full` for the paper's 585).

use teesec::campaign::{Campaign, CampaignResult};
use teesec::fuzz::Fuzzer;
use teesec_uarch::config::{CoreConfig, MitigationSet};

pub mod trend;

/// Harness options parsed from the command line.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Corpus size per design.
    pub cases: usize,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts { cases: 250 }
    }
}

/// Parses `--cases N` / `--full` from `std::env::args`.
pub fn parse_args() -> HarnessOpts {
    let mut opts = HarnessOpts::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opts.cases = teesec::fuzz::PAPER_TEST_CASE_COUNT,
            "--cases" => {
                i += 1;
                opts.cases = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--cases requires a number"));
            }
            other => panic!("unknown argument `{other}` (supported: --cases N, --full)"),
        }
        i += 1;
    }
    opts
}

/// Runs a campaign on one design with an optional mitigation set.
pub fn run_design(mut cfg: CoreConfig, mitigations: MitigationSet, cases: usize) -> CampaignResult {
    cfg.mitigations = mitigations;
    let (result, _) = Campaign::new(cfg, Fuzzer::with_target(cases)).run();
    result
}

/// Prints a section header in the harness output style.
pub fn header(title: &str) {
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts() {
        assert_eq!(HarnessOpts::default().cases, 250);
    }

    #[test]
    fn tiny_campaign_smoke() {
        let r = run_design(CoreConfig::boom(), MitigationSet::default(), 3);
        assert_eq!(r.case_count, 3);
    }
}
