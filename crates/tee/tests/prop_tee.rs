//! Property-based tests of the TEE model: page tables resolve exactly what
//! was mapped, the enclave lifecycle rejects every out-of-order call, and
//! PMP domain views partition memory as Keystone requires.

use proptest::prelude::*;
use std::collections::HashMap;

use teesec_isa::pmp::{AccessKind, PmpCfg, PmpSet};
use teesec_isa::priv_level::PrivLevel;
use teesec_isa::vm::Pte;
use teesec_tee::enclave::{EnclaveState, LifecycleTracker};
use teesec_tee::pagetable::{software_walk, PageTableBuilder};
use teesec_tee::sm::{cfg_destroyed, cfg_host, cfg_run, napot_addr};
use teesec_tee::{layout, SbiCall};
use teesec_uarch::mem::Memory;

fn any_call() -> impl Strategy<Value = SbiCall> {
    prop::sample::select(SbiCall::all().to_vec())
}

proptest! {
    /// Arbitrary mapped pages resolve to exactly the mapped frame; unmapped
    /// neighbours miss.
    #[test]
    fn pagetable_maps_exactly_what_was_requested(
        pages in prop::collection::hash_map(0u64..4096, 1u64..0x8_0000, 1..24)
    ) {
        let mut mem = Memory::new();
        let mut pt = PageTableBuilder::new(0x8100_0000, 0x10_0000, &mut mem);
        for (&vpage, &ppage) in &pages {
            pt.map_page(vpage << 12, ppage << 12, Pte::R | Pte::W, &mut mem);
        }
        for (&vpage, &ppage) in &pages {
            let leaf = software_walk(pt.root(), (vpage << 12) | 0x123, &mem);
            prop_assert!(leaf.is_some(), "mapped page {:#x} must resolve", vpage << 12);
            prop_assert_eq!(leaf.unwrap().pa().0, ppage << 12);
        }
        // A page beyond the mapped universe misses.
        prop_assert!(software_walk(pt.root(), 0x7FFF_F000 << 12, &mem).is_none());
    }

    /// The lifecycle state machine never reaches `Running` except through
    /// create→run / stop→resume, and `Destroyed` is terminal.
    #[test]
    fn lifecycle_respects_keystone_rules(calls in prop::collection::vec(any_call(), 1..40)) {
        let mut t = LifecycleTracker::new(1);
        let mut history = Vec::new();
        for call in calls {
            let before = t.state(0);
            match t.apply(0, call) {
                Ok(()) => {
                    history.push(call);
                    let after = t.state(0);
                    match after {
                        EnclaveState::Running => prop_assert!(
                            matches!(call, SbiCall::RunEnclave | SbiCall::ResumeEnclave)
                        ),
                        EnclaveState::Destroyed => prop_assert!(
                            matches!(before, EnclaveState::Stopped | EnclaveState::Exited)
                        ),
                        _ => {}
                    }
                }
                Err(_) => {
                    // Rejected calls never mutate state.
                    prop_assert_eq!(t.state(0), before);
                }
            }
            if t.state(0) == EnclaveState::Destroyed {
                // Terminal: everything is rejected from here.
                for &c in SbiCall::all() {
                    prop_assert!(EnclaveState::Destroyed.apply(c).is_err());
                }
            }
        }
    }

    /// The SM's three PMP views (host / enclave-i running / enclave-i
    /// destroyed) enforce exactly the Keystone isolation matrix for every
    /// address in every region.
    #[test]
    fn pmp_views_partition_memory(offset in 0u64..0x1000, which in 0usize..2) {
        let mut p = PmpSet::new(8);
        let program = |p: &mut PmpSet, cfg_val: u64| {
            p.set_addr_raw(0, napot_addr(layout::SM_BASE, layout::SM_SIZE));
            p.set_addr_raw(1, napot_addr(layout::HOST_BASE, layout::HOST_SIZE));
            p.set_addr_raw(2, napot_addr(layout::enclave_base(0), layout::ENCLAVE_SIZE));
            p.set_addr_raw(3, napot_addr(layout::enclave_base(1), layout::ENCLAVE_SIZE));
            p.set_addr_raw(4, u64::MAX >> 10);
            for i in 0..8 {
                p.set_cfg(i, PmpCfg::from_byte((cfg_val >> (8 * i)) as u8));
            }
        };
        let off = offset * 8 % layout::ENCLAVE_SIZE;
        let s = PrivLevel::Supervisor;
        let rd = AccessKind::Read;

        // Host view: SM and enclaves sealed, host + shared open.
        program(&mut p, cfg_host());
        prop_assert!(!p.allows(layout::SM_BASE + off % layout::SM_SIZE, 8, rd, s));
        prop_assert!(p.allows(layout::HOST_BASE + off % layout::HOST_SIZE, 8, rd, s));
        prop_assert!(!p.allows(layout::enclave_base(0) + off, 8, rd, s));
        prop_assert!(!p.allows(layout::enclave_base(1) + off, 8, rd, s));
        prop_assert!(p.allows(layout::SHARED_BASE + off % layout::SHARED_SIZE, 8, rd, s));

        // Enclave-i view: own region open, host and the sibling sealed.
        program(&mut p, cfg_run(which));
        prop_assert!(p.allows(layout::enclave_base(which) + off, 8, rd, s));
        prop_assert!(!p.allows(layout::enclave_base(1 - which) + off, 8, rd, s));
        prop_assert!(!p.allows(layout::HOST_BASE + off % layout::HOST_SIZE, 8, rd, s));
        prop_assert!(!p.allows(layout::SM_BASE + off % layout::SM_SIZE, 8, rd, s));

        // Destroyed view: the scrubbed region is returned to the OS.
        program(&mut p, cfg_destroyed(which));
        prop_assert!(p.allows(layout::enclave_base(which) + off, 8, rd, s));
        prop_assert!(p.allows(layout::HOST_BASE + off % layout::HOST_SIZE, 8, rd, s));
        prop_assert!(!p.allows(layout::enclave_base(1 - which) + off, 8, rd, s));
    }

    /// Shared intermediate page tables never alias distinct mappings.
    #[test]
    fn pagetable_no_aliasing_within_2mb(
        slots in prop::collection::hash_map(0u64..512, 1u64..0x1000, 2..20)
    ) {
        let mut mem = Memory::new();
        let mut pt = PageTableBuilder::new(0x8100_0000, 0x10_0000, &mut mem);
        // All pages inside one 2 MiB region share L1/L0 tables.
        let mut expect: HashMap<u64, u64> = HashMap::new();
        for (&slot, &ppage) in &slots {
            let va = 0x4000_0000 + (slot << 12);
            pt.map_page(va, ppage << 12, Pte::R, &mut mem);
            expect.insert(va, ppage << 12);
        }
        for (&va, &pa) in &expect {
            let leaf = software_walk(pt.root(), va, &mem).expect("mapped");
            prop_assert_eq!(leaf.pa().0, pa, "va {:#x}", va);
        }
    }
}
