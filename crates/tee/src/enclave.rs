//! The enclave lifecycle state machine.
//!
//! The security monitor enforces these transitions (e.g. destroy is only
//! legal from `Stopped` or `Exited`, per Keystone and paper §7.1.3). The
//! generated firmware implements the happy path; this Rust-side model is the
//! specification the TEESec verification plan profiles and the tests check
//! gadget sequences against.

use serde::{Deserialize, Serialize};

use crate::sbi::SbiCall;

/// Lifecycle states of an enclave slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EnclaveState {
    /// No enclave loaded.
    #[default]
    Fresh,
    /// Created (validated/measured) but never entered.
    Created,
    /// Currently executing.
    Running,
    /// Yielded via `StopEnclave`; resumable.
    Stopped,
    /// Terminated via `ExitEnclave`; not resumable.
    Exited,
    /// Memory scrubbed and released.
    Destroyed,
}

/// Error returned for an SBI call that is illegal in the current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidTransition {
    /// State the enclave was in.
    pub from: EnclaveState,
    /// The attempted call.
    pub call: SbiCall,
}

impl std::fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} is not legal from state {:?}", self.call, self.from)
    }
}

impl std::error::Error for InvalidTransition {}

impl EnclaveState {
    /// The state after `call`, or an error when the transition is illegal.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTransition`] for calls not permitted in this state
    /// (e.g. destroying a running enclave).
    pub fn apply(self, call: SbiCall) -> Result<EnclaveState, InvalidTransition> {
        use EnclaveState::*;
        use SbiCall::*;
        let next = match (self, call) {
            (Fresh, CreateEnclave) => Created,
            (Created, RunEnclave) => Running,
            (Running, StopEnclave) => Stopped,
            (Running, ExitEnclave) => Exited,
            (Stopped, ResumeEnclave) => Running,
            // Keystone: destroy only from stopped or exited.
            (Stopped, DestroyEnclave) | (Exited, DestroyEnclave) => Destroyed,
            (Created, AttestEnclave) | (Stopped, AttestEnclave) => self,
            _ => return Err(InvalidTransition { from: self, call }),
        };
        Ok(next)
    }

    /// `true` when the enclave's memory still holds secrets that the SM has
    /// not scrubbed.
    pub fn holds_secrets(self) -> bool {
        !matches!(self, EnclaveState::Fresh | EnclaveState::Destroyed)
    }
}

/// Tracks the lifecycle of every enclave slot through a test's SBI
/// sequence — the execution-model component of the gadget assembler uses
/// this to generate only valid call orders.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecycleTracker {
    states: Vec<EnclaveState>,
}

impl LifecycleTracker {
    /// Creates a tracker for `n` enclave slots.
    pub fn new(n: usize) -> LifecycleTracker {
        LifecycleTracker {
            states: vec![EnclaveState::Fresh; n],
        }
    }

    /// Current state of slot `i`.
    pub fn state(&self, i: usize) -> EnclaveState {
        self.states[i]
    }

    /// Applies `call` to slot `i`.
    ///
    /// # Errors
    ///
    /// Propagates [`InvalidTransition`] without mutating state.
    pub fn apply(&mut self, i: usize, call: SbiCall) -> Result<(), InvalidTransition> {
        self.states[i] = self.states[i].apply(call)?;
        Ok(())
    }

    /// The SBI calls legal for slot `i` right now.
    pub fn legal_calls(&self, i: usize) -> Vec<SbiCall> {
        SbiCall::all()
            .iter()
            .copied()
            .filter(|&c| self.states[i].apply(c).is_ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_lifecycle() {
        let mut s = EnclaveState::Fresh;
        for call in [
            SbiCall::CreateEnclave,
            SbiCall::RunEnclave,
            SbiCall::StopEnclave,
            SbiCall::ResumeEnclave,
            SbiCall::ExitEnclave,
            SbiCall::DestroyEnclave,
        ] {
            s = s.apply(call).unwrap_or_else(|e| panic!("{e}"));
        }
        assert_eq!(s, EnclaveState::Destroyed);
    }

    #[test]
    fn destroy_requires_stopped_or_exited() {
        assert!(EnclaveState::Running
            .apply(SbiCall::DestroyEnclave)
            .is_err());
        assert!(EnclaveState::Created
            .apply(SbiCall::DestroyEnclave)
            .is_err());
        assert!(EnclaveState::Stopped.apply(SbiCall::DestroyEnclave).is_ok());
        assert!(EnclaveState::Exited.apply(SbiCall::DestroyEnclave).is_ok());
    }

    #[test]
    fn cannot_resume_exited() {
        assert!(EnclaveState::Exited.apply(SbiCall::ResumeEnclave).is_err());
    }

    #[test]
    fn stop_resume_cycles() {
        let mut s = EnclaveState::Created.apply(SbiCall::RunEnclave).unwrap();
        for _ in 0..3 {
            s = s.apply(SbiCall::StopEnclave).unwrap();
            s = s.apply(SbiCall::ResumeEnclave).unwrap();
        }
        assert_eq!(s, EnclaveState::Running);
    }

    #[test]
    fn secret_holding_states() {
        assert!(!EnclaveState::Fresh.holds_secrets());
        assert!(!EnclaveState::Destroyed.holds_secrets());
        assert!(EnclaveState::Stopped.holds_secrets());
        assert!(EnclaveState::Exited.holds_secrets());
    }

    #[test]
    fn tracker_enumerates_legal_calls() {
        let mut t = LifecycleTracker::new(2);
        assert_eq!(t.legal_calls(0), vec![SbiCall::CreateEnclave]);
        t.apply(0, SbiCall::CreateEnclave).unwrap();
        let legal = t.legal_calls(0);
        assert!(legal.contains(&SbiCall::RunEnclave));
        assert!(legal.contains(&SbiCall::AttestEnclave));
        assert!(!legal.contains(&SbiCall::DestroyEnclave));
        // Slot 1 untouched.
        assert_eq!(t.state(1), EnclaveState::Fresh);
    }

    #[test]
    fn tracker_rejects_illegal_without_mutation() {
        let mut t = LifecycleTracker::new(1);
        assert!(t.apply(0, SbiCall::RunEnclave).is_err());
        assert_eq!(t.state(0), EnclaveState::Fresh);
    }
}
