//! The security monitor: machine-mode firmware generated as real RISC-V
//! code that runs on the simulated core.
//!
//! Like Keystone's SM, it owns the trap vector, dispatches SBI calls,
//! manages enclave PMP domains at every context switch, scrubs enclave
//! memory on destroy (with real stores through the cache hierarchy — the
//! D3 mechanism), and saves the full register context on interrupts (the
//! store-buffer path of Figure 6).

use teesec_isa::asm::Assembler;
use teesec_isa::csr;
use teesec_isa::reg::Reg;
use teesec_uarch::core::MDOMAIN;

use crate::layout::{self, pmp_entry, scratch};

/// NAPOT `pmpaddr` encoding for `[base, base+size)`.
pub fn napot_addr(base: u64, size: u64) -> u64 {
    assert!(size.is_power_of_two() && size >= 8);
    assert_eq!(base % size, 0, "NAPOT base must be size-aligned");
    (base >> 2) | ((size >> 3) - 1)
}

/// The packed `pmpcfg0` value with the given per-entry bytes.
fn pack_cfg(bytes: [u8; 8]) -> u64 {
    bytes
        .iter()
        .rev()
        .fold(0u64, |acc, &b| (acc << 8) | b as u64)
}

const DENY: u8 = 0x18; // NAPOT, no permissions
const ALLOW: u8 = 0x1F; // NAPOT, RWX

/// `pmpcfg0` while the untrusted host executes: SM and enclaves denied,
/// host and default-allow regions open.
pub fn cfg_host() -> u64 {
    let mut b = [0u8; 8];
    b[pmp_entry::SM] = DENY;
    b[pmp_entry::HOST] = ALLOW;
    b[pmp_entry::ENCLAVE0] = DENY;
    b[pmp_entry::ENCLAVE1] = DENY;
    b[pmp_entry::DEFAULT] = ALLOW;
    pack_cfg(b)
}

/// `pmpcfg0` after enclave `i` is destroyed: its scrubbed region is
/// released back to the OS (Keystone frees destroyed enclave memory) —
/// a PMP reconfiguration that marks the domain boundary.
pub fn cfg_destroyed(i: usize) -> u64 {
    let mut b = [0u8; 8];
    b[pmp_entry::SM] = DENY;
    b[pmp_entry::HOST] = ALLOW;
    b[pmp_entry::ENCLAVE0] = if i == 0 { ALLOW } else { DENY };
    b[pmp_entry::ENCLAVE1] = if i == 1 { ALLOW } else { DENY };
    b[pmp_entry::DEFAULT] = ALLOW;
    pack_cfg(b)
}

/// `pmpcfg0` while enclave `i` executes: its region open, the host region
/// and the other enclave denied (Keystone's flip at enclave entry).
pub fn cfg_run(i: usize) -> u64 {
    let mut b = [0u8; 8];
    b[pmp_entry::SM] = DENY;
    b[pmp_entry::HOST] = DENY;
    b[pmp_entry::ENCLAVE0] = if i == 0 { ALLOW } else { DENY };
    b[pmp_entry::ENCLAVE1] = if i == 1 { ALLOW } else { DENY };
    b[pmp_entry::DEFAULT] = ALLOW;
    pack_cfg(b)
}

/// Options controlling the generated firmware.
#[derive(Debug, Clone)]
pub struct SmOptions {
    /// Value programmed into `mcounteren` at boot (which counters S/U may
    /// read). `u64::MAX` reproduces the paper's leaky default; `0` models
    /// the restricted configuration of Figure 6.
    pub mcounteren: u64,
    /// Software mitigation: the SM zeroes all HPM counters at every enclave
    /// entry/exit (the countermeasure Keystone lacks, per case M1).
    pub clear_hpcs_on_switch: bool,
    /// Number of programmable HPM counters to clear.
    pub hpm_counters: usize,
    /// Enable machine external interrupts at boot (`mie.MEIE`); the SM's
    /// interrupt path then services platform-injected IRQs (Figure 6).
    pub enable_external_irq: bool,
    /// Full GPR context switching at enclave boundaries, as real Keystone
    /// performs: host registers saved at run/resume and restored at
    /// stop/exit; enclave registers saved at stop and restored at resume;
    /// fresh entries start with scrubbed registers.
    pub full_context_switch: bool,
}

impl Default for SmOptions {
    fn default() -> Self {
        SmOptions {
            mcounteren: u64::MAX,
            clear_hpcs_on_switch: false,
            hpm_counters: 8,
            enable_external_irq: false,
            full_context_switch: true,
        }
    }
}

/// Generates the complete SM firmware image (boot vector + trap handler)
/// based at [`layout::SM_BASE`].
pub fn generate(opts: &SmOptions) -> Assembler {
    let mut a = Assembler::new(layout::SM_BASE);
    emit_boot(&mut a, opts);
    emit_trap_handler(&mut a, opts);
    a
}

fn emit_boot(a: &mut Assembler, opts: &SmOptions) {
    a.label("boot");
    a.li(Reg::T0, layout::SM_SCRATCH);
    a.csrw(csr::MSCRATCH, Reg::T0);
    a.la(Reg::T0, "trap");
    a.csrw(csr::MTVEC, Reg::T0);
    // PMP address registers for the five fixed regions.
    a.li(Reg::T0, napot_addr(layout::SM_BASE, layout::SM_SIZE));
    a.csrw(csr::pmpaddr_csr_for_entry(pmp_entry::SM), Reg::T0);
    a.li(Reg::T0, napot_addr(layout::HOST_BASE, layout::HOST_SIZE));
    a.csrw(csr::pmpaddr_csr_for_entry(pmp_entry::HOST), Reg::T0);
    a.li(
        Reg::T0,
        napot_addr(layout::enclave_base(0), layout::ENCLAVE_SIZE),
    );
    a.csrw(csr::pmpaddr_csr_for_entry(pmp_entry::ENCLAVE0), Reg::T0);
    a.li(
        Reg::T0,
        napot_addr(layout::enclave_base(1), layout::ENCLAVE_SIZE),
    );
    a.csrw(csr::pmpaddr_csr_for_entry(pmp_entry::ENCLAVE1), Reg::T0);
    a.li(Reg::T0, u64::MAX >> 10); // NAPOT over the whole address space
    a.csrw(csr::pmpaddr_csr_for_entry(pmp_entry::DEFAULT), Reg::T0);
    a.li(Reg::T0, cfg_host());
    a.csrw(csr::PMPCFG0, Reg::T0);
    // Counter visibility for S/U.
    a.li(Reg::T0, opts.mcounteren);
    a.csrw(csr::MCOUNTEREN, Reg::T0);
    if opts.enable_external_irq {
        a.li(Reg::T0, 1 << 11); // MEIE
        a.csrw(csr::MIE, Reg::T0);
    }
    // Enter the host in S-mode.
    a.li(Reg::T0, layout::HOST_BASE);
    a.csrw(csr::MEPC, Reg::T0);
    a.li(Reg::T0, 0x0800); // MPP = Supervisor
    a.csrw(csr::MSTATUS, Reg::T0);
    a.csrw(MDOMAIN, Reg::ZERO); // world: untrusted
    a.mret();
}

fn emit_trap_handler(a: &mut Assembler, opts: &SmOptions) {
    let ts = scratch::TSAVE as i32;
    a.label("trap");
    // t0 <-> mscratch: t0 now points at the scratch area.
    a.csrrw(Reg::T0, csr::MSCRATCH, Reg::T0);
    a.sd(Reg::T1, Reg::T0, ts);
    a.sd(Reg::T2, Reg::T0, ts + 8);
    a.sd(Reg::T3, Reg::T0, ts + 16);
    a.csrr(Reg::T1, csr::MCAUSE);
    a.srli(Reg::T2, Reg::T1, 63);
    a.bnez(Reg::T2, "irq");
    a.li(Reg::T2, 8); // ecall from U
    a.beq(Reg::T1, Reg::T2, "ecall_dispatch");
    a.li(Reg::T2, 9); // ecall from S
    a.beq(Reg::T1, Reg::T2, "ecall_dispatch");
    // Instruction-fetch faults cannot be skipped (the faulting PC is the
    // target itself); resume at the caller-designated recovery point in
    // s11 — the attacker's fault-and-continue convention.
    a.li(Reg::T2, 1); // instruction access fault
    a.beq(Reg::T1, Reg::T2, "fetch_fault");
    a.li(Reg::T2, 12); // instruction page fault
    a.beq(Reg::T1, Reg::T2, "fetch_fault");
    // Any other synchronous fault: skip the faulting instruction and
    // continue — the attacker's fault-and-continue pattern.
    a.label("fault_skip");
    a.csrr(Reg::T1, csr::MEPC);
    a.addi(Reg::T1, Reg::T1, 4);
    a.csrw(csr::MEPC, Reg::T1);
    a.j("restore_mret");

    a.label("fetch_fault");
    a.csrw(csr::MEPC, Reg::S11);
    a.j("restore_mret");

    a.label("ecall_dispatch");
    a.csrr(Reg::T1, csr::MEPC);
    a.addi(Reg::T1, Reg::T1, 4);
    a.csrw(csr::MEPC, Reg::T1);
    for (id, label) in [
        (101u64, "h_create"),
        (102, "h_run"),
        (103, "h_stop"), // stop
        (104, "h_resume"),
        (105, "h_destroy"),
        (106, "h_stop"), // exit: same switch-back path
        (107, "h_attest"),
    ] {
        a.li(Reg::T2, id);
        a.beq(Reg::A7, Reg::T2, label);
    }
    a.li(Reg::A0, u64::MAX); // unknown call
    a.j("restore_mret");

    // -- create ---------------------------------------------------------
    a.label("h_create");
    a.li(Reg::A0, 0);
    a.j("restore_mret");

    // -- run ------------------------------------------------------------
    a.label("h_run");
    a.beqz(Reg::A0, "run_0");
    a.li(Reg::T2, 1);
    a.beq(Reg::A0, Reg::T2, "run_1");
    a.li(Reg::A0, u64::MAX);
    a.j("restore_mret");
    for i in 0..layout::MAX_ENCLAVES {
        a.label(format!("run_{i}"));
        emit_enter_enclave(a, opts, i, None);
    }

    // -- stop / exit (from the enclave) ----------------------------------
    a.label("h_stop");
    // Which enclave? The domain register holds 2 + id.
    a.csrr(Reg::T1, MDOMAIN);
    a.addi(Reg::T1, Reg::T1, -2);
    a.beqz(Reg::T1, "stop_0");
    a.j("stop_1");
    for i in 0..layout::MAX_ENCLAVES {
        a.label(format!("stop_{i}"));
        // Save the enclave's resume point and (optionally) its registers.
        a.csrr(Reg::T3, csr::MEPC);
        a.sd(
            Reg::T3,
            Reg::T0,
            (scratch::ENC_RESUME + 8 * i as u64) as i32,
        );
        if opts.full_context_switch {
            emit_save_context(a, scratch::ENC_GPRS + 0x100 * i as u64);
        }
        // Restore the host's address space and PMP view.
        a.ld(Reg::T1, Reg::T0, scratch::HOST_SATP as i32);
        a.csrw(csr::SATP, Reg::T1);
        a.csrw(MDOMAIN, Reg::ZERO);
        emit_optional_hpc_clear(a, opts);
        a.li(Reg::T1, cfg_host());
        a.csrw(csr::PMPCFG0, Reg::T1);
        a.ld(Reg::T1, Reg::T0, scratch::HOST_CONT as i32);
        a.csrw(csr::MEPC, Reg::T1);
        emit_set_mpp_supervisor(a);
        if opts.full_context_switch {
            // The host's register file comes back; only a0 carries the SBI
            // return value.
            emit_restore_context(a, scratch::HOST_GPRS);
        }
        a.li(Reg::A0, 0);
        a.j("restore_mret");
    }

    // -- resume -----------------------------------------------------------
    a.label("h_resume");
    a.beqz(Reg::A0, "resume_0");
    a.li(Reg::T2, 1);
    a.beq(Reg::A0, Reg::T2, "resume_1");
    a.li(Reg::A0, u64::MAX);
    a.j("restore_mret");
    for i in 0..layout::MAX_ENCLAVES {
        a.label(format!("resume_{i}"));
        emit_enter_enclave(a, opts, i, Some(scratch::ENC_RESUME + 8 * i as u64));
    }

    // -- destroy -----------------------------------------------------------
    a.label("h_destroy");
    a.beqz(Reg::A0, "destroy_0");
    a.li(Reg::T2, 1);
    a.beq(Reg::A0, Reg::T2, "destroy_1");
    a.li(Reg::A0, u64::MAX);
    a.j("restore_mret");
    for i in 0..layout::MAX_ENCLAVES {
        a.label(format!("destroy_{i}"));
        // memset(enclave, 0): real stores through the memory hierarchy.
        a.li(Reg::T1, layout::enclave_base(i));
        a.li(Reg::T2, layout::enclave_base(i) + layout::ENCLAVE_SIZE);
        a.label(format!("destroy_loop_{i}"));
        a.sd(Reg::ZERO, Reg::T1, 0);
        a.addi(Reg::T1, Reg::T1, 8);
        a.bltu(Reg::T1, Reg::T2, format!("destroy_loop_{i}"));
        // Order the scrub before releasing the region to the OS; the
        // pmpcfg rewrite is the domain-boundary reconfiguration that
        // flush-based mitigations hook.
        a.fence();
        a.li(Reg::T1, cfg_destroyed(i));
        a.csrw(csr::PMPCFG0, Reg::T1);
        a.li(Reg::A0, 0);
        a.j("restore_mret");
    }

    // -- attest ------------------------------------------------------------
    a.label("h_attest");
    a.beqz(Reg::A0, "attest_0");
    a.li(Reg::T2, 1);
    a.beq(Reg::A0, Reg::T2, "attest_1");
    a.li(Reg::A0, u64::MAX);
    a.j("restore_mret");
    for i in 0..layout::MAX_ENCLAVES {
        a.label(format!("attest_{i}"));
        // The measurement is keyed with the SM's private key — reading it
        // pulls SM-confidential data into the L1D (the D5 precondition).
        a.li(Reg::T1, layout::SM_KEY);
        a.ld(Reg::A0, Reg::T1, 0);
        // XOR-fold measurement over the enclave image (M-mode reads).
        a.li(Reg::T1, layout::enclave_base(i));
        a.li(Reg::T2, layout::enclave_base(i) + layout::ENCLAVE_SIZE);
        a.label(format!("attest_loop_{i}"));
        a.ld(Reg::T3, Reg::T1, 0);
        a.xor(Reg::A0, Reg::A0, Reg::T3);
        a.addi(Reg::T1, Reg::T1, 8);
        a.bltu(Reg::T1, Reg::T2, format!("attest_loop_{i}"));
        a.j("restore_mret");
    }

    // -- interrupt: full context save (the Figure 6 store-buffer path) -----
    a.label("irq");
    emit_save_context(a, scratch::IRQ_SAVE);
    a.j("restore_mret");

    // -- common return path -------------------------------------------------
    a.label("restore_mret");
    a.ld(Reg::T1, Reg::T0, ts);
    a.ld(Reg::T2, Reg::T0, ts + 8);
    a.ld(Reg::T3, Reg::T0, ts + 16);
    a.csrrw(Reg::T0, csr::MSCRATCH, Reg::T0);
    a.mret();
}

/// Common enclave-entry sequence (run / resume). `resume_slot` selects the
/// saved PC; `None` enters at the enclave's static entry point.
fn emit_enter_enclave(a: &mut Assembler, opts: &SmOptions, i: usize, resume_slot: Option<u64>) {
    if opts.full_context_switch {
        // Park the host's register file (Keystone's context save).
        emit_save_context(a, scratch::HOST_GPRS);
    }
    // Save host continuation (mepc was already advanced past the ecall).
    a.csrr(Reg::T1, csr::MEPC);
    a.sd(Reg::T1, Reg::T0, scratch::HOST_CONT as i32);
    // Park the host's address space: the enclave runs physically addressed.
    a.csrr(Reg::T1, csr::SATP);
    a.sd(Reg::T1, Reg::T0, scratch::HOST_SATP as i32);
    a.csrw(csr::SATP, Reg::ZERO);
    a.li(Reg::T1, 2 + i as u64);
    a.csrw(MDOMAIN, Reg::T1);
    emit_optional_hpc_clear(a, opts);
    // Flip the PMP view: enclave open, host shut (the Keystone switch).
    a.li(Reg::T1, cfg_run(i));
    a.csrw(csr::PMPCFG0, Reg::T1);
    match resume_slot {
        None => {
            a.li(Reg::T1, layout::enclave_entry(i));
        }
        Some(slot) => {
            a.ld(Reg::T1, Reg::T0, slot as i32);
        }
    }
    a.csrw(csr::MEPC, Reg::T1);
    emit_set_mpp_supervisor(a);
    if opts.full_context_switch {
        match resume_slot {
            // Fresh entry: the enclave starts with a scrubbed register file.
            None => emit_scrub_context(a),
            // Resume: the enclave's own saved context comes back.
            Some(_) => emit_restore_context(a, scratch::ENC_GPRS + 0x100 * i as u64),
        }
    } else {
        a.li(Reg::A0, 0);
    }
    a.j("restore_mret");
}

fn emit_set_mpp_supervisor(a: &mut Assembler) {
    a.li(Reg::T1, 0x1800); // clear both MPP bits
    a.inst(teesec_isa::inst::Inst::Csr {
        op: teesec_isa::inst::CsrOp::Rc,
        rd: Reg::ZERO,
        src: teesec_isa::inst::CsrSrc::Reg(Reg::T1),
        csr: csr::MSTATUS,
    });
    a.li(Reg::T1, 0x0800); // MPP = S
    a.csrrs(Reg::ZERO, csr::MSTATUS, Reg::T1);
}

/// Saves the trapping context's x1..x31 into `scratch + area`. The
/// handler's clobbered temporaries are recovered from their spill slots
/// (t0 from mscratch, t1/t2/t3 from TSAVE). `t0` holds the scratch base.
fn emit_save_context(a: &mut Assembler, area: u64) {
    let area = area as i32;
    let ts = scratch::TSAVE as i32;
    a.csrr(Reg::T1, csr::MSCRATCH); // original t0 (x5)
    a.sd(Reg::T1, Reg::T0, area + (5 - 1) * 8);
    a.ld(Reg::T1, Reg::T0, ts);
    a.sd(Reg::T1, Reg::T0, area + (6 - 1) * 8); // x6
    a.ld(Reg::T1, Reg::T0, ts + 8);
    a.sd(Reg::T1, Reg::T0, area + (7 - 1) * 8); // x7
    a.ld(Reg::T1, Reg::T0, ts + 16);
    a.sd(Reg::T1, Reg::T0, area + (28 - 1) * 8); // x28
    for r in 1..32u8 {
        if matches!(r, 5 | 6 | 7 | 28) {
            continue;
        }
        a.sd(Reg::new(r), Reg::T0, area + (r as i32 - 1) * 8);
    }
}

/// Restores x1..x31 from `scratch + area`, staging the handler-clobbered
/// temporaries into their spill slots so the common `restore_mret` epilogue
/// materializes them.
fn emit_restore_context(a: &mut Assembler, area: u64) {
    let area = area as i32;
    let ts = scratch::TSAVE as i32;
    // Stage x5/x6/x7/x28 where restore_mret expects them.
    a.ld(Reg::T1, Reg::T0, area + (5 - 1) * 8);
    a.csrw(csr::MSCRATCH, Reg::T1);
    a.ld(Reg::T1, Reg::T0, area + (6 - 1) * 8);
    a.sd(Reg::T1, Reg::T0, ts);
    a.ld(Reg::T1, Reg::T0, area + (7 - 1) * 8);
    a.sd(Reg::T1, Reg::T0, ts + 8);
    a.ld(Reg::T1, Reg::T0, area + (28 - 1) * 8);
    a.sd(Reg::T1, Reg::T0, ts + 16);
    for r in 1..32u8 {
        if matches!(r, 5 | 6 | 7 | 28) {
            continue;
        }
        a.ld(Reg::new(r), Reg::T0, area + (r as i32 - 1) * 8);
    }
}

/// Zeroes x1..x31 for a fresh enclave entry (staging the mret-restored
/// temporaries as zeros too).
fn emit_scrub_context(a: &mut Assembler) {
    let ts = scratch::TSAVE as i32;
    a.csrw(csr::MSCRATCH, Reg::ZERO);
    a.sd(Reg::ZERO, Reg::T0, ts);
    a.sd(Reg::ZERO, Reg::T0, ts + 8);
    a.sd(Reg::ZERO, Reg::T0, ts + 16);
    for r in 1..32u8 {
        if matches!(r, 5 | 6 | 7 | 28) {
            continue;
        }
        a.mv(Reg::new(r), Reg::ZERO);
    }
}

fn emit_optional_hpc_clear(a: &mut Assembler, opts: &SmOptions) {
    if !opts.clear_hpcs_on_switch {
        return;
    }
    for i in 0..opts.hpm_counters {
        a.csrw(csr::mhpmcounter_csr(i), Reg::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firmware_assembles_and_fits() {
        let asm = generate(&SmOptions::default());
        let words = asm.assemble().expect("SM firmware must assemble");
        // Must fit below the scratch area.
        assert!(
            (words.len() as u64) * 4 <= layout::SM_SCRATCH - layout::SM_BASE,
            "SM code ({} words) overflows into scratch",
            words.len()
        );
    }

    #[test]
    fn firmware_with_hpc_clearing_assembles() {
        let opts = SmOptions {
            clear_hpcs_on_switch: true,
            hpm_counters: 8,
            ..SmOptions::default()
        };
        let words = generate(&opts).assemble().expect("assemble");
        assert!((words.len() as u64) * 4 <= layout::SM_SCRATCH - layout::SM_BASE);
    }

    #[test]
    fn cfg_values_flip_exactly_the_right_entries() {
        let host = cfg_host();
        let run0 = cfg_run(0);
        let run1 = cfg_run(1);
        let byte = |v: u64, i: usize| ((v >> (8 * i)) & 0xFF) as u8;
        // SM always denied to S/U; default always open.
        for v in [host, run0, run1] {
            assert_eq!(byte(v, pmp_entry::SM), DENY);
            assert_eq!(byte(v, pmp_entry::DEFAULT), ALLOW);
        }
        assert_eq!(byte(host, pmp_entry::HOST), ALLOW);
        assert_eq!(byte(host, pmp_entry::ENCLAVE0), DENY);
        assert_eq!(byte(run0, pmp_entry::HOST), DENY);
        assert_eq!(byte(run0, pmp_entry::ENCLAVE0), ALLOW);
        assert_eq!(byte(run0, pmp_entry::ENCLAVE1), DENY);
        assert_eq!(byte(run1, pmp_entry::ENCLAVE1), ALLOW);
        assert_eq!(byte(run1, pmp_entry::ENCLAVE0), DENY);
    }

    #[test]
    fn napot_encoding_matches_pmp_decode() {
        use teesec_isa::pmp::PmpSet;
        let mut p = PmpSet::new(8);
        p.set_addr_raw(0, napot_addr(layout::enclave_base(0), layout::ENCLAVE_SIZE));
        p.set_cfg(0, teesec_isa::pmp::PmpCfg::from_byte(ALLOW));
        assert_eq!(
            p.entry_range(0),
            Some((
                layout::enclave_base(0),
                layout::enclave_base(0) + layout::ENCLAVE_SIZE
            ))
        );
    }
}
