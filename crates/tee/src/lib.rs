//! A Keystone-like trusted execution environment model.
//!
//! Keystone builds TEEs from three ingredients the paper's evaluation
//! depends on, all reproduced here as *real code running on the simulated
//! core* rather than host-side shortcuts:
//!
//! * [`sm`] — the security monitor, generated as machine-mode RISC-V
//!   firmware: SBI dispatch, per-domain PMP switching, destroy-time memory
//!   scrubbing with real stores (the D3 mechanism), and full-context
//!   interrupt saves (the Figure 6 store-buffer path);
//! * [`pagetable`] — the proxy-kernel page-table builder providing the
//!   host's sv39 environment, walked by the core's hardware PTW (the D2
//!   access path);
//! * [`platform`] — the image builder composing SM + host + enclaves +
//!   seeded secrets into a bootable [`teesec_uarch::core::Core`].
//!
//! [`enclave`] captures the lifecycle state machine the SM enforces, and
//! [`sbi`] the host↔SM call ABI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enclave;
pub mod layout;
pub mod pagetable;
pub mod platform;
pub mod sbi;
pub mod sm;

pub use enclave::{EnclaveState, LifecycleTracker};
pub use layout::Layout;
pub use platform::{HostVm, Platform, PlatformBuilder};
pub use sbi::SbiCall;
