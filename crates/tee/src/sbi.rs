//! The supervisor binary interface between the untrusted host (or the
//! enclave runtime) and the security monitor.
//!
//! Calls are made by loading the function id into `a7` (and the enclave id
//! into `a0`) and executing `ecall`, mirroring Keystone's SBI dispatch.

use serde::{Deserialize, Serialize};

/// SBI function identifiers understood by the security monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u64)]
pub enum SbiCall {
    /// Create (validate/measure) an enclave. Host → SM.
    CreateEnclave = 101,
    /// Enter an enclave at its entry point. Host → SM.
    RunEnclave = 102,
    /// Yield from the enclave back to the host, preserving state.
    /// Enclave → SM.
    StopEnclave = 103,
    /// Re-enter a stopped enclave at its saved PC. Host → SM.
    ResumeEnclave = 104,
    /// Scrub and release an enclave's memory. Host → SM.
    DestroyEnclave = 105,
    /// Terminal exit from the enclave. Enclave → SM.
    ExitEnclave = 106,
    /// Produce an attestation measurement over enclave memory. Host → SM.
    AttestEnclave = 107,
}

impl SbiCall {
    /// The `a7` value for this call.
    pub fn id(self) -> u64 {
        self as u64
    }

    /// Decodes an `a7` value.
    pub fn from_id(v: u64) -> Option<SbiCall> {
        Some(match v {
            101 => SbiCall::CreateEnclave,
            102 => SbiCall::RunEnclave,
            103 => SbiCall::StopEnclave,
            104 => SbiCall::ResumeEnclave,
            105 => SbiCall::DestroyEnclave,
            106 => SbiCall::ExitEnclave,
            107 => SbiCall::AttestEnclave,
            _ => return None,
        })
    }

    /// All calls, in id order.
    pub fn all() -> &'static [SbiCall] {
        &[
            SbiCall::CreateEnclave,
            SbiCall::RunEnclave,
            SbiCall::StopEnclave,
            SbiCall::ResumeEnclave,
            SbiCall::DestroyEnclave,
            SbiCall::ExitEnclave,
            SbiCall::AttestEnclave,
        ]
    }

    /// `true` for calls issued by the enclave side.
    pub fn from_enclave(self) -> bool {
        matches!(self, SbiCall::StopEnclave | SbiCall::ExitEnclave)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        for &c in SbiCall::all() {
            assert_eq!(SbiCall::from_id(c.id()), Some(c));
        }
        assert_eq!(SbiCall::from_id(0), None);
        assert_eq!(SbiCall::from_id(999), None);
    }

    #[test]
    fn caller_side_classification() {
        assert!(SbiCall::StopEnclave.from_enclave());
        assert!(SbiCall::ExitEnclave.from_enclave());
        assert!(!SbiCall::RunEnclave.from_enclave());
        assert!(!SbiCall::DestroyEnclave.from_enclave());
    }
}
