//! The proxy-kernel page-table builder: constructs real sv39 page tables in
//! simulated physical memory for the host's supervisor/user environment.
//!
//! The hardware page-table walker in the core model traverses these tables
//! through the cache hierarchy, which is exactly the implicit access path
//! the paper's case D2 exploits.

use teesec_isa::vm::{PhysAddr, Pte, VirtAddr, PAGE_SIZE, SV39_LEVELS};
use teesec_uarch::mem::Memory;

/// Builds sv39 page tables in a bump-allocated physical arena.
#[derive(Debug)]
pub struct PageTableBuilder {
    root: u64,
    next_free: u64,
    limit: u64,
}

impl PageTableBuilder {
    /// Creates a builder whose root table lives at `arena_base`.
    ///
    /// # Panics
    ///
    /// Panics unless `arena_base` is page-aligned and `arena_size` holds at
    /// least one table.
    pub fn new(arena_base: u64, arena_size: u64, mem: &mut Memory) -> PageTableBuilder {
        assert_eq!(arena_base % PAGE_SIZE, 0, "arena must be page aligned");
        assert!(
            arena_size >= PAGE_SIZE,
            "arena must hold at least the root table"
        );
        // Zero the root table.
        for off in (0..PAGE_SIZE).step_by(8) {
            mem.write_u64(arena_base + off, 0);
        }
        PageTableBuilder {
            root: arena_base,
            next_free: arena_base + PAGE_SIZE,
            limit: arena_base + arena_size,
        }
    }

    /// Physical address of the root table (for `satp`).
    pub fn root(&self) -> u64 {
        self.root
    }

    fn alloc_table(&mut self, mem: &mut Memory) -> u64 {
        assert!(
            self.next_free + PAGE_SIZE <= self.limit,
            "page-table arena exhausted"
        );
        let t = self.next_free;
        self.next_free += PAGE_SIZE;
        for off in (0..PAGE_SIZE).step_by(8) {
            mem.write_u64(t + off, 0);
        }
        t
    }

    /// Maps the 4 KiB page containing `va` to the page containing `pa` with
    /// the given leaf flags (combine [`Pte::R`]/[`Pte::W`]/[`Pte::X`]/
    /// [`Pte::U`]).
    pub fn map_page(&mut self, va: u64, pa: u64, flags: u64, mem: &mut Memory) {
        let va = VirtAddr(va).page_base();
        let pa = PhysAddr(pa).page_base();
        let mut table = self.root;
        for level in (1..SV39_LEVELS).rev() {
            let slot = table + va.vpn(level) * 8;
            let pte = Pte(mem.read_u64(slot));
            table = if pte.valid() {
                assert!(!pte.is_leaf(), "superpage in the way of a 4K mapping");
                pte.pa().0
            } else {
                let t = self.alloc_table(mem);
                mem.write_u64(slot, Pte::table(PhysAddr(t)).0);
                t
            };
        }
        let slot = table + va.vpn(0) * 8;
        mem.write_u64(slot, Pte::leaf(pa, flags).0);
    }

    /// Identity-maps `[base, base+size)` with the given flags.
    pub fn identity_map(&mut self, base: u64, size: u64, flags: u64, mem: &mut Memory) {
        let start = base & !(PAGE_SIZE - 1);
        let end = base + size;
        let mut a = start;
        while a < end {
            self.map_page(a, a, flags, mem);
            a += PAGE_SIZE;
        }
    }

    /// Bytes of arena consumed so far.
    pub fn used_bytes(&self) -> u64 {
        self.next_free - self.root
    }
}

/// A software reference walker (test oracle): translates `va` using the
/// tables in `mem`, returning the leaf PTE.
pub fn software_walk(root: u64, va: u64, mem: &Memory) -> Option<Pte> {
    let va = VirtAddr(va);
    let mut table = root;
    for level in (0..SV39_LEVELS).rev() {
        let pte = Pte(mem.read_u64(table + va.vpn(level) * 8));
        if !pte.valid() {
            return None;
        }
        if pte.is_leaf() {
            return (level == 0).then_some(pte);
        }
        table = pte.pa().0;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_then_walk() {
        let mut mem = Memory::new();
        let mut pt = PageTableBuilder::new(0x8100_0000, 0x10_0000, &mut mem);
        pt.map_page(0x4000_1000, 0x8020_3000, Pte::R | Pte::W, &mut mem);
        let leaf = software_walk(pt.root(), 0x4000_1234, &mem).expect("mapped");
        assert_eq!(leaf.pa().0, 0x8020_3000);
        assert!(leaf.readable() && leaf.writable() && !leaf.executable());
        assert!(software_walk(pt.root(), 0x4000_2000, &mem).is_none());
    }

    #[test]
    fn identity_map_covers_range() {
        let mut mem = Memory::new();
        let mut pt = PageTableBuilder::new(0x8100_0000, 0x10_0000, &mut mem);
        pt.identity_map(0x8010_0000, 0x4000, Pte::R | Pte::W | Pte::X, &mut mem);
        for va in [0x8010_0000u64, 0x8010_1000, 0x8010_3FF8] {
            let leaf = software_walk(pt.root(), va, &mem).expect("mapped");
            assert_eq!(leaf.pa().0, va & !(PAGE_SIZE - 1));
        }
        assert!(software_walk(pt.root(), 0x8010_4000, &mem).is_none());
    }

    #[test]
    fn shared_intermediate_tables() {
        let mut mem = Memory::new();
        let mut pt = PageTableBuilder::new(0x8100_0000, 0x10_0000, &mut mem);
        // Two pages in the same 2 MiB region share L1/L0 tables.
        pt.map_page(0x4000_0000, 0x8020_0000, Pte::R, &mut mem);
        let used_after_first = pt.used_bytes();
        pt.map_page(0x4000_1000, 0x8020_1000, Pte::R, &mut mem);
        assert_eq!(pt.used_bytes(), used_after_first, "no new tables needed");
        assert!(software_walk(pt.root(), 0x4000_0000, &mem).is_some());
        assert!(software_walk(pt.root(), 0x4000_1000, &mem).is_some());
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn arena_exhaustion_panics() {
        let mut mem = Memory::new();
        // Room for root + one table only.
        let mut pt = PageTableBuilder::new(0x8100_0000, 2 * PAGE_SIZE, &mut mem);
        // Needs L1+L0 => second allocation fails.
        pt.map_page(0x4000_0000, 0x8020_0000, Pte::R, &mut mem);
    }

    #[test]
    fn user_flag_propagates() {
        let mut mem = Memory::new();
        let mut pt = PageTableBuilder::new(0x8100_0000, 0x10_0000, &mut mem);
        pt.map_page(0x10_0000, 0x8020_0000, Pte::R | Pte::U, &mut mem);
        let leaf = software_walk(pt.root(), 0x10_0000, &mem).unwrap();
        assert!(leaf.user());
    }
}
