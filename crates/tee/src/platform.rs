//! The full Keystone-like platform: security-monitor firmware, host
//! environment (optionally with sv39 paging via the proxy kernel), enclave
//! payloads and seeded secrets, composed into a bootable [`Core`] image.
//!
//! This is the equivalent of the paper's Keystone-enabled Berkeley
//! Bootloader + modified riscv-pk test environment (paper §6).

use teesec_isa::asm::{AssembleError, Assembler};
use teesec_isa::csr;
use teesec_isa::inst::Inst;
use teesec_isa::reg::Reg;
use teesec_isa::vm::Pte;
use teesec_uarch::config::CoreConfig;
use teesec_uarch::core::{Core, RunExit};
use teesec_uarch::mem::Memory;

use crate::layout::{self, Layout};
use crate::pagetable::PageTableBuilder;
use crate::sbi::SbiCall;
use crate::sm::{self, SmOptions};

/// Host address-translation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HostVm {
    /// Host supervisor runs physically addressed.
    #[default]
    Bare,
    /// The proxy kernel builds sv39 identity maps (host, shared, enclave
    /// regions) and the host prologue activates them — giving the hardware
    /// page-table walker real work.
    Sv39,
}

type CodeGen<'a> = Box<dyn FnOnce(&mut Assembler, &Layout) + 'a>;

/// Builds a [`Platform`].
///
/// ```
/// use teesec_isa::reg::Reg;
/// use teesec_tee::platform::Platform;
/// use teesec_uarch::CoreConfig;
///
/// let mut platform = Platform::builder(CoreConfig::boom())
///     .host_code(|a, _| {
///         a.li(Reg::S2, 42);
///     })
///     .build()?;
/// platform.run(500_000);
/// assert_eq!(platform.core.reg(Reg::S2), 42);
/// # Ok::<(), teesec_tee::platform::BuildError>(())
/// ```
pub struct PlatformBuilder<'a> {
    core_config: CoreConfig,
    sm_options: SmOptions,
    host_vm: HostVm,
    host: Option<CodeGen<'a>>,
    enclaves: Vec<Option<CodeGen<'a>>>,
    seeds: Vec<(u64, Vec<u8>)>,
    irq_at: Option<u64>,
    trace_enabled: bool,
}

/// Errors produced while building a platform image.
#[derive(Debug)]
pub enum BuildError {
    /// A code generator produced unassemblable code.
    Assemble(AssembleError),
    /// A region's code overflowed its allotted space.
    CodeTooLarge {
        /// Region description.
        region: &'static str,
        /// Words emitted.
        words: usize,
        /// Words available.
        capacity: usize,
    },
    /// Snapshot capture could not park the boot at the host entry point.
    SnapshotBoot,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Assemble(e) => write!(f, "assembly failed: {e}"),
            BuildError::CodeTooLarge {
                region,
                words,
                capacity,
            } => {
                write!(f, "{region} code too large: {words} words > {capacity}")
            }
            BuildError::SnapshotBoot => {
                write!(f, "snapshot capture: SM boot never reached the host entry")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<AssembleError> for BuildError {
    fn from(e: AssembleError) -> Self {
        BuildError::Assemble(e)
    }
}

impl<'a> PlatformBuilder<'a> {
    /// Starts a builder for the given core configuration.
    pub fn new(core_config: CoreConfig) -> PlatformBuilder<'a> {
        PlatformBuilder {
            core_config,
            sm_options: SmOptions::default(),
            host_vm: HostVm::Bare,
            host: None,
            enclaves: (0..layout::MAX_ENCLAVES).map(|_| None).collect(),
            seeds: Vec::new(),
            irq_at: None,
            trace_enabled: true,
        }
    }

    /// Supplies the host (untrusted supervisor) code generator. The code is
    /// entered in S-mode at [`layout::HOST_BASE`]; an `ebreak` terminator is
    /// appended automatically.
    pub fn host_code(mut self, f: impl FnOnce(&mut Assembler, &Layout) + 'a) -> Self {
        self.host = Some(Box::new(f));
        self
    }

    /// Supplies enclave `i`'s payload. Entered in S-mode at its region
    /// base; a `StopEnclave` terminator is appended automatically.
    pub fn enclave_code(mut self, i: usize, f: impl FnOnce(&mut Assembler, &Layout) + 'a) -> Self {
        self.enclaves[i] = Some(Box::new(f));
        self
    }

    /// Host address-translation mode.
    pub fn host_vm(mut self, vm: HostVm) -> Self {
        self.host_vm = vm;
        self
    }

    /// Security monitor options.
    pub fn sm_options(mut self, o: SmOptions) -> Self {
        self.sm_options = o;
        self
    }

    /// Seeds raw bytes into physical memory before boot (pre-loaded enclave
    /// binaries / secrets).
    pub fn seed_bytes(mut self, addr: u64, bytes: impl Into<Vec<u8>>) -> Self {
        self.seeds.push((addr, bytes.into()));
        self
    }

    /// Seeds a 64-bit little-endian value.
    pub fn seed_u64(self, addr: u64, v: u64) -> Self {
        self.seed_bytes(addr, v.to_le_bytes().to_vec())
    }

    /// Schedules a machine external interrupt at the given cycle.
    pub fn external_interrupt_at(mut self, cycle: u64) -> Self {
        self.irq_at = Some(cycle);
        self
    }

    /// Disables trace recording (throughput benchmarks).
    pub fn without_trace(mut self) -> Self {
        self.trace_enabled = false;
        self
    }

    /// Assembles every region and boots a core.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when generated code fails to assemble or
    /// overflows its region.
    pub fn build(self) -> Result<Platform, BuildError> {
        let lay = Layout::default();
        let mut mem = Memory::new();

        load_sm(&self.sm_options, &mut mem)?;
        let satp_val = build_host_pagetables(self.host_vm, &mut mem);

        let host_words = assemble_host(self.host, satp_val, &lay)?;
        mem.load_words(layout::HOST_BASE, &host_words);

        load_enclaves(self.enclaves, &lay, &mut mem)?;

        for (addr, bytes) in self.seeds {
            mem.write_bytes(addr, &bytes);
        }

        let mut core = Core::new(self.core_config, mem, layout::SM_BASE);
        core.trace.set_enabled(self.trace_enabled);
        if let Some(at) = self.irq_at {
            core.schedule_external_interrupt(at);
        }
        Ok(Platform { core, layout: lay })
    }

    /// Forks a platform from a pre-booted [`PlatformSnapshot`] instead of
    /// re-assembling the SM and re-simulating the boot sequence. The
    /// snapshot must have been captured with the same core configuration,
    /// SM options and host VM mode this builder was given; per-case state
    /// (host/enclave code, seeds, interrupt schedule) is applied on top of
    /// the forked copy-on-write image.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when generated code fails to assemble or
    /// overflows its region.
    pub fn build_from(self, snap: &PlatformSnapshot) -> Result<Platform, BuildError> {
        let lay = snap.layout.clone();
        let mut core = snap.core.clone();

        let host_words = assemble_host(self.host, snap.satp_val, &lay)?;
        core.mem.load_words(layout::HOST_BASE, &host_words);

        load_enclaves(self.enclaves, &lay, &mut core.mem)?;

        for (addr, bytes) in self.seeds {
            core.mem.write_bytes(addr, &bytes);
        }

        if !self.trace_enabled {
            // Match a fresh `.without_trace()` build: nothing recorded.
            core.trace.clear();
            core.trace.set_enabled(false);
        }
        if let Some(at) = self.irq_at {
            core.schedule_external_interrupt(at);
        }
        core.resume_fetch();
        Ok(Platform { core, layout: lay })
    }
}

fn load_sm(sm_options: &SmOptions, mem: &mut Memory) -> Result<(), BuildError> {
    let sm_asm = sm::generate(sm_options);
    let sm_words = sm_asm.assemble()?;
    let sm_cap = ((layout::SM_SCRATCH - layout::SM_BASE) / 4) as usize;
    if sm_words.len() > sm_cap {
        return Err(BuildError::CodeTooLarge {
            region: "security monitor",
            words: sm_words.len(),
            capacity: sm_cap,
        });
    }
    mem.load_words(layout::SM_BASE, &sm_words);
    Ok(())
}

/// Builds the host page tables (before host code so the prologue can
/// reference the root); returns the SATP value to activate, when paging.
fn build_host_pagetables(host_vm: HostVm, mem: &mut Memory) -> Option<u64> {
    match host_vm {
        HostVm::Bare => None,
        HostVm::Sv39 => {
            let mut pt = PageTableBuilder::new(layout::PT_BASE, layout::PT_SIZE, mem);
            let rwx = Pte::R | Pte::W | Pte::X;
            pt.identity_map(layout::HOST_BASE, layout::HOST_SIZE, rwx, mem);
            pt.identity_map(layout::SHARED_BASE, layout::SHARED_SIZE, rwx | Pte::U, mem);
            for i in 0..layout::MAX_ENCLAVES {
                // The malicious OS maps enclave physical memory into its
                // own address space; PMP is the only line of defense.
                pt.identity_map(
                    layout::enclave_base(i),
                    layout::ENCLAVE_SIZE,
                    Pte::R | Pte::W,
                    mem,
                );
            }
            Some(teesec_isa::csr::Satp::sv39(pt.root()).0)
        }
    }
}

/// Host code: prologue + payload + terminator.
fn assemble_host(
    host: Option<CodeGen<'_>>,
    satp_val: Option<u64>,
    lay: &Layout,
) -> Result<Vec<u32>, BuildError> {
    let mut host_asm = Assembler::new(layout::HOST_BASE);
    if let Some(satp) = satp_val {
        host_asm.li(Reg::T0, satp);
        host_asm.csrw(csr::SATP, Reg::T0);
        host_asm.sfence_vma();
        // Permit supervisor access to user pages (the shared buffer).
        host_asm.li(Reg::T0, 1 << 18); // sstatus.SUM
        host_asm.csrrs(Reg::ZERO, csr::SSTATUS, Reg::T0);
    }
    if let Some(f) = host {
        f(&mut host_asm, lay);
    }
    host_asm.inst(Inst::Ebreak);
    let host_words = host_asm.assemble()?;
    let host_cap = ((layout::HOST_DATA - layout::HOST_BASE) / 4) as usize;
    if host_words.len() > host_cap {
        return Err(BuildError::CodeTooLarge {
            region: "host",
            words: host_words.len(),
            capacity: host_cap,
        });
    }
    Ok(host_words)
}

fn load_enclaves(
    enclaves: Vec<Option<CodeGen<'_>>>,
    lay: &Layout,
    mem: &mut Memory,
) -> Result<(), BuildError> {
    for (i, gen) in enclaves.into_iter().enumerate() {
        let Some(f) = gen else { continue };
        let mut easm = Assembler::new(layout::enclave_base(i));
        f(&mut easm, lay);
        // Default terminator: yield back to the host.
        easm.li(Reg::A7, SbiCall::StopEnclave.id());
        easm.ecall();
        let words = easm.assemble()?;
        let cap = ((layout::enclave_data(i) - layout::enclave_base(i)) / 4) as usize;
        if words.len() > cap {
            return Err(BuildError::CodeTooLarge {
                region: "enclave",
                words: words.len(),
                capacity: cap,
            });
        }
        mem.load_words(layout::enclave_base(i), &words);
    }
    Ok(())
}

/// A pre-booted platform checkpoint: the SM image is assembled, host page
/// tables are built, and the boot sequence has been simulated up to — but
/// not including — the first host instruction fetch. Forking a case from a
/// snapshot ([`PlatformBuilder::build_from`]) shares all of that work;
/// thanks to the copy-on-write [`Memory`] the fork itself is cheap.
///
/// The capture point is a fetch fence at [`layout::HOST_BASE`]: the `mret`
/// into the host has committed, PMP/CSR state is programmed, and fetch is
/// parked one instruction short of host code — so the forked platform's
/// cycle-by-cycle behavior is identical to a fresh build's.
#[derive(Debug, Clone)]
pub struct PlatformSnapshot {
    core: Core,
    satp_val: Option<u64>,
    layout: Layout,
    boot_cycles: u64,
    capture_us: u64,
}

impl PlatformSnapshot {
    /// Assembles the SM + page tables and simulates the boot up to the
    /// first host fetch for the given configuration triple.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when the SM fails to assemble or the boot
    /// never reaches the host entry point.
    pub fn capture(
        core_config: CoreConfig,
        sm_options: &SmOptions,
        host_vm: HostVm,
    ) -> Result<PlatformSnapshot, BuildError> {
        let t0 = std::time::Instant::now();
        let lay = Layout::default();
        let mut mem = Memory::new();
        load_sm(sm_options, &mut mem)?;
        let satp_val = build_host_pagetables(host_vm, &mut mem);
        let mut core = Core::new(core_config, mem, layout::SM_BASE);
        if !core.run_until_fetch(layout::HOST_BASE, 1_000_000) {
            return Err(BuildError::SnapshotBoot);
        }
        let boot_cycles = core.cycle;
        if core.fast_path() {
            // Dirty-delta storage: freeze the boot prefix so every fork
            // shares it by refcount and only logs its own delta.
            core.trace.freeze();
        }
        Ok(PlatformSnapshot {
            core,
            satp_val,
            layout: lay,
            boot_cycles,
            capture_us: t0.elapsed().as_micros().min(u64::MAX as u128) as u64,
        })
    }

    /// Simulated cycles the boot prefix consumed (the work each fork
    /// skips).
    pub fn boot_cycles(&self) -> u64 {
        self.boot_cycles
    }

    /// Wall-clock µs the capture itself cost (SM assembly, page-table
    /// build, and boot simulation) — the one-time price each fork
    /// amortizes, surfaced in the snapshot-cache metrics.
    pub fn capture_us(&self) -> u64 {
        self.capture_us
    }

    /// The boot-prefix trace events a fork starts with (replayed into a
    /// streaming sink before live events arrive).
    pub fn boot_events(&self) -> impl Iterator<Item = &teesec_uarch::trace::TraceEvent> {
        self.core.trace.iter_events()
    }
}

/// A booted platform: a core loaded with SM + host + enclave images.
///
/// Cloning is copy-on-write at page granularity (see [`Memory`]): a clone
/// shares every backed page with the original, so checkpoint/fork schemes
/// can duplicate a mid-run platform for the cost of the core's registers
/// and per-page pointers.
#[derive(Debug, Clone)]
pub struct Platform {
    /// The simulated core (trace, caches and CSRs are reachable through it).
    pub core: Core,
    /// The physical memory map.
    pub layout: Layout,
}

impl Platform {
    /// Shorthand for [`PlatformBuilder::new`].
    pub fn builder<'a>(core_config: CoreConfig) -> PlatformBuilder<'a> {
        PlatformBuilder::new(core_config)
    }

    /// Runs until the host's `ebreak` or the cycle limit.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        self.core.run(max_cycles)
    }

    /// [`Platform::run`] with a periodic observer — see
    /// [`Core::run_batched`]; the stepping is bit-identical to `run`.
    pub fn run_batched(
        &mut self,
        max_cycles: u64,
        batch: u64,
        on_batch: &mut dyn FnMut(&Core),
    ) -> RunExit {
        self.core.run_batched(max_cycles, batch, on_batch)
    }
}

/// Emits the canonical SBI call sequence (`a7 = call`, `a0 = enclave`,
/// `ecall`) — the building block of setup gadgets.
pub fn emit_sbi_call(a: &mut Assembler, call: SbiCall, enclave: u64) {
    a.li(Reg::A7, call.id());
    a.li(Reg::A0, enclave);
    a.ecall();
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_uarch::trace::Domain;

    fn boom() -> CoreConfig {
        CoreConfig::boom()
    }

    #[test]
    fn boots_to_host_and_halts() {
        let mut p = Platform::builder(boom())
            .host_code(|a, _| {
                a.li(Reg::S2, 0x1234);
            })
            .build()
            .expect("build");
        assert_eq!(p.run(500_000), RunExit::Halted);
        assert_eq!(p.core.reg(Reg::S2), 0x1234);
        assert_eq!(
            p.core.priv_level,
            teesec_isa::priv_level::PrivLevel::Supervisor
        );
        assert_eq!(p.core.domain, Domain::Untrusted);
    }

    #[test]
    fn host_cannot_read_enclave_memory_architecturally() {
        let mut p = Platform::builder(boom())
            .seed_u64(layout::enclave_data(0), 0xDEAD_BEEF)
            .host_code(|a, lay| {
                a.li(Reg::S2, 0x1111);
                a.li(Reg::T4, lay.enclave_bases[0] + layout::ENCLAVE_SIZE / 2);
                a.ld(Reg::S3, Reg::T4, 0); // PMP fault; SM skips it
                a.li(Reg::S4, 0x2222); // execution continues
            })
            .build()
            .expect("build");
        assert_eq!(p.run(500_000), RunExit::Halted);
        assert_eq!(p.core.reg(Reg::S2), 0x1111);
        assert_eq!(p.core.reg(Reg::S4), 0x2222);
        // Architecturally the secret must not land in s3.
        assert_ne!(p.core.reg(Reg::S3), 0xDEAD_BEEF);
    }

    #[test]
    fn full_enclave_lifecycle_roundtrip() {
        let mut p = Platform::builder(boom())
            .enclave_code(0, |a, lay| {
                // The enclave writes a token into its own memory, then the
                // implicit StopEnclave terminator yields.
                a.li(Reg::T0, lay.enclave_bases[0] + layout::ENCLAVE_SIZE / 2);
                a.li(Reg::T1, 0x0E0E);
                a.sd(Reg::T1, Reg::T0, 0);
            })
            .host_code(|a, _| {
                emit_sbi_call(a, SbiCall::CreateEnclave, 0);
                emit_sbi_call(a, SbiCall::RunEnclave, 0);
                // Back from the enclave's stop: mark progress.
                a.li(Reg::S2, 0x77);
                emit_sbi_call(a, SbiCall::DestroyEnclave, 0);
                a.li(Reg::S3, 0x88);
            })
            .build()
            .expect("build");
        assert_eq!(p.run(2_000_000), RunExit::Halted);
        assert_eq!(p.core.reg(Reg::S2), 0x77, "host resumed after enclave stop");
        assert_eq!(p.core.reg(Reg::S3), 0x88, "host survived destroy");
        // Destroy scrubbed the enclave token.
        assert_eq!(p.core.mem.read_u64(layout::enclave_data(0)), 0);
    }

    #[test]
    fn enclave_runs_in_enclave_domain() {
        let mut p = Platform::builder(boom())
            .enclave_code(0, |a, _| {
                a.li(Reg::T1, 1);
            })
            .host_code(|a, _| {
                emit_sbi_call(a, SbiCall::RunEnclave, 0);
            })
            .build()
            .expect("build");
        assert_eq!(p.run(1_000_000), RunExit::Halted);
        let saw_enclave_domain = p
            .core
            .trace
            .iter_events()
            .any(|e| e.domain == Domain::Enclave(0));
        assert!(saw_enclave_domain, "trace must attribute enclave execution");
        assert_eq!(
            p.core.domain,
            Domain::Untrusted,
            "back to untrusted at halt"
        );
    }

    #[test]
    fn stop_resume_preserves_enclave_progress() {
        let mut p = Platform::builder(boom())
            .enclave_code(0, |a, lay| {
                let data = lay.enclave_bases[0] + layout::ENCLAVE_SIZE / 2;
                a.li(Reg::S5, 0xA);
                a.li(Reg::A7, SbiCall::StopEnclave.id());
                a.ecall(); // yield mid-way
                           // Resumed here. S5 is *not* preserved across the switch in
                           // this SM (registers are the enclave runtime's job), so
                           // write a token from fresh registers instead.
                a.li(Reg::T0, data);
                a.li(Reg::T1, 0xBEEF);
                a.sd(Reg::T1, Reg::T0, 0);
                // implicit terminator: stop again
            })
            .host_code(|a, _| {
                emit_sbi_call(a, SbiCall::RunEnclave, 0);
                a.li(Reg::S2, 1); // after first stop
                emit_sbi_call(a, SbiCall::ResumeEnclave, 0);
                a.li(Reg::S3, 2); // after second stop
            })
            .build()
            .expect("build");
        assert_eq!(p.run(2_000_000), RunExit::Halted);
        assert_eq!(p.core.reg(Reg::S2), 1);
        assert_eq!(p.core.reg(Reg::S3), 2);
        assert_eq!(p.core.mem.read_u64(layout::enclave_data(0)), 0xBEEF);
    }

    #[test]
    fn sv39_host_boots_and_walks_pages() {
        let mut p = Platform::builder(boom())
            .host_vm(HostVm::Sv39)
            .host_code(|a, lay| {
                // A translated data access (identity map).
                a.li(Reg::T0, lay.shared_base);
                a.li(Reg::T1, 0x5AFE);
                a.sd(Reg::T1, Reg::T0, 0);
                a.ld(Reg::S2, Reg::T0, 0);
            })
            .build()
            .expect("build");
        assert_eq!(p.run(1_000_000), RunExit::Halted);
        assert_eq!(p.core.reg(Reg::S2), 0x5AFE);
        // The hardware walker must have inserted translations.
        assert!(
            p.core.lsu.dtlb.valid_count() > 0,
            "DTLB populated by hardware walks"
        );
    }

    fn lifecycle_builder<'a>(cfg: CoreConfig) -> PlatformBuilder<'a> {
        Platform::builder(cfg)
            .seed_u64(layout::enclave_data(0) + 8, 0x5E_C4E7)
            .enclave_code(0, |a, lay| {
                let data = lay.enclave_bases[0] + layout::ENCLAVE_SIZE / 2;
                a.li(Reg::T0, data);
                a.ld(Reg::T1, Reg::T0, 8);
                a.sd(Reg::T1, Reg::T0, 16);
            })
            .host_code(|a, _| {
                emit_sbi_call(a, SbiCall::CreateEnclave, 0);
                emit_sbi_call(a, SbiCall::RunEnclave, 0);
                a.li(Reg::S2, 0x33);
            })
    }

    #[test]
    fn snapshot_fork_matches_fresh_build_exactly() {
        let snap = PlatformSnapshot::capture(boom(), &SmOptions::default(), HostVm::Bare)
            .expect("capture");
        assert!(snap.boot_cycles() > 0);

        let mut fresh = lifecycle_builder(boom()).build().expect("fresh build");
        let mut forked = lifecycle_builder(boom())
            .build_from(&snap)
            .expect("forked build");

        assert_eq!(fresh.run(2_000_000), RunExit::Halted);
        assert_eq!(forked.run(2_000_000), RunExit::Halted);

        assert_eq!(fresh.core.cycle, forked.core.cycle, "cycle-exact fork");
        for r in teesec_isa::reg::Reg::all() {
            assert_eq!(fresh.core.reg(r), forked.core.reg(r), "{r:?}");
        }
        assert_eq!(
            fresh.core.counters(),
            forked.core.counters(),
            "microarch counter digests must match"
        );
        assert_eq!(fresh.core.trace.len(), forked.core.trace.len());
        assert_eq!(
            fresh.core.mem.first_difference(&forked.core.mem),
            None,
            "end-of-run memory identical"
        );
    }

    #[test]
    fn snapshot_fork_matches_fresh_build_under_sv39() {
        let snap = PlatformSnapshot::capture(boom(), &SmOptions::default(), HostVm::Sv39)
            .expect("capture");
        let build = || {
            Platform::builder(boom())
                .host_vm(HostVm::Sv39)
                .host_code(|a, lay| {
                    a.li(Reg::T0, lay.shared_base);
                    a.li(Reg::T1, 0x5AFE);
                    a.sd(Reg::T1, Reg::T0, 0);
                    a.ld(Reg::S2, Reg::T0, 0);
                })
        };
        let mut fresh = build().build().expect("fresh");
        let mut forked = build().build_from(&snap).expect("forked");
        assert_eq!(fresh.run(1_000_000), RunExit::Halted);
        assert_eq!(forked.run(1_000_000), RunExit::Halted);
        assert_eq!(fresh.core.reg(Reg::S2), 0x5AFE);
        assert_eq!(fresh.core.cycle, forked.core.cycle);
        assert_eq!(fresh.core.counters(), forked.core.counters());
    }

    #[test]
    fn two_enclaves_are_isolated_by_pmp() {
        // Enclave 0 attempts to read enclave 1's memory and reports what it
        // saw through the shared buffer (registers do not survive the
        // context switch — the SM saves/restores the host's register file).
        let mut p = Platform::builder(boom())
            .seed_u64(layout::enclave_data(1), 0x5EC2_0001)
            .enclave_code(0, |a, lay| {
                a.li(Reg::T0, lay.enclave_bases[1] + layout::ENCLAVE_SIZE / 2);
                a.ld(Reg::T1, Reg::T0, 0); // faults; SM skips
                a.li(Reg::T2, lay.shared_base);
                a.sd(Reg::T1, Reg::T2, 0); // what the probe saw
                a.li(Reg::T1, 0x99);
                a.sd(Reg::T1, Reg::T2, 8); // progress token
            })
            .host_code(|a, lay| {
                emit_sbi_call(a, SbiCall::RunEnclave, 0);
                a.li(Reg::T0, lay.shared_base);
                a.ld(Reg::S6, Reg::T0, 0);
                a.ld(Reg::S7, Reg::T0, 8);
            })
            .build()
            .expect("build");
        assert_eq!(p.run(2_000_000), RunExit::Halted);
        // Architecturally the probe must not observe enclave 1's secret...
        assert_ne!(p.core.reg(Reg::S6), 0x5EC2_0001);
        // ...and the enclave ran to completion after the skipped fault.
        assert_eq!(p.core.reg(Reg::S7), 0x99);
    }
}
