//! The physical memory map of the simulated Keystone-like platform.
//!
//! All regions are NAPOT-aligned so each maps to exactly one PMP entry —
//! the way Keystone carves physical memory into security domains.

use serde::{Deserialize, Serialize};

/// Base of the security monitor region (boot vector + trap handler +
/// scratch). Protected from S/U by PMP entry 0.
pub const SM_BASE: u64 = 0x8000_0000;
/// Size of the SM region (NAPOT).
pub const SM_SIZE: u64 = 0x8000;
/// SM scratch area (context save slots) inside the SM region.
pub const SM_SCRATCH: u64 = SM_BASE + 0x4000;

/// The security monitor's private key slot — SM-confidential data that the
/// SM itself reads during attestation (and therefore caches), the D5
/// target.
pub const SM_KEY: u64 = SM_BASE + 0x6000;

/// Base of the untrusted host region (supervisor code + data). PMP entry 1;
/// de-permissioned while an enclave runs.
pub const HOST_BASE: u64 = 0x8010_0000;
/// Size of the host region (NAPOT).
pub const HOST_SIZE: u64 = 0x10000;
/// Host data area inside the host region.
pub const HOST_DATA: u64 = HOST_BASE + 0x8000;

/// Base of the always-accessible shared buffer (Keystone's untrusted shared
/// memory between host and enclave).
pub const SHARED_BASE: u64 = 0x8030_0000;
/// Size of the shared region (covered by the default-allow entry).
pub const SHARED_SIZE: u64 = 0x1_0000;

/// Number of enclave slots the platform supports.
pub const MAX_ENCLAVES: usize = 2;
/// Size of each enclave region (NAPOT).
pub const ENCLAVE_SIZE: u64 = 0x4000;

/// Base address of enclave `i`'s region. PMP entry `2 + i`.
pub fn enclave_base(i: usize) -> u64 {
    assert!(i < MAX_ENCLAVES, "enclave index {i} out of range");
    0x8040_0000 + (i as u64) * ENCLAVE_SIZE
}

/// Entry point of enclave `i` (start of its region).
pub fn enclave_entry(i: usize) -> u64 {
    enclave_base(i)
}

/// Data/secret area inside enclave `i`'s region.
pub fn enclave_data(i: usize) -> u64 {
    enclave_base(i) + ENCLAVE_SIZE / 2
}

/// Base of the host's page-table arena (used when the host runs with sv39).
pub const PT_BASE: u64 = 0x8100_0000;
/// Size reserved for page tables.
pub const PT_SIZE: u64 = 0x10_0000;

/// PMP entry indices, fixed by the SM's boot sequence.
pub mod pmp_entry {
    /// SM region (always deny to S/U).
    pub const SM: usize = 0;
    /// Host region (deny while an enclave runs).
    pub const HOST: usize = 1;
    /// First enclave region.
    pub const ENCLAVE0: usize = 2;
    /// Second enclave region.
    pub const ENCLAVE1: usize = 3;
    /// Default allow-everything entry (lowest priority).
    pub const DEFAULT: usize = 4;
}

/// Scratch slot offsets (from [`SM_SCRATCH`]).
pub mod scratch {
    /// Saved temporaries during trap handling (t1..t3).
    pub const TSAVE: u64 = 0x00;
    /// Host continuation PC across an enclave run.
    pub const HOST_CONT: u64 = 0x20;
    /// Saved host `satp` across an enclave run.
    pub const HOST_SATP: u64 = 0x28;
    /// Per-enclave resume PC (8 bytes each).
    pub const ENC_RESUME: u64 = 0x30;
    /// Interrupt context-save area (x1..x31).
    pub const IRQ_SAVE: u64 = 0x100;
    /// Host GPR context saved across an enclave run (x1..x31).
    pub const HOST_GPRS: u64 = 0x200;
    /// Per-enclave GPR context saved at stop, restored at resume
    /// (x1..x31 each, 0x100 apart).
    pub const ENC_GPRS: u64 = 0x300;
}

/// A description of the full layout (serializable for reports).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// SM region base.
    pub sm_base: u64,
    /// SM region size.
    pub sm_size: u64,
    /// Host region base.
    pub host_base: u64,
    /// Host region size.
    pub host_size: u64,
    /// Shared buffer base.
    pub shared_base: u64,
    /// Enclave bases.
    pub enclave_bases: Vec<u64>,
    /// Per-enclave size.
    pub enclave_size: u64,
    /// Page-table arena base.
    pub pt_base: u64,
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            sm_base: SM_BASE,
            sm_size: SM_SIZE,
            host_base: HOST_BASE,
            host_size: HOST_SIZE,
            shared_base: SHARED_BASE,
            enclave_bases: (0..MAX_ENCLAVES).map(enclave_base).collect(),
            enclave_size: ENCLAVE_SIZE,
            pt_base: PT_BASE,
        }
    }
}

impl Layout {
    /// `true` if `addr` falls inside enclave `i`'s region.
    pub fn in_enclave(&self, i: usize, addr: u64) -> bool {
        let base = self.enclave_bases[i];
        addr >= base && addr < base + self.enclave_size
    }

    /// The enclave owning `addr`, if any.
    pub fn enclave_of(&self, addr: u64) -> Option<usize> {
        (0..self.enclave_bases.len()).find(|&i| self.in_enclave(i, addr))
    }

    /// `true` if `addr` falls inside the SM region.
    pub fn in_sm(&self, addr: u64) -> bool {
        addr >= self.sm_base && addr < self.sm_base + self.sm_size
    }

    /// `true` if `addr` falls inside the host region.
    pub fn in_host(&self, addr: u64) -> bool {
        addr >= self.host_base && addr < self.host_base + self.host_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_napot_aligned() {
        assert_eq!(SM_BASE % SM_SIZE, 0);
        assert_eq!(HOST_BASE % HOST_SIZE, 0);
        for i in 0..MAX_ENCLAVES {
            assert_eq!(enclave_base(i) % ENCLAVE_SIZE, 0, "enclave {i}");
        }
        assert!(SM_SIZE.is_power_of_two());
        assert!(HOST_SIZE.is_power_of_two());
        assert!(ENCLAVE_SIZE.is_power_of_two());
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut regions = vec![
            (SM_BASE, SM_SIZE),
            (HOST_BASE, HOST_SIZE),
            (SHARED_BASE, SHARED_SIZE),
            (PT_BASE, PT_SIZE),
        ];
        for i in 0..MAX_ENCLAVES {
            regions.push((enclave_base(i), ENCLAVE_SIZE));
        }
        for (i, &(b1, s1)) in regions.iter().enumerate() {
            for &(b2, s2) in regions.iter().skip(i + 1) {
                assert!(b1 + s1 <= b2 || b2 + s2 <= b1, "overlap {b1:#x}/{b2:#x}");
            }
        }
    }

    #[test]
    fn layout_classification() {
        let l = Layout::default();
        assert!(l.in_sm(SM_BASE + 8));
        assert!(!l.in_sm(HOST_BASE));
        assert!(l.in_host(HOST_DATA));
        assert_eq!(l.enclave_of(enclave_data(0)), Some(0));
        assert_eq!(l.enclave_of(enclave_data(1)), Some(1));
        assert_eq!(l.enclave_of(HOST_BASE), None);
    }

    #[test]
    fn scratch_slots_fit_in_sm_region() {
        // Evaluated through a runtime binding so the (intentional) layout
        // check is not elided as a constant assertion.
        let top = SM_SCRATCH + scratch::ENC_GPRS + MAX_ENCLAVES as u64 * 0x100;
        let limit = SM_BASE + SM_SIZE;
        assert!(
            top < limit,
            "scratch overflows the SM region: {top:#x} >= {limit:#x}"
        );
        // Context areas must not collide (the GPR area size goes through
        // black_box so the intentional layout check stays a runtime one).
        let gpr_area = std::hint::black_box(31u64 * 8);
        assert!(scratch::IRQ_SAVE + gpr_area <= scratch::HOST_GPRS);
        assert!(scratch::HOST_GPRS + gpr_area <= scratch::ENC_GPRS);
    }
}
