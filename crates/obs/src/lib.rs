//! Observability primitives for the TEESec framework.
//!
//! Two pieces, both free of external dependencies (shim-crate style, like
//! the rest of the workspace):
//!
//! * [`Histogram`] — a fixed-footprint, log₂-bucketed histogram of `u64`
//!   samples with exact count/sum/min/max and interpolated quantiles
//!   ([`Histogram::quantile`], [`Histogram::summary`]). Merging two
//!   histograms is lossless w.r.t. the bucket resolution, so per-worker
//!   histograms fold into campaign-wide ones.
//! * [`MetricsSnapshot`] — an ordered bag of counters, gauges, and
//!   histograms that renders itself as Prometheus text exposition format
//!   ([`MetricsSnapshot::render_prometheus`]) and, being `Serialize`, as
//!   JSON via `serde_json`.
//!
//! The campaign engine records per-phase wall times and per-case simulated
//! cycles into histograms, folds them into its aggregate metrics, and the
//! CLI's `--metrics-out` flag writes a [`MetricsSnapshot`] next to the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Number of histogram buckets: one for zero plus one per `u64` bit length.
pub const BUCKETS: usize = 65;

/// The `Content-Type` of the Prometheus text exposition format version
/// [`MetricsSnapshot::render_prometheus`] emits — what a conforming
/// `/metrics` endpoint must send.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts exact zeros; bucket `i` (1..=64) counts samples whose
/// bit length is `i`, i.e. the half-open range `[2^(i-1), 2^i)`. Count,
/// sum, min, and max are exact; quantiles interpolate linearly inside the
/// hit bucket and are clamped to `[min, max]`, so they are never more than
/// one octave off and are exact at the distribution's edges.
///
/// ```
/// use teesec_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 1000);
/// assert!(h.quantile(0.5) >= 2 && h.quantile(0.5) <= 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket sample counts (see type docs for the bucket layout).
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `value` (its bit length).
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive value range `[lo, hi]` covered by bucket `i`.
    fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            (1u64 << (i - 1), ((1u128 << i) - 1) as u64)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), interpolated within the hit bucket
    /// and clamped to the exact `[min, max]` range. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample the quantile falls on.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Self::bucket_range(i);
                let into = rank - seen; // 1..=n within this bucket
                let span = hi - lo;
                let est = lo + ((u128::from(span) * u128::from(into)) / u128::from(n)) as u64;
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// The canonical five-number summary plus count and sum.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs, in
    /// ascending bound order (the shape Prometheus buckets want, before
    /// cumulation).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_range(i).1, n))
    }
}

/// Percentile summary of a [`Histogram`] — the digest folded into the
/// engine's aggregate metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u128,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Median (log-bucket interpolated).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// One labeled scalar sample of a metric family.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalarMetric {
    /// Metric family name (`teesec_cases_total`, ...).
    pub name: String,
    /// Label pairs, rendered in order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: u64,
    /// One-line help text (emitted once per family).
    pub help: String,
}

/// One histogram metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramMetric {
    /// Metric family name.
    pub name: String,
    /// Label pairs shared by every series of this entry (`le` is appended
    /// last on the `_bucket` series at render time).
    pub labels: Vec<(String, String)>,
    /// One-line help text.
    pub help: String,
    /// The samples.
    pub histogram: Histogram,
    /// Pre-computed digest (kept in the JSON form for consumers that don't
    /// want to re-derive quantiles from buckets).
    pub summary: Summary,
}

/// An ordered collection of metrics, renderable as Prometheus text format
/// or JSON.
///
/// ```
/// use teesec_obs::{Histogram, MetricsSnapshot};
///
/// let mut snap = MetricsSnapshot::new();
/// snap.counter("teesec_cases_total", &[], 42, "Cases attempted");
/// let mut h = Histogram::new();
/// h.record(7);
/// snap.histogram("teesec_case_cycles", h, "Simulated cycles per case");
/// let text = snap.render_prometheus();
/// assert!(text.contains("teesec_cases_total 42"));
/// assert!(text.contains("teesec_case_cycles_count 1"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<ScalarMetric>,
    /// Point-in-time gauges.
    pub gauges: Vec<ScalarMetric>,
    /// Fixed-point gauges: `value` holds millionths, rendered as a decimal
    /// (`1_500_000` → `1.500000`). Keeps seconds- and ratio-valued series
    /// exact and `Eq` without `f64` anywhere in the snapshot.
    pub micro_gauges: Vec<ScalarMetric>,
    /// Distributions.
    pub histograms: Vec<HistogramMetric>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Appends a counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64, help: &str) {
        self.counters.push(ScalarMetric {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
            help: help.to_string(),
        });
    }

    /// Appends a gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: u64, help: &str) {
        self.gauges.push(ScalarMetric {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
            help: help.to_string(),
        });
    }

    /// Appends a fixed-point gauge sample: `value_micro` is the value in
    /// millionths (so `teesec_phase_wall_seconds_p50` for 1.5 s is
    /// `1_500_000`), rendered as `1.500000` in the Prometheus exposition.
    pub fn gauge_micro(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value_micro: u64,
        help: &str,
    ) {
        self.micro_gauges.push(ScalarMetric {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value: value_micro,
            help: help.to_string(),
        });
    }

    /// Appends an unlabeled histogram.
    pub fn histogram(&mut self, name: &str, histogram: Histogram, help: &str) {
        self.histogram_labeled(name, &[], histogram, help);
    }

    /// Appends a labeled histogram: one `(name, labels)` series of the
    /// family `name`. The `le` bucket label is appended after `labels` at
    /// render time, and `# HELP`/`# TYPE` headers are emitted once per
    /// family even when several labeled series share it.
    pub fn histogram_labeled(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        histogram: Histogram,
        help: &str,
    ) {
        let summary = histogram.summary();
        self.histograms.push(HistogramMetric {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            histogram,
            summary,
        });
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Series are grouped by family (first-appearance order) so each
    /// `# HELP`/`# TYPE` header is emitted exactly once, as the format
    /// requires, regardless of insertion order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (metrics, kind, micro) in [
            (&self.counters, "counter", false),
            (&self.gauges, "gauge", false),
            (&self.micro_gauges, "gauge", true),
        ] {
            let mut families: Vec<&str> = Vec::new();
            for m in metrics.iter() {
                if !families.contains(&m.name.as_str()) {
                    families.push(&m.name);
                }
            }
            for family in families {
                let mut first = true;
                for m in metrics.iter().filter(|m| m.name == family) {
                    if first {
                        let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                        let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
                        first = false;
                    }
                    let value = if micro {
                        format!("{}.{:06}", m.value / 1_000_000, m.value % 1_000_000)
                    } else {
                        m.value.to_string()
                    };
                    let _ = writeln!(out, "{}{} {}", m.name, render_labels(&m.labels), value);
                }
            }
        }
        let mut hist_families: Vec<&str> = Vec::new();
        for h in &self.histograms {
            if !hist_families.contains(&h.name.as_str()) {
                hist_families.push(&h.name);
            }
        }
        for family in hist_families {
            let mut first = true;
            for h in self.histograms.iter().filter(|h| h.name == family) {
                if first {
                    let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
                    let _ = writeln!(out, "# TYPE {} histogram", h.name);
                    first = false;
                }
                let mut cumulative = 0u64;
                for (le, n) in h.histogram.nonzero_buckets() {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        h.name,
                        render_labels_with_le(&h.labels, &le.to_string())
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    h.name,
                    render_labels_with_le(&h.labels, "+Inf"),
                    h.histogram.count()
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    h.name,
                    render_labels(&h.labels),
                    h.histogram.sum()
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    h.name,
                    render_labels(&h.labels),
                    h.histogram.count()
                );
            }
        }
        out
    }

    /// Serializes the snapshot as pretty-printed JSON.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialize metrics snapshot")
    }
}

/// Renders a Prometheus label set (empty string when there are no labels).
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Renders a Prometheus label set with the `le` bucket label appended last
/// (Prometheus convention for histogram `_bucket` series).
fn render_labels_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    body.push(format!("le=\"{le}\""));
    format!("{{{}}}", body.join(","))
}

/// Escapes a label value per the Prometheus text format rules.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), Summary::default());
    }

    #[test]
    fn exact_stats_and_bucketing() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 7, 8, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), 1 + 1 + 7 + 8 + 1000 + u128::from(u64::MAX));
        // 0 → bucket 0; 1 → bucket 1; 7 → bucket 3; 8 → bucket 4;
        // 1000 → bucket 10; MAX → bucket 64.
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 2));
        assert_eq!(buckets[2], (7, 1));
        assert_eq!(buckets[3], (15, 1));
        assert_eq!(buckets[4], (1023, 1));
        assert_eq!(buckets[5], (u64::MAX, 1));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p50 >= h.min() && p99 <= h.max());
        // The median of 1..=1000 is ~500; log buckets bound the error by one
        // octave: the estimate must land in [256, 1023].
        assert!((256..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 14, 159, 2653] {
            a.record(v);
            all.record(v);
        }
        for v in [58u64, 979, 323846] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn histogram_roundtrips_through_json() {
        let mut h = Histogram::new();
        for v in [1u64, 10, 100] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).expect("serialize");
        let back: Histogram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, h);
        assert_eq!(back.summary(), h.summary());
    }

    #[test]
    fn prometheus_rendering_shape() {
        let mut snap = MetricsSnapshot::new();
        snap.counter("t_total", &[], 3, "total things");
        snap.counter("t_by_kind", &[("kind", "a\"b")], 1, "things by kind");
        snap.gauge("t_now", &[("s", "x")], 9, "current things");
        let mut h = Histogram::new();
        h.record(5);
        h.record(100);
        snap.histogram("t_lat", h, "latency");

        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE t_total counter"), "{text}");
        assert!(text.contains("t_total 3"));
        assert!(text.contains("t_by_kind{kind=\"a\\\"b\"} 1"));
        assert!(text.contains("# TYPE t_now gauge"));
        assert!(text.contains("t_now{s=\"x\"} 9"));
        assert!(text.contains("# TYPE t_lat histogram"));
        assert!(text.contains("t_lat_bucket{le=\"7\"} 1"));
        assert!(text.contains("t_lat_bucket{le=\"127\"} 2"));
        assert!(text.contains("t_lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("t_lat_sum 105"));
        assert!(text.contains("t_lat_count 2"));
    }

    #[test]
    fn labeled_histograms_share_one_family_header() {
        let mut snap = MetricsSnapshot::new();
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        b.record(200);
        snap.histogram_labeled("t_res_cycles", &[("structure", "L1d")], a, "residency");
        snap.histogram_labeled("t_res_cycles", &[("structure", "Lfb")], b, "residency");

        let text = snap.render_prometheus();
        // One HELP/TYPE pair for the whole family, both series present.
        assert_eq!(text.matches("# TYPE t_res_cycles histogram").count(), 1);
        assert!(
            text.contains("t_res_cycles_bucket{structure=\"L1d\",le=\"7\"} 1"),
            "{text}"
        );
        assert!(text.contains("t_res_cycles_bucket{structure=\"L1d\",le=\"+Inf\"} 1"));
        assert!(text.contains("t_res_cycles_bucket{structure=\"Lfb\",le=\"255\"} 2"));
        assert!(text.contains("t_res_cycles_sum{structure=\"L1d\"} 5"));
        assert!(text.contains("t_res_cycles_count{structure=\"Lfb\"} 2"));
    }

    #[test]
    fn micro_gauges_render_as_fixed_point_decimals() {
        let mut snap = MetricsSnapshot::new();
        snap.gauge_micro(
            "t_wall_seconds",
            &[("phase", "simulate")],
            1_500_000,
            "wall s",
        );
        snap.gauge_micro("t_wall_seconds", &[("phase", "scan")], 42, "wall s");
        snap.gauge_micro("t_busy_ratio", &[], 987_654, "busy fraction");
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE t_wall_seconds gauge"), "{text}");
        assert!(text.contains("t_wall_seconds{phase=\"simulate\"} 1.500000"));
        assert!(text.contains("t_wall_seconds{phase=\"scan\"} 0.000042"));
        assert!(text.contains("t_busy_ratio 0.987654"));
        // One HELP/TYPE pair for the two-sample family.
        assert_eq!(text.matches("# TYPE t_wall_seconds").count(), 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut snap = MetricsSnapshot::new();
        snap.counter("c", &[("l", "v")], 1, "help");
        snap.histogram("h", Histogram::new(), "help");
        let json = snap.render_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }
}
