//! JSON rendering and parsing for the in-repo serde facade.
//!
//! Provides the `serde_json` subset this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], the [`json!`] object macro, and a
//! re-exported [`Value`]. Output is real JSON; integers keep full 128-bit
//! precision in both directions.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Builds a [`Value::Object`] from literal keys and `Serialize` values.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::__private::Serialize::to_value(&$val))),*
        ])
    };
}

#[doc(hidden)]
pub mod __private {
    pub use serde::Serialize;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Keep a decimal point so the value re-parses as a float.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' | b'f' | b'n' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!(
                        "invalid literal at byte {}",
                        self.pos
                    )))
                }
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte onward for multi-byte
                    // characters.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid float `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u128>()
                .map(|n| Value::Int(-(n as i128)))
                .map_err(|_| Error::custom(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid integer `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "12345678901234567890",
            "\"hi\\n\"",
        ] {
            let v = parse_value(src).expect(src);
            let rendered = to_string(&v).unwrap();
            assert_eq!(parse_value(&rendered).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn round_trip_nested() {
        let src = r#"{"a": [1, 2, {"b": null}], "c": "x\"y", "d": -3}"#;
        let v = parse_value(src).unwrap();
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn u64_max_survives() {
        let v = parse_value(&u64::MAX.to_string()).unwrap();
        assert_eq!(v, Value::UInt(u64::MAX as u128));
        let back: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u64, "b": "text" });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":"text"}"#);
    }
}
