//! Branch prediction structures: uBTB, FTB and a bimodal BHT.
//!
//! The uBTB uses *partial tags* (a configurable number of low PC bits),
//! which is precisely what enables the paper's M2 attack: a host branch and
//! an enclave branch that differ only in excluded high bits collide in the
//! same entry (paper Figure 7).

use serde::{Deserialize, Serialize};

use crate::trace::Domain;

/// One uBTB/FTB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtbEntry {
    /// Valid bit.
    pub valid: bool,
    /// Partial tag derived from the branch PC.
    pub tag: u64,
    /// Predicted target address.
    pub target: u64,
    /// Last observed direction (used with the BHT for conditionals).
    pub taken: bool,
    /// LRU stamp (FTB ways).
    pub last_use: u64,
    /// Domain whose branch trained this entry — the metadata the checker
    /// inspects for P2 residue.
    pub train_domain: Domain,
    /// Full PC that trained the entry (model-side ground truth for collision
    /// diagnosis; real hardware does not store this).
    pub train_pc: u64,
}

const EMPTY: BtbEntry = BtbEntry {
    valid: false,
    tag: 0,
    target: 0,
    taken: false,
    last_use: 0,
    train_domain: Domain::Untrusted,
    train_pc: 0,
};

/// A direct-mapped micro-BTB with partial tags.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ubtb {
    entries: Vec<BtbEntry>,
    index_bits: u32,
    tag_bits: u32,
}

impl Ubtb {
    /// Creates a uBTB with `entries` slots (power of two) tagging
    /// `tag_bits` PC bits above the index.
    pub fn new(entries: usize, tag_bits: u32) -> Ubtb {
        assert!(
            entries.is_power_of_two(),
            "uBTB entries must be a power of two"
        );
        Ubtb {
            entries: vec![EMPTY; entries],
            index_bits: entries.trailing_zeros(),
            tag_bits,
        }
    }

    /// The entry index for a PC (instructions are 4-byte aligned).
    pub fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize
    }

    /// The partial tag for a PC — high bits beyond `index_bits + tag_bits`
    /// are *discarded*, enabling cross-domain collisions.
    pub fn tag(&self, pc: u64) -> u64 {
        (pc >> (2 + self.index_bits)) & ((1 << self.tag_bits) - 1)
    }

    /// Predicts the target for `pc`, if a tag-matching entry exists.
    pub fn predict(&self, pc: u64) -> Option<&BtbEntry> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.tag == self.tag(pc)).then_some(e)
    }

    /// Trains the entry for a resolved branch.
    pub fn train(&mut self, pc: u64, target: u64, taken: bool, domain: Domain) -> usize {
        let idx = self.index(pc);
        let tag = self.tag(pc);
        self.entries[idx] = BtbEntry {
            valid: true,
            tag,
            target,
            taken,
            last_use: 0,
            train_domain: domain,
            train_pc: pc,
        };
        idx
    }

    /// `true` when `a` and `b` are distinct PCs mapping to the same entry
    /// with the same tag (the M2 collision predicate).
    pub fn collides(&self, a: u64, b: u64) -> bool {
        a != b && self.index(a) == self.index(b) && self.tag(a) == self.tag(b)
    }

    /// Invalidates every entry (BPU flush mitigation).
    pub fn flush_all(&mut self) {
        self.entries.fill(EMPTY);
    }

    /// All entries, for snapshot inspection.
    pub fn entries(&self) -> &[BtbEntry] {
        &self.entries
    }
}

/// A set-associative fetch-target buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ftb {
    entries: Vec<BtbEntry>,
    sets: usize,
    ways: usize,
    tag_bits: u32,
    use_counter: u64,
}

impl Ftb {
    /// Creates an FTB with the given geometry.
    pub fn new(sets: usize, ways: usize, tag_bits: u32) -> Ftb {
        assert!(sets.is_power_of_two(), "FTB sets must be a power of two");
        Ftb {
            entries: vec![EMPTY; sets * ways],
            sets,
            ways,
            tag_bits,
            use_counter: 0,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, pc: u64) -> u64 {
        (pc >> (2 + self.sets.trailing_zeros())) & ((1 << self.tag_bits) - 1)
    }

    /// Predicts the target for `pc`.
    pub fn predict(&self, pc: u64) -> Option<&BtbEntry> {
        let s = self.set_of(pc);
        let t = self.tag_of(pc);
        self.entries[s * self.ways..(s + 1) * self.ways]
            .iter()
            .find(|e| e.valid && e.tag == t)
    }

    /// Trains the FTB with a resolved branch.
    pub fn train(&mut self, pc: u64, target: u64, taken: bool, domain: Domain) {
        let s = self.set_of(pc);
        let t = self.tag_of(pc);
        self.use_counter += 1;
        let counter = self.use_counter;
        let base = s * self.ways;
        let way = (0..self.ways)
            .find(|&w| {
                let e = &self.entries[base + w];
                e.valid && e.tag == t
            })
            .or_else(|| (0..self.ways).find(|&w| !self.entries[base + w].valid))
            .unwrap_or_else(|| {
                (0..self.ways)
                    .min_by_key(|&w| self.entries[base + w].last_use)
                    .expect("ways >= 1")
            });
        self.entries[base + way] = BtbEntry {
            valid: true,
            tag: t,
            target,
            taken,
            last_use: counter,
            train_domain: domain,
            train_pc: pc,
        };
    }

    /// Invalidates every entry.
    pub fn flush_all(&mut self) {
        self.entries.fill(EMPTY);
    }

    /// All entries, for snapshot inspection.
    pub fn entries(&self) -> &[BtbEntry] {
        &self.entries
    }
}

/// A bimodal (2-bit counter) branch history table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bht {
    counters: Vec<u8>,
}

impl Bht {
    /// Creates a BHT with `n` two-bit counters, initialized weakly not-taken.
    pub fn new(n: usize) -> Bht {
        assert!(n.is_power_of_two(), "BHT size must be a power of two");
        Bht {
            counters: vec![1; n],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicted direction for `pc`.
    pub fn predict_taken(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Updates the counter with the resolved direction.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Resets all counters to weakly not-taken.
    pub fn flush_all(&mut self) {
        self.counters.fill(1);
    }

    /// Raw counter values (snapshot inspection).
    pub fn counters(&self) -> &[u8] {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ubtb_partial_tag_collision() {
        // 1024 entries (10 index bits), 16 tag bits: PCs differing only in
        // bits >= 2+10+16 = 28 collide.
        let ubtb = Ubtb::new(1024, 16);
        let host_pc = 0x0000_0000_4000_1230;
        let encl_pc = 0x0000_0000_9000_1230; // differs in bits 28+
        assert!(ubtb.collides(host_pc, encl_pc));
        // Same high bits but different low bits: no collision.
        assert!(!ubtb.collides(host_pc, host_pc + 4));
    }

    #[test]
    fn ubtb_prediction_after_training() {
        let mut ubtb = Ubtb::new(16, 8);
        assert!(ubtb.predict(0x1000).is_none());
        ubtb.train(0x1000, 0x2000, true, Domain::Enclave(0));
        let e = ubtb.predict(0x1000).expect("hit");
        assert_eq!(e.target, 0x2000);
        assert_eq!(e.train_domain, Domain::Enclave(0));
    }

    #[test]
    fn ubtb_colliding_pc_hits_foreign_entry() {
        let mut ubtb = Ubtb::new(1024, 16);
        let encl_pc = 0x0000_0000_9000_1230;
        let host_pc = 0x0000_0000_4000_1230;
        ubtb.train(encl_pc, 0x9000_2000, true, Domain::Enclave(7));
        // The *host* PC tag-matches the enclave-trained entry: prediction
        // leaks enclave control flow.
        let e = ubtb.predict(host_pc).expect("collision hit");
        assert_eq!(e.train_domain, Domain::Enclave(7));
        assert_ne!(e.train_pc, host_pc);
    }

    #[test]
    fn ubtb_flush_removes_residue() {
        let mut ubtb = Ubtb::new(16, 8);
        ubtb.train(0x1000, 0x2000, true, Domain::Enclave(0));
        ubtb.flush_all();
        assert!(ubtb.predict(0x1000).is_none());
    }

    #[test]
    fn ftb_set_associative_training() {
        let mut ftb = Ftb::new(16, 2, 12);
        ftb.train(0x1000, 0xA000, true, Domain::Untrusted);
        ftb.train(0x1000, 0xB000, true, Domain::Untrusted);
        // Retrain in place: still one entry, updated target.
        let e = ftb.predict(0x1000).expect("hit");
        assert_eq!(e.target, 0xB000);
    }

    #[test]
    fn ftb_lru_within_set() {
        let mut ftb = Ftb::new(1, 2, 20);
        // Three distinct tags into a single set of two ways.
        ftb.train(0x0004, 0x1, true, Domain::Untrusted);
        ftb.train(0x1004, 0x2, true, Domain::Untrusted);
        assert!(ftb.predict(0x0004).is_some());
        ftb.train(0x2004, 0x3, true, Domain::Untrusted);
        // 0x0004 was trained first => it was LRU => evicted.
        assert!(ftb.predict(0x0004).is_none() || ftb.predict(0x1004).is_none());
        assert!(ftb.predict(0x2004).is_some());
    }

    #[test]
    fn bht_counter_saturation() {
        let mut bht = Bht::new(16);
        let pc = 0x4000;
        assert!(!bht.predict_taken(pc)); // weakly not-taken
        bht.train(pc, true);
        assert!(bht.predict_taken(pc));
        bht.train(pc, true);
        bht.train(pc, true); // saturate at 3
        bht.train(pc, false);
        assert!(bht.predict_taken(pc)); // 2 = weakly taken
        bht.train(pc, false);
        bht.train(pc, false);
        assert!(!bht.predict_taken(pc));
        bht.flush_all();
        assert_eq!(bht.counters()[bht.index(pc)], 1);
    }
}
