//! Set-associative caches and the line-fill buffer (LFB/MSHR).
//!
//! The hierarchy is modeled write-through (stores propagate to every level
//! and memory at commit). This keeps all levels coherent without a
//! writeback protocol while preserving every leakage-relevant behaviour:
//! write-allocate still pulls the *old* line through the LFB (paper case
//! D3), and fills still deposit whole cache lines of another domain's data
//! into the LFB and L1D (cases D1/D2).

use serde::{Deserialize, Serialize};

use crate::trace::{Domain, FillPurpose};

/// One cache line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLine {
    /// Valid bit.
    pub valid: bool,
    /// Full line address (line-aligned physical address; doubles as tag).
    pub line_addr: u64,
    /// Line payload.
    pub data: Vec<u8>,
    /// LRU timestamp (higher = more recent).
    pub last_use: u64,
    /// Domain that caused the fill (diagnostic; the checker works from the
    /// trace, but snapshots are useful in tests).
    pub fill_domain: Domain,
}

/// A physically indexed, physically tagged set-associative cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_size: u64,
    lines: Vec<CacheLine>,
    use_counter: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` and `line_size` are powers of two.
    pub fn new(sets: usize, ways: usize, line_size: u64) -> Cache {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let line = CacheLine {
            valid: false,
            line_addr: 0,
            data: vec![0; line_size as usize],
            last_use: 0,
            fill_domain: Domain::Untrusted,
        };
        Cache {
            sets,
            ways,
            line_size,
            lines: vec![line; sets * ways],
            use_counter: 0,
        }
    }

    /// The line-aligned address containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_size - 1)
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / self.line_size) as usize) & (self.sets - 1)
    }

    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let s = self.set_index(line_addr);
        s * self.ways..(s + 1) * self.ways
    }

    fn find(&self, line_addr: u64) -> Option<usize> {
        self.set_range(line_addr)
            .find(|&i| self.lines[i].valid && self.lines[i].line_addr == line_addr)
    }

    /// `true` if the line containing `addr` is present.
    pub fn contains(&self, addr: u64) -> bool {
        self.find(self.line_addr(addr)).is_some()
    }

    /// Reads `len` bytes at `addr` on a hit, updating LRU state.
    pub fn read(&mut self, addr: u64, len: u64) -> Option<u64> {
        let la = self.line_addr(addr);
        // Accesses are assumed not to straddle lines (the LSU splits them).
        let idx = self.find(la)?;
        self.use_counter += 1;
        self.lines[idx].last_use = self.use_counter;
        let off = (addr - la) as usize;
        let mut v = 0u64;
        for i in (0..len as usize).rev() {
            v = (v << 8) | self.lines[idx].data[off + i] as u64;
        }
        Some(v)
    }

    /// Writes `len` bytes at `addr` on a hit. Returns `false` on a miss.
    pub fn write(&mut self, addr: u64, value: u64, len: u64) -> bool {
        let la = self.line_addr(addr);
        let Some(idx) = self.find(la) else {
            return false;
        };
        self.use_counter += 1;
        self.lines[idx].last_use = self.use_counter;
        let off = (addr - la) as usize;
        for i in 0..len as usize {
            self.lines[idx].data[off + i] = (value >> (8 * i)) as u8;
        }
        true
    }

    /// Returns a copy of the line containing `addr`, if present.
    pub fn peek_line(&self, addr: u64) -> Option<&CacheLine> {
        self.find(self.line_addr(addr)).map(|i| &self.lines[i])
    }

    /// Installs a line, evicting LRU if needed. Returns the evicted line if
    /// one was displaced.
    pub fn fill(&mut self, line_addr: u64, data: Vec<u8>, domain: Domain) -> Option<CacheLine> {
        debug_assert_eq!(
            line_addr & (self.line_size - 1),
            0,
            "fill address must be line aligned"
        );
        debug_assert_eq!(data.len() as u64, self.line_size);
        self.use_counter += 1;
        let counter = self.use_counter;
        // Re-fill in place if already present.
        if let Some(idx) = self.find(line_addr) {
            let l = &mut self.lines[idx];
            l.data = data;
            l.last_use = counter;
            l.fill_domain = domain;
            return None;
        }
        let range = self.set_range(line_addr);
        let victim = range
            .clone()
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].last_use)
                    .expect("ways >= 1")
            });
        let evicted = if self.lines[victim].valid {
            Some(self.lines[victim].clone())
        } else {
            None
        };
        self.lines[victim] = CacheLine {
            valid: true,
            line_addr,
            data,
            last_use: counter,
            fill_domain: domain,
        };
        evicted
    }

    /// Invalidates the line containing `addr`, if present.
    pub fn invalidate(&mut self, addr: u64) {
        if let Some(idx) = self.find(self.line_addr(addr)) {
            self.lines[idx].valid = false;
        }
    }

    /// Invalidates every line.
    pub fn flush_all(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Iterates currently valid lines (for snapshot-based checks).
    pub fn valid_lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.lines.iter().filter(|l| l.valid)
    }
}

/// State of a line-fill-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LfbState {
    /// Request outstanding; no data yet.
    Pending,
    /// Fill completed; data resides in the buffer until the entry is
    /// *reallocated* (residual data — this persistence is case D3's leak).
    Filled,
}

/// One LFB/MSHR entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LfbEntry {
    /// Entry holds a live or residual request.
    pub valid: bool,
    /// Line address of the fill.
    pub line_addr: u64,
    /// Fill payload (valid once `state == Filled`).
    pub data: Vec<u8>,
    /// Request state.
    pub state: LfbState,
    /// What initiated the fill.
    pub purpose: FillPurpose,
    /// Domain active when the data arrived.
    pub fill_domain: Domain,
    /// Cycle the data arrived.
    pub fill_cycle: u64,
}

/// The line-fill buffer (doubles as the MSHR file).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lfb {
    entries: Vec<LfbEntry>,
    line_size: u64,
    alloc_clock: u64,
    alloc_stamp: Vec<u64>,
}

impl Lfb {
    /// Creates an LFB with `n` entries.
    pub fn new(n: usize, line_size: u64) -> Lfb {
        let e = LfbEntry {
            valid: false,
            line_addr: 0,
            data: vec![0; line_size as usize],
            state: LfbState::Filled,
            purpose: FillPurpose::Demand,
            fill_domain: Domain::Untrusted,
            fill_cycle: 0,
        };
        Lfb {
            entries: vec![e; n],
            line_size,
            alloc_clock: 0,
            alloc_stamp: vec![0; n],
        }
    }

    /// Allocates an entry for a new outstanding fill.
    ///
    /// Prefers invalid entries, then the oldest *completed* entry (whose
    /// residual data is thereby finally displaced). Returns `None` when
    /// every entry is still pending (structural stall).
    pub fn allocate(&mut self, line_addr: u64, purpose: FillPurpose) -> Option<usize> {
        let idx = self.entries.iter().position(|e| !e.valid).or_else(|| {
            self.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.state == LfbState::Filled)
                .min_by_key(|&(i, _)| self.alloc_stamp[i])
                .map(|(i, _)| i)
        })?;
        self.alloc_clock += 1;
        self.alloc_stamp[idx] = self.alloc_clock;
        let e = &mut self.entries[idx];
        e.valid = true;
        e.line_addr = line_addr;
        e.state = LfbState::Pending;
        e.purpose = purpose;
        e.data.fill(0);
        Some(idx)
    }

    /// Marks entry `idx` filled with `data`.
    pub fn complete(&mut self, idx: usize, data: Vec<u8>, domain: Domain, cycle: u64) {
        debug_assert_eq!(data.len() as u64, self.line_size);
        let e = &mut self.entries[idx];
        debug_assert!(e.valid && e.state == LfbState::Pending);
        e.data = data;
        e.state = LfbState::Filled;
        e.fill_domain = domain;
        e.fill_cycle = cycle;
    }

    /// Is a fill for this line already outstanding? (Request merging.)
    pub fn pending_for(&self, line_addr: u64) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.valid && e.state == LfbState::Pending && e.line_addr == line_addr)
    }

    /// Invalidates a single entry, dropping its residual data (models a
    /// design that releases MSHR data on refill completion).
    pub fn invalidate_entry(&mut self, idx: usize) {
        self.entries[idx].valid = false;
        self.entries[idx].data.fill(0);
    }

    /// Invalidates every entry (mitigation flush).
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
            e.data.fill(0);
        }
    }

    /// Entry accessor.
    pub fn entry(&self, idx: usize) -> &LfbEntry {
        &self.entries[idx]
    }

    /// All entries (tests and snapshot checks).
    pub fn entries(&self) -> &[LfbEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the LFB has no entries (never the case in a validated
    /// configuration).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Valid entries whose residual data belongs to a trusted domain —
    /// convenience for tests mirroring the checker's P1 scan.
    pub fn residual_trusted_entries(&self) -> impl Iterator<Item = &LfbEntry> {
        self.entries
            .iter()
            .filter(|e| e.valid && e.state == LfbState::Filled && e.fill_domain.is_trusted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(b: u8) -> Vec<u8> {
        vec![b; 64]
    }

    #[test]
    fn fill_then_read() {
        let mut c = Cache::new(4, 2, 64);
        let mut data = line(0);
        data[8..16].copy_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
        c.fill(0x1000, data, Domain::Untrusted);
        assert!(c.contains(0x1008));
        assert_eq!(c.read(0x1008, 8), Some(0xDEAD_BEEF));
        assert_eq!(c.read(0x1040, 8), None); // next line absent
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = Cache::new(1, 2, 64);
        c.fill(0x0000, line(1), Domain::Untrusted);
        c.fill(0x0040, line(2), Domain::Untrusted);
        // Touch the first line so the second becomes LRU.
        assert!(c.read(0x0000, 1).is_some());
        let evicted = c
            .fill(0x0080, line(3), Domain::Untrusted)
            .expect("eviction");
        assert_eq!(evicted.line_addr, 0x0040);
        assert!(c.contains(0x0000) && c.contains(0x0080) && !c.contains(0x0040));
    }

    #[test]
    fn write_hits_update_data() {
        let mut c = Cache::new(4, 2, 64);
        c.fill(0x2000, line(0), Domain::Untrusted);
        assert!(c.write(0x2010, 0x55AA, 2));
        assert_eq!(c.read(0x2010, 2), Some(0x55AA));
        assert!(!c.write(0x3000, 1, 8)); // miss
    }

    #[test]
    fn refill_in_place_keeps_single_copy() {
        let mut c = Cache::new(4, 4, 64);
        c.fill(0x1000, line(1), Domain::Untrusted);
        c.fill(0x1000, line(2), Domain::Enclave(0));
        assert_eq!(c.valid_lines().count(), 1);
        assert_eq!(c.read(0x1000, 1), Some(2));
        assert_eq!(c.peek_line(0x1000).unwrap().fill_domain, Domain::Enclave(0));
    }

    #[test]
    fn flush_and_invalidate() {
        let mut c = Cache::new(4, 2, 64);
        c.fill(0x1000, line(1), Domain::Untrusted);
        c.fill(0x2000, line(2), Domain::Untrusted);
        c.invalidate(0x1000);
        assert!(!c.contains(0x1000) && c.contains(0x2000));
        c.flush_all();
        assert_eq!(c.valid_lines().count(), 0);
    }

    #[test]
    fn lfb_allocation_prefers_invalid_then_oldest_filled() {
        let mut lfb = Lfb::new(2, 64);
        let a = lfb.allocate(0x1000, FillPurpose::Demand).unwrap();
        let b = lfb.allocate(0x2000, FillPurpose::Demand).unwrap();
        assert_ne!(a, b);
        // Both pending: no entry available.
        assert_eq!(lfb.allocate(0x3000, FillPurpose::Demand), None);
        lfb.complete(a, line(0xEE), Domain::Enclave(0), 10);
        // Now the filled entry is displaceable.
        let c = lfb.allocate(0x3000, FillPurpose::Prefetch).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn lfb_residual_data_persists_after_completion() {
        let mut lfb = Lfb::new(4, 64);
        let idx = lfb.allocate(0x5000, FillPurpose::StoreRefill).unwrap();
        lfb.complete(idx, line(0x42), Domain::Enclave(1), 99);
        // Long after the request completed, the secret bytes are still there.
        let e = lfb.entry(idx);
        assert_eq!(e.state, LfbState::Filled);
        assert!(e.data.iter().all(|&b| b == 0x42));
        assert_eq!(lfb.residual_trusted_entries().count(), 1);
    }

    #[test]
    fn lfb_request_merging_lookup() {
        let mut lfb = Lfb::new(4, 64);
        let idx = lfb.allocate(0x7000, FillPurpose::Demand).unwrap();
        assert_eq!(lfb.pending_for(0x7000), Some(idx));
        lfb.complete(idx, line(0), Domain::Untrusted, 1);
        assert_eq!(lfb.pending_for(0x7000), None);
    }

    #[test]
    fn lfb_flush_clears_residue() {
        let mut lfb = Lfb::new(2, 64);
        let idx = lfb.allocate(0x5000, FillPurpose::Demand).unwrap();
        lfb.complete(idx, line(0x42), Domain::Enclave(1), 5);
        lfb.flush_all();
        assert_eq!(lfb.residual_trusted_entries().count(), 0);
        assert!(lfb.entries().iter().all(|e| !e.valid));
    }
}
