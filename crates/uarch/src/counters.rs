//! Per-run microarchitectural counters — the harvestable digest of one
//! simulation.
//!
//! Where [`crate::trace::Trace`] is the full per-cycle event log the checker
//! scans, [`UarchCounters`] is the cheap aggregate the campaign engine
//! attaches to every case: cycles, instructions retired, trace-event counts
//! per storage element, and each element's occupancy when the run ended.
//! [`crate::core::Core::counters`] harvests one from a finished core.

use serde::{Deserialize, Serialize};

use crate::trace::Structure;

/// Counters for one storage element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructureCounters {
    /// The structure these counters describe.
    pub structure: Structure,
    /// Line/entry fills recorded in the trace.
    pub fills: u64,
    /// Scalar writes (installs, writebacks) recorded in the trace.
    pub writes: u64,
    /// Reads recorded in the trace.
    pub reads: u64,
    /// Flush/invalidate events recorded in the trace.
    pub flushes: u64,
    /// Valid entries when the run ended (residue surface).
    pub occupancy_at_exit: u64,
    /// Total entries the structure holds in this configuration.
    pub capacity: u64,
}

/// The full microarchitectural counter set of one finished run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UarchCounters {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions_retired: u64,
    /// Total trace events of every kind.
    pub trace_events: u64,
    /// HPM counter-bump events.
    pub counter_bumps: u64,
    /// Security-domain switches observed.
    pub domain_switches: u64,
    /// Per-structure counters, in [`Structure::all`] order.
    pub structures: Vec<StructureCounters>,
}

impl UarchCounters {
    /// The counters for `s`, if the harvested core modeled it.
    pub fn structure(&self, s: Structure) -> Option<&StructureCounters> {
        self.structures.iter().find(|c| c.structure == s)
    }

    /// Sum of trace events across all structures and kinds.
    pub fn events_total(&self) -> u64 {
        self.trace_events
    }

    /// Folds another run's counters into this one (campaign aggregation).
    /// Occupancy and capacity take the per-field maximum — occupancy is a
    /// point-in-time residue measure, not a flow.
    pub fn absorb(&mut self, other: &UarchCounters) {
        self.cycles += other.cycles;
        self.instructions_retired += other.instructions_retired;
        self.trace_events += other.trace_events;
        self.counter_bumps += other.counter_bumps;
        self.domain_switches += other.domain_switches;
        for theirs in &other.structures {
            match self
                .structures
                .iter_mut()
                .find(|c| c.structure == theirs.structure)
            {
                Some(ours) => {
                    ours.fills += theirs.fills;
                    ours.writes += theirs.writes;
                    ours.reads += theirs.reads;
                    ours.flushes += theirs.flushes;
                    ours.occupancy_at_exit = ours.occupancy_at_exit.max(theirs.occupancy_at_exit);
                    ours.capacity = ours.capacity.max(theirs.capacity);
                }
                None => self.structures.push(theirs.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(structure: Structure, fills: u64, occupancy: u64) -> StructureCounters {
        StructureCounters {
            structure,
            fills,
            writes: 0,
            reads: 0,
            flushes: 0,
            occupancy_at_exit: occupancy,
            capacity: 8,
        }
    }

    #[test]
    fn absorb_sums_flows_and_maxes_occupancy() {
        let mut a = UarchCounters {
            cycles: 100,
            instructions_retired: 40,
            trace_events: 10,
            counter_bumps: 2,
            domain_switches: 1,
            structures: vec![counters(Structure::L1d, 3, 5)],
        };
        let b = UarchCounters {
            cycles: 50,
            instructions_retired: 20,
            trace_events: 6,
            counter_bumps: 1,
            domain_switches: 2,
            structures: vec![
                counters(Structure::L1d, 2, 2),
                counters(Structure::Lfb, 1, 1),
            ],
        };
        a.absorb(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.instructions_retired, 60);
        assert_eq!(a.trace_events, 16);
        assert_eq!(a.domain_switches, 3);
        let l1d = a.structure(Structure::L1d).unwrap();
        assert_eq!(l1d.fills, 5);
        assert_eq!(l1d.occupancy_at_exit, 5, "occupancy maxes, not sums");
        assert!(
            a.structure(Structure::Lfb).is_some(),
            "absorbed new structure"
        );
        assert!(a.structure(Structure::Ubtb).is_none());
    }

    #[test]
    fn counters_roundtrip_through_json() {
        let c = UarchCounters {
            cycles: 1,
            instructions_retired: 2,
            trace_events: 3,
            counter_bumps: 4,
            domain_switches: 5,
            structures: vec![counters(Structure::Hpc, 0, 7)],
        };
        let json = serde_json::to_string(&c).expect("serialize");
        let back: UarchCounters = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, c);
    }
}
