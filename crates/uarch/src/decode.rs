//! Page-keyed pre-decoded instruction cache for the fetch fast path.
//!
//! Decoding an instruction word is a pure function, so its result can be
//! memoized per fetch address. The cache is keyed by *physical page* and
//! validated against the page's write-version ([`Memory::page_version`]):
//! any store into a page — self-modifying code, a pagetable rewrite that
//! happens to share a frame, a DMA-style `write_bytes` — bumps the
//! version and invalidates every slot cached for that page on the next
//! fetch. `Clone` deliberately yields an *empty* cache so that
//! `Platform::clone()` CoW forks and snapshot restores never observe
//! state derived from the other fork's memory.
//!
//! Defense in depth: each slot stores the instruction *word* alongside
//! the decoded result, and a hit requires the fetched word to match. Even
//! if an invalidation edge were ever missed, a stale slot can therefore
//! never alter what the pipeline executes — the fast path degrades to a
//! re-decode, never to a wrong decode. This is what makes the fast path
//! byte-identity-safe by construction.
//!
//! [`Memory::page_version`]: crate::mem::Memory::page_version

use teesec_isa::inst::Inst;
use teesec_isa::vm::PAGE_SIZE;

/// Instruction slots per page (4-byte fetch granule).
const SLOTS: usize = (PAGE_SIZE / 4) as usize;

/// Maximum resident pages. Gadget programs span a handful of code pages;
/// a small move-to-front list beats a hash map at this size.
const MAX_PAGES: usize = 16;

/// One cached fetch slot: the raw instruction word plus its decode
/// (`None` decoded = illegal word).
type DecodedSlot = (u32, Option<Inst>);

/// Hit/miss/invalidation counters, exported to engine metrics as the
/// `teesec_decode_cache_*` Prometheus families.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Fetches served from a valid slot (word matched).
    pub hits: u64,
    /// Fetches that had to decode (cold slot or word mismatch).
    pub misses: u64,
    /// Page entries dropped because the page's write-version moved.
    pub invalidations: u64,
}

#[derive(Debug)]
struct DecodedPage {
    /// Physical page index (`pa / PAGE_SIZE`).
    page: u64,
    /// `Memory::page_version` observed when the entry was (re)filled.
    version: u64,
    /// One [`DecodedSlot`] per 4-byte slot, `None` while cold.
    slots: Box<[Option<DecodedSlot>]>,
}

impl DecodedPage {
    fn new(page: u64, version: u64) -> DecodedPage {
        DecodedPage {
            page,
            version,
            slots: vec![None; SLOTS].into_boxed_slice(),
        }
    }
}

/// The pre-decoded instruction cache. One per [`Core`](crate::core::Core);
/// consulted by the fetch stage only when the fast path is enabled.
#[derive(Debug, Default)]
pub struct DecodeCache {
    /// Move-to-front: the front entry is the page fetch is streaming
    /// through, so the common probe is a single comparison.
    pages: Vec<DecodedPage>,
    /// Lifetime counters (survive page eviction; reset on clone).
    pub stats: DecodeCacheStats,
}

impl Clone for DecodeCache {
    /// Forks start cold: a CoW memory clone shares page *contents* but
    /// the halves' write-versions advance independently afterwards, so
    /// carrying decoded state across the fork is never worth the risk.
    fn clone(&self) -> DecodeCache {
        DecodeCache::default()
    }
}

impl DecodeCache {
    /// Creates an empty cache.
    pub fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// Decodes `word` fetched from physical address `pa`, memoized per
    /// page slot. `version` is the current `Memory::page_version` of the
    /// page containing `pa`; a version change invalidates the whole page
    /// entry before the probe.
    pub fn decode(&mut self, pa: u64, version: u64, word: u32) -> Option<Inst> {
        let page = pa / PAGE_SIZE;
        let slot = ((pa % PAGE_SIZE) / 4) as usize;
        let idx = match self.pages.iter().position(|p| p.page == page) {
            Some(i) => {
                if self.pages[i].version != version {
                    // Memory moved underneath us: drop every cached slot
                    // for the page and refill at the new version.
                    self.stats.invalidations += 1;
                    self.pages[i] = DecodedPage::new(page, version);
                }
                i
            }
            None => {
                if self.pages.len() >= MAX_PAGES {
                    self.pages.pop();
                }
                self.pages.insert(0, DecodedPage::new(page, version));
                0
            }
        };
        if idx != 0 {
            self.pages.swap(0, idx);
        }
        let entry = &mut self.pages[0];
        if let Some((w, decoded)) = entry.slots[slot] {
            if w == word {
                self.stats.hits += 1;
                return decoded;
            }
        }
        self.stats.misses += 1;
        let decoded = Inst::decode(word).ok();
        entry.slots[slot] = Some((word, decoded));
        decoded
    }

    /// Drops every cached page (fence.i, sfence-style full flushes).
    pub fn flush(&mut self) {
        if !self.pages.is_empty() {
            self.stats.invalidations += self.pages.len() as u64;
            self.pages.clear();
        }
    }

    /// Resident page count (diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_fetch_of_same_slot_hits() {
        let mut c = DecodeCache::new();
        let nop = 0x0000_0013; // addi x0, x0, 0
        let a = c.decode(0x8000_0000, 1, nop);
        let b = c.decode(0x8000_0000, 1, nop);
        assert_eq!(a, b);
        assert!(a.is_some());
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn version_change_invalidates_whole_page() {
        let mut c = DecodeCache::new();
        let nop = 0x0000_0013;
        c.decode(0x8000_0000, 1, nop);
        c.decode(0x8000_0004, 1, nop);
        // Same page, new version: both slots must be gone.
        c.decode(0x8000_0000, 2, nop);
        assert_eq!(c.stats.invalidations, 1);
        c.decode(0x8000_0004, 2, nop);
        assert_eq!(c.stats.misses, 4, "no slot survived the version bump");
    }

    #[test]
    fn word_mismatch_never_serves_stale_decode() {
        let mut c = DecodeCache::new();
        let nop = 0x0000_0013;
        let lui = 0x0000_00B7; // lui x1, 0
        c.decode(0x8000_0000, 1, nop);
        // Same slot and (wrongly unchanged) version but different word:
        // the word check must force a re-decode.
        let got = c.decode(0x8000_0000, 1, lui);
        assert_eq!(got, Inst::decode(lui).ok());
        assert_eq!(c.stats.hits, 0);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn illegal_words_are_memoized_too() {
        let mut c = DecodeCache::new();
        let bad = 0xFFFF_FFFF;
        assert_eq!(c.decode(0x8000_0000, 1, bad), None);
        assert_eq!(c.decode(0x8000_0000, 1, bad), None);
        assert_eq!(c.stats.hits, 1);
    }

    #[test]
    fn clone_is_cold() {
        let mut c = DecodeCache::new();
        c.decode(0x8000_0000, 1, 0x0000_0013);
        let d = c.clone();
        assert_eq!(d.resident_pages(), 0);
        assert_eq!(d.stats, DecodeCacheStats::default());
    }

    #[test]
    fn capacity_is_bounded() {
        let mut c = DecodeCache::new();
        for p in 0..(MAX_PAGES as u64 + 8) {
            c.decode(0x8000_0000 + p * PAGE_SIZE, 1, 0x0000_0013);
        }
        assert!(c.resident_pages() <= MAX_PAGES);
    }
}
