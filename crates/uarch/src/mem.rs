//! Sparse physical memory backing the simulated SoC.
//!
//! Pages are reference-counted and copy-on-write: cloning a `Memory` (as
//! platform snapshotting does) shares every backed page, and a page is only
//! physically duplicated when one of the clones writes to it. Forking a
//! platform from a snapshot is therefore O(backed pages) pointer copies, not
//! a full memory copy.

use std::collections::HashMap;
use std::sync::Arc;

use teesec_isa::vm::PAGE_SIZE;

const PAGE: usize = PAGE_SIZE as usize;

/// A backed page plus its write-version, used by consumers that cache
/// derived per-page state (the fetch-stage decode cache) to detect
/// staleness without comparing bytes.
#[derive(Debug, Clone)]
struct PageSlot {
    data: Arc<[u8; PAGE]>,
    /// Bumped exactly once per mutable access to the page. Unbacked pages
    /// are version 0, so the first write yields version 1.
    version: u64,
}

/// Byte-addressable sparse physical memory. Unbacked locations read as zero.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, PageSlot>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8] {
        let key = addr / PAGE_SIZE;
        let slot = self.pages.entry(key).or_insert_with(|| PageSlot {
            data: Arc::new([0u8; PAGE]),
            version: 0,
        });
        // Every mutable access conservatively counts as a write: derived
        // caches keyed on the version re-validate, which is always sound.
        slot.version += 1;
        // Copy-on-write: duplicate the page only if a snapshot still
        // shares it.
        &mut Arc::make_mut(&mut slot.data)[..]
    }

    /// The write-version of the page containing `addr` (0 when unbacked).
    ///
    /// The version is bumped exactly once per mutating call per touched
    /// page — in particular [`Memory::write_bytes`] spanning a page
    /// boundary bumps each touched page once, not once per byte — and
    /// versions advance independently in each half of a CoW clone pair.
    pub fn page_version(&self, addr: u64) -> u64 {
        self.pages.get(&(addr / PAGE_SIZE)).map_or(0, |s| s.version)
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(p) => p.data[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(addr)[off] = v;
    }

    /// Reads `buf.len()` bytes starting at `addr`, one page lookup per
    /// touched page instead of one per byte.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let off = (a % PAGE_SIZE) as usize;
            let run = buf.len().min(done + PAGE - off);
            match self.pages.get(&(a / PAGE_SIZE)) {
                Some(p) => buf[done..run].copy_from_slice(&p.data[off..off + (run - done)]),
                None => buf[done..run].fill(0),
            }
            done = run;
        }
    }

    /// Writes `data` starting at `addr`, one page lookup per touched page.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let mut done = 0usize;
        while done < data.len() {
            let a = addr + done as u64;
            let off = (a % PAGE_SIZE) as usize;
            let run = data.len().min(done + PAGE - off);
            self.page_mut(a)[off..off + (run - done)].copy_from_slice(&data[done..run]);
            done = run;
        }
    }

    /// Reads a little-endian value of `len` bytes (`len <= 8`).
    pub fn read_uint(&self, addr: u64, len: u64) -> u64 {
        debug_assert!(len <= 8);
        let off = (addr % PAGE_SIZE) as usize;
        // Fast path: the access stays within one page (the overwhelmingly
        // common case), so a single lookup serves every byte.
        if off + len as usize <= PAGE {
            let mut v = 0u64;
            if let Some(p) = self.pages.get(&(addr / PAGE_SIZE)) {
                for i in (0..len as usize).rev() {
                    v = (v << 8) | p.data[off + i] as u64;
                }
            }
            return v;
        }
        let mut v = 0u64;
        for i in (0..len).rev() {
            v = (v << 8) | self.read_u8(addr + i) as u64;
        }
        v
    }

    /// Writes a little-endian value of `len` bytes (`len <= 8`).
    pub fn write_uint(&mut self, addr: u64, v: u64, len: u64) {
        debug_assert!(len <= 8);
        let off = (addr % PAGE_SIZE) as usize;
        if off + len as usize <= PAGE {
            let page = self.page_mut(addr);
            for i in 0..len as usize {
                page[off + i] = (v >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..len {
            self.write_u8(addr + i, (v >> (8 * i)) as u8);
        }
    }

    /// Reads a 32-bit little-endian word (instruction fetch granule).
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Writes a 32-bit little-endian word.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_uint(addr, v as u64, 4)
    }

    /// Reads a 64-bit little-endian doubleword.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Writes a 64-bit little-endian doubleword.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_uint(addr, v, 8)
    }

    /// Loads a program image (32-bit words) at `base`.
    pub fn load_words(&mut self, base: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(base + 4 * i as u64, *w);
        }
    }

    /// Number of distinct backed pages (for tests/diagnostics).
    pub fn backed_pages(&self) -> usize {
        self.pages.len()
    }

    /// Base addresses of all backed pages, sorted ascending. Unbacked pages
    /// read as zero, so two memories are equal iff every page backed in
    /// *either* compares equal — the contract differential memory
    /// comparison relies on.
    pub fn page_base_addrs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.pages.keys().map(|k| k * PAGE_SIZE).collect();
        v.sort_unstable();
        v
    }

    /// The first byte address at which `self` and `other` differ, scanning
    /// the union of both memories' backed pages.
    pub fn first_difference(&self, other: &Memory) -> Option<u64> {
        let mut pages: Vec<u64> = self
            .page_base_addrs()
            .into_iter()
            .chain(other.page_base_addrs())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        for base in pages {
            for off in 0..PAGE_SIZE {
                let a = base + off;
                if self.read_u8(a) != other.read_u8(a) {
                    return Some(a);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbacked_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0xdead_0000), 0);
        assert_eq!(m.read_u8(12345), 0);
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x1000), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u32(0x1000), 0x5566_7788);
        assert_eq!(m.read_uint(0x1004, 2), 0x3344);
        assert_eq!(m.read_u8(0x1007), 0x11);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.write_u64(0x1FFC, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read_u64(0x1FFC), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.backed_pages(), 2);
    }

    #[test]
    fn load_words_places_instructions() {
        let mut m = Memory::new();
        m.load_words(0x8000_0000, &[0x1111_1111, 0x2222_2222]);
        assert_eq!(m.read_u32(0x8000_0000), 0x1111_1111);
        assert_eq!(m.read_u32(0x8000_0004), 0x2222_2222);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut a = Memory::new();
        a.write_u64(0x1000, 0xAAAA);
        a.write_u64(0x3000, 0xBBBB);
        let mut b = a.clone();
        // Clone shares every backed page until one side writes.
        assert!(Arc::ptr_eq(&a.pages[&1].data, &b.pages[&1].data));
        b.write_u64(0x1000, 0xCCCC);
        assert!(
            !Arc::ptr_eq(&a.pages[&1].data, &b.pages[&1].data),
            "written page split"
        );
        assert!(
            Arc::ptr_eq(&a.pages[&3].data, &b.pages[&3].data),
            "untouched page shared"
        );
        assert_eq!(a.read_u64(0x1000), 0xAAAA, "original unaffected");
        assert_eq!(b.read_u64(0x1000), 0xCCCC);
        assert_eq!(b.read_u64(0x3000), 0xBBBB);
    }

    #[test]
    fn page_version_starts_at_zero_and_tracks_writes() {
        let mut m = Memory::new();
        assert_eq!(m.page_version(0x1000), 0, "unbacked page is version 0");
        m.write_u8(0x1000, 1);
        assert_eq!(m.page_version(0x1000), 1);
        m.write_u64(0x1800, 7);
        assert_eq!(m.page_version(0x1000), 2, "same page, any width");
        assert_eq!(m.page_version(0x2000), 0, "neighbour untouched");
    }

    #[test]
    fn write_bytes_bumps_each_touched_page_exactly_once() {
        let mut m = Memory::new();
        // Pre-back three pages so the baseline versions are all 1.
        for p in 0..3u64 {
            m.write_u8(0x1000 + p * PAGE_SIZE, 0);
        }
        let v0: Vec<u64> = (0..3)
            .map(|p| m.page_version(0x1000 + p * PAGE_SIZE))
            .collect();
        // One write spanning all three pages: page-chunked path must bump
        // each touched page's version exactly once, not once per byte.
        let data = vec![0xAB; (2 * PAGE_SIZE + 64) as usize];
        m.write_bytes(0x1FF0, &data);
        for p in 0..3u64 {
            assert_eq!(
                m.page_version(0x1000 + p * PAGE_SIZE),
                v0[p as usize] + 1,
                "page {p} must be bumped exactly once by one spanning write"
            );
        }
    }

    #[test]
    fn clone_halves_version_independently() {
        let mut a = Memory::new();
        a.write_u8(0x1000, 1);
        let mut b = a.clone();
        assert_eq!(b.page_version(0x1000), a.page_version(0x1000));
        b.write_u8(0x1000, 2);
        assert_eq!(b.page_version(0x1000), 2);
        assert_eq!(a.page_version(0x1000), 1, "CoW split leaves origin alone");
        a.write_u8(0x1000, 3);
        assert_eq!(a.page_version(0x1000), 2, "each half advances on its own");
    }

    #[test]
    fn byte_order_is_little_endian() {
        let mut m = Memory::new();
        m.write_u32(0x2000, 0x0102_0304);
        assert_eq!(m.read_u8(0x2000), 0x04);
        assert_eq!(m.read_u8(0x2003), 0x01);
    }
}
