//! Sparse physical memory backing the simulated SoC.

use std::collections::HashMap;

use teesec_isa::vm::PAGE_SIZE;

/// Byte-addressable sparse physical memory. Unbacked locations read as zero.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8] {
        let key = addr / PAGE_SIZE;
        self.pages
            .entry(key)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(addr)[off] = v;
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    /// Writes `data` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian value of `len` bytes (`len <= 8`).
    pub fn read_uint(&self, addr: u64, len: u64) -> u64 {
        debug_assert!(len <= 8);
        let mut v = 0u64;
        for i in (0..len).rev() {
            v = (v << 8) | self.read_u8(addr + i) as u64;
        }
        v
    }

    /// Writes a little-endian value of `len` bytes (`len <= 8`).
    pub fn write_uint(&mut self, addr: u64, v: u64, len: u64) {
        debug_assert!(len <= 8);
        for i in 0..len {
            self.write_u8(addr + i, (v >> (8 * i)) as u8);
        }
    }

    /// Reads a 32-bit little-endian word (instruction fetch granule).
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Writes a 32-bit little-endian word.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_uint(addr, v as u64, 4)
    }

    /// Reads a 64-bit little-endian doubleword.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Writes a 64-bit little-endian doubleword.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_uint(addr, v, 8)
    }

    /// Loads a program image (32-bit words) at `base`.
    pub fn load_words(&mut self, base: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(base + 4 * i as u64, *w);
        }
    }

    /// Number of distinct backed pages (for tests/diagnostics).
    pub fn backed_pages(&self) -> usize {
        self.pages.len()
    }

    /// Base addresses of all backed pages, sorted ascending. Unbacked pages
    /// read as zero, so two memories are equal iff every page backed in
    /// *either* compares equal — the contract differential memory
    /// comparison relies on.
    pub fn page_base_addrs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.pages.keys().map(|k| k * PAGE_SIZE).collect();
        v.sort_unstable();
        v
    }

    /// The first byte address at which `self` and `other` differ, scanning
    /// the union of both memories' backed pages.
    pub fn first_difference(&self, other: &Memory) -> Option<u64> {
        let mut pages: Vec<u64> = self
            .page_base_addrs()
            .into_iter()
            .chain(other.page_base_addrs())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        for base in pages {
            for off in 0..PAGE_SIZE {
                let a = base + off;
                if self.read_u8(a) != other.read_u8(a) {
                    return Some(a);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbacked_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0xdead_0000), 0);
        assert_eq!(m.read_u8(12345), 0);
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x1000), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u32(0x1000), 0x5566_7788);
        assert_eq!(m.read_uint(0x1004, 2), 0x3344);
        assert_eq!(m.read_u8(0x1007), 0x11);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.write_u64(0x1FFC, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read_u64(0x1FFC), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.backed_pages(), 2);
    }

    #[test]
    fn load_words_places_instructions() {
        let mut m = Memory::new();
        m.load_words(0x8000_0000, &[0x1111_1111, 0x2222_2222]);
        assert_eq!(m.read_u32(0x8000_0000), 0x1111_1111);
        assert_eq!(m.read_u32(0x8000_0004), 0x2222_2222);
    }

    #[test]
    fn byte_order_is_little_endian() {
        let mut m = Memory::new();
        m.write_u32(0x2000, 0x0102_0304);
        assert_eq!(m.read_u8(0x2000), 0x04);
        assert_eq!(m.read_u8(0x2003), 0x01);
    }
}
