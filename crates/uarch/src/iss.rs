//! A reference instruction-set simulator: a simple in-order, functionally
//! precise RV64 interpreter over the same [`Memory`] and architectural
//! state definitions as the out-of-order core.
//!
//! Its purpose is *differential testing*: on any program, the pipelined
//! core's architectural results (registers, memory, trap history) must
//! match the ISS exactly — speculation, lazy exceptions and all the
//! machinery TEESec probes must be architecturally invisible. The
//! differential suite in `tests/` drives both on random programs.

use teesec_isa::csr::{self, Mstatus};
use teesec_isa::inst::{CsrOp, CsrSrc, Inst};
use teesec_isa::pmp::AccessKind;
use teesec_isa::priv_level::PrivLevel;
use teesec_isa::reg::Reg;
use teesec_isa::vm::{pte_addr, PhysAddr, Pte, VirtAddr, SV39_LEVELS};

use crate::core::MDOMAIN;
use crate::csr_file::{CsrError, CsrFile};
use crate::mem::Memory;
use crate::trace::Domain;
use crate::trap::Exception;

/// Why [`Iss::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssExit {
    /// An `ebreak` retired.
    Halted,
    /// The instruction budget was exhausted.
    StepLimit,
}

/// What one [`Iss::step`] did — the per-instruction record a lockstep
/// differential oracle aligns against the core's retire stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssStep {
    /// PC of the instruction the step operated on.
    pub pc: u64,
    /// `Some(inst)` when the instruction retired (architectural commit);
    /// `None` when the step entered a trap instead (trap entry retires
    /// nothing, matching the core's commit-stage convention).
    pub retired: Option<Inst>,
}

/// The reference interpreter.
#[derive(Debug)]
pub struct Iss {
    /// Physical memory.
    pub mem: Memory,
    /// Architectural CSR state (shared layout with the core).
    pub csr: CsrFile,
    /// Program counter.
    pub pc: u64,
    /// Privilege level.
    pub priv_level: PrivLevel,
    /// Set once an `ebreak` retires.
    pub halted: bool,
    regs: [u64; 32],
    retired: u64,
    /// Current security domain, mirroring the core's MDOMAIN register so
    /// platform firmware (which reads/writes MDOMAIN) stays architecturally
    /// comparable under co-simulation.
    domain: Domain,
    /// Domain of the interrupted world while a trap is serviced; restored
    /// at `mret` unless MDOMAIN was written meanwhile (core semantics).
    domain_before_trap: Option<Domain>,
}

impl Iss {
    /// Creates an ISS in machine mode at `reset_pc`.
    pub fn new(mem: Memory, reset_pc: u64) -> Iss {
        Iss {
            mem,
            csr: CsrFile::new(8),
            pc: reset_pc,
            priv_level: PrivLevel::Machine,
            halted: false,
            regs: [0; 32],
            retired: 0,
            domain: Domain::SecurityMonitor,
            domain_before_trap: None,
        }
    }

    /// Resizes the HPM counter file (reset state only). Co-simulation must
    /// match the core's configuration here, or CSR-existence checks on
    /// `mhpmcounterN` diverge architecturally.
    pub fn with_hpm_counters(mut self, hpm_counters: usize) -> Iss {
        self.csr = CsrFile::new(hpm_counters);
        self
    }

    /// The current security domain (MDOMAIN mirror).
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Architectural register read.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index() as usize]
    }

    /// Architectural register write (x0 ignored).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = v;
        }
    }

    /// Instructions retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Runs until `ebreak` or until `max_steps` instructions have *retired*.
    ///
    /// The budget counts retired instructions — the same convention the
    /// core's commit stage uses — so a trap taken exactly at the budget
    /// boundary still reaches its handler instead of being cut off one
    /// instruction early (trap entry retires nothing). A raw-step fuse of
    /// `4 * max_steps + 64` bounds pathological trap storms (e.g. a fault
    /// whose handler faults) that would otherwise never consume budget.
    pub fn run(&mut self, max_steps: u64) -> IssExit {
        let target = self.retired.saturating_add(max_steps);
        let fuse = max_steps.saturating_mul(4).saturating_add(64);
        let mut raw = 0u64;
        while !self.halted && self.retired < target && raw < fuse {
            self.step();
            raw += 1;
        }
        if self.halted {
            IssExit::Halted
        } else {
            IssExit::StepLimit
        }
    }

    /// Executes one instruction (including trap entry on faults), reporting
    /// what happened so a lockstep driver can align retires.
    pub fn step(&mut self) -> IssStep {
        let pc = self.pc;
        if self.halted {
            return IssStep { pc, retired: None };
        }
        let word = match self.fetch(pc) {
            Ok(w) => w,
            Err(e) => {
                self.trap(e, pc);
                return IssStep { pc, retired: None };
            }
        };
        let inst = match Inst::decode(word) {
            Ok(i) => i,
            Err(_) => {
                self.trap(Exception::IllegalInstruction(word), pc);
                return IssStep { pc, retired: None };
            }
        };
        match self.execute(inst, pc) {
            Ok(next) => {
                self.pc = next;
                self.retired += 1;
                IssStep {
                    pc,
                    retired: Some(inst),
                }
            }
            Err(e) => {
                self.trap(e, pc);
                IssStep { pc, retired: None }
            }
        }
    }

    /// Steps until exactly one instruction retires, stepping through up to
    /// `trap_fuse` intervening trap entries. Returns `None` if the machine
    /// is halted or the fuse blows (a trap storm) — the lockstep driver
    /// reports either as a divergence.
    pub fn step_retire(&mut self, trap_fuse: u64) -> Option<IssStep> {
        for _ in 0..=trap_fuse {
            if self.halted {
                return None;
            }
            let s = self.step();
            if s.retired.is_some() {
                return Some(s);
            }
        }
        None
    }

    fn fetch(&mut self, pc: u64) -> Result<u32, Exception> {
        let pa = self
            .translate(pc, AccessKind::Execute)
            .map_err(|_| Exception::InstPageFault(pc))?;
        if !self
            .csr
            .pmp
            .allows(pa, 4, AccessKind::Execute, self.priv_level)
        {
            return Err(Exception::InstAccessFault(pc));
        }
        Ok(self.mem.read_u32(pa))
    }

    /// sv39 translation via a software walk (no caches — the ISS is purely
    /// architectural).
    fn translate(&self, va: u64, kind: AccessKind) -> Result<u64, ()> {
        if self.priv_level == PrivLevel::Machine || !self.csr.satp.is_sv39() {
            return Ok(va);
        }
        let v = VirtAddr(va);
        if !v.is_canonical() {
            return Err(());
        }
        let mut table = self.csr.satp.root_pa();
        for level in (0..SV39_LEVELS).rev() {
            let pte = Pte(self.mem.read_u64(pte_addr(PhysAddr(table), v, level).0));
            if !pte.valid() {
                return Err(());
            }
            if pte.is_leaf() {
                if level != 0 {
                    return Err(());
                }
                let sum = self.csr.mstatus.0 & Mstatus::SUM_BIT != 0;
                if !pte.permits(kind, self.priv_level, sum) {
                    return Err(());
                }
                return Ok(pte.pa().0 | v.page_offset());
            }
            table = pte.pa().0;
        }
        Err(())
    }

    fn load(&mut self, vaddr: u64, width: u64, kind_src: u64) -> Result<u64, Exception> {
        let pa = self
            .translate(vaddr, AccessKind::Read)
            .map_err(|_| Exception::LoadPageFault(vaddr))?;
        if pa % width != 0 {
            return Err(Exception::LoadMisaligned(vaddr));
        }
        if !self
            .csr
            .pmp
            .allows(pa, width, AccessKind::Read, self.priv_level)
        {
            return Err(Exception::LoadAccessFault(vaddr));
        }
        let _ = kind_src;
        Ok(self.mem.read_uint(pa, width))
    }

    fn store(&mut self, vaddr: u64, value: u64, width: u64) -> Result<(), Exception> {
        let pa = self
            .translate(vaddr, AccessKind::Write)
            .map_err(|_| Exception::StorePageFault(vaddr))?;
        if pa % width != 0 {
            return Err(Exception::StoreMisaligned(vaddr));
        }
        if !self
            .csr
            .pmp
            .allows(pa, width, AccessKind::Write, self.priv_level)
        {
            return Err(Exception::StoreAccessFault(vaddr));
        }
        self.mem.write_uint(pa, value, width);
        Ok(())
    }

    fn execute(&mut self, inst: Inst, pc: u64) -> Result<u64, Exception> {
        let next = pc + 4;
        match inst {
            Inst::Lui { rd, imm20 } => {
                self.set_reg(rd, ((imm20 as i64) << 12) as u64);
                Ok(next)
            }
            Inst::Auipc { rd, imm20 } => {
                self.set_reg(rd, pc.wrapping_add(((imm20 as i64) << 12) as u64));
                Ok(next)
            }
            Inst::Jal { rd, offset } => {
                self.set_reg(rd, next);
                Ok(pc.wrapping_add(offset as i64 as u64))
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as i64 as u64) & !1;
                self.set_reg(rd, next);
                Ok(target)
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                if cond.taken(self.reg(rs1), self.reg(rs2)) {
                    Ok(pc.wrapping_add(offset as i64 as u64))
                } else {
                    Ok(next)
                }
            }
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let vaddr = self.reg(rs1).wrapping_add(offset as i64 as u64);
                let bytes = width.bytes();
                let mut v = self.load(vaddr, bytes, 0)?;
                if signed && bytes < 8 {
                    let shift = 64 - bytes * 8;
                    v = ((v << shift) as i64 >> shift) as u64;
                }
                self.set_reg(rd, v);
                Ok(next)
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let vaddr = self.reg(rs1).wrapping_add(offset as i64 as u64);
                self.store(vaddr, self.reg(rs2), width.bytes())?;
                Ok(next)
            }
            Inst::AluImm {
                op,
                rd,
                rs1,
                imm,
                word,
            } => {
                self.set_reg(rd, op.eval(self.reg(rs1), imm as i64 as u64, word));
                Ok(next)
            }
            Inst::AluReg {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => {
                self.set_reg(rd, op.eval(self.reg(rs1), self.reg(rs2), word));
                Ok(next)
            }
            Inst::Csr {
                op,
                rd,
                src,
                csr: addr,
            } => {
                self.execute_csr(op, rd, src, addr)?;
                Ok(next)
            }
            Inst::Ecall => Err(Exception::Ecall(self.priv_level)),
            Inst::Ebreak => {
                self.halted = true;
                Ok(next)
            }
            Inst::Mret => {
                if self.priv_level != PrivLevel::Machine {
                    return Err(Exception::IllegalInstruction(Inst::Mret.encode()));
                }
                let mpp = self.csr.mstatus.mpp();
                let mpie = self.csr.mstatus.0 & Mstatus::MPIE_BIT != 0;
                self.csr.mstatus.set_mie(mpie);
                self.csr.mstatus.0 |= Mstatus::MPIE_BIT;
                self.csr.mstatus.set_mpp(PrivLevel::User);
                self.priv_level = mpp;
                if let Some(d) = self.domain_before_trap.take() {
                    self.domain = d;
                }
                Ok(self.csr.mepc)
            }
            Inst::Sret => {
                if self.priv_level == PrivLevel::User {
                    return Err(Exception::IllegalInstruction(Inst::Sret.encode()));
                }
                let spp = self.csr.mstatus.spp();
                let spie = self.csr.mstatus.0 & Mstatus::SPIE_BIT != 0;
                self.csr.mstatus.set_sie(spie);
                self.csr.mstatus.0 |= Mstatus::SPIE_BIT;
                self.csr.mstatus.set_spp(PrivLevel::User);
                self.priv_level = spp;
                Ok(self.csr.sepc)
            }
            Inst::Wfi | Inst::Fence | Inst::FenceI | Inst::SfenceVma => Ok(next),
        }
    }

    fn execute_csr(
        &mut self,
        op: CsrOp,
        rd: Reg,
        src: CsrSrc,
        addr: csr::CsrAddr,
    ) -> Result<(), Exception> {
        let src_val = match src {
            CsrSrc::Reg(r) => self.reg(r),
            CsrSrc::Imm(i) => i as u64,
        };
        let wants_write = match (op, src) {
            (CsrOp::Rw, _) => true,
            (_, CsrSrc::Reg(r)) => !r.is_zero(),
            (_, CsrSrc::Imm(i)) => i != 0,
        };
        // The platform domain register is intercepted before the CSR file,
        // exactly as in the core. A read during trap handling reports the
        // interrupted world (the SBI caller), not the monitor itself.
        if addr == MDOMAIN {
            if self.priv_level != PrivLevel::Machine {
                return Err(Exception::IllegalInstruction(0));
            }
            let old = self.domain_before_trap.unwrap_or(self.domain).encode();
            if wants_write {
                let new = match op {
                    CsrOp::Rw => src_val,
                    CsrOp::Rs => old | src_val,
                    CsrOp::Rc => old & !src_val,
                };
                self.domain_before_trap = None;
                self.domain = Domain::decode(new);
            }
            self.set_reg(rd, old);
            return Ok(());
        }
        let old = match self.csr.read(addr, self.priv_level) {
            Ok(v) => v,
            Err(_) => return Err(Exception::IllegalInstruction(0)),
        };
        if wants_write {
            let new = match op {
                CsrOp::Rw => src_val,
                CsrOp::Rs => old | src_val,
                CsrOp::Rc => old & !src_val,
            };
            match self.csr.write(addr, new, self.priv_level) {
                Ok(_) => {}
                Err(CsrError::ReadOnly)
                | Err(CsrError::NotPrivileged)
                | Err(CsrError::Nonexistent) => {
                    return Err(Exception::IllegalInstruction(0));
                }
            }
        }
        self.set_reg(rd, old);
        Ok(())
    }

    fn trap(&mut self, e: Exception, epc: u64) {
        self.csr.mepc = epc;
        self.csr.mcause = e.cause();
        self.csr.mtval = e.tval();
        let mie = self.csr.mstatus.mie();
        if mie {
            self.csr.mstatus.0 |= Mstatus::MPIE_BIT;
        } else {
            self.csr.mstatus.0 &= !Mstatus::MPIE_BIT;
        }
        self.csr.mstatus.set_mie(false);
        self.csr.mstatus.set_mpp(self.priv_level);
        self.priv_level = PrivLevel::Machine;
        // The M-mode trap handler is the security monitor by construction
        // (core convention); remember whose world was interrupted.
        self.domain_before_trap = Some(self.domain);
        self.domain = Domain::SecurityMonitor;
        self.pc = self.csr.mtvec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_isa::asm::Assembler;

    fn run_program(build: impl FnOnce(&mut Assembler)) -> Iss {
        let base = 0x8000_0000;
        let mut asm = Assembler::new(base);
        build(&mut asm);
        let mut mem = Memory::new();
        mem.load_words(base, &asm.assemble().expect("assemble"));
        let mut iss = Iss::new(mem, base);
        assert_eq!(iss.run(1_000_000), IssExit::Halted);
        iss
    }

    #[test]
    fn arithmetic_and_memory() {
        let iss = run_program(|a| {
            a.li(Reg::T0, 0x8010_0000);
            a.li(Reg::T1, 123);
            a.sd(Reg::T1, Reg::T0, 0);
            a.ld(Reg::T2, Reg::T0, 0);
            a.slli(Reg::T2, Reg::T2, 1);
            a.inst(Inst::Ebreak);
        });
        assert_eq!(iss.reg(Reg::T2), 246);
    }

    #[test]
    fn loop_sums() {
        let iss = run_program(|a| {
            a.li(Reg::A0, 0);
            a.li(Reg::T0, 100);
            a.label("l");
            a.add(Reg::A0, Reg::A0, Reg::T0);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, "l");
            a.inst(Inst::Ebreak);
        });
        assert_eq!(iss.reg(Reg::A0), 5050);
    }

    #[test]
    fn trap_and_mret() {
        let iss = run_program(|a| {
            a.la(Reg::T0, "h");
            a.csrw(csr::MTVEC, Reg::T0);
            a.ecall();
            a.li(Reg::S2, 2);
            a.inst(Inst::Ebreak);
            a.label("h");
            a.li(Reg::S1, 1);
            a.csrr(Reg::T1, csr::MEPC);
            a.addi(Reg::T1, Reg::T1, 4);
            a.csrw(csr::MEPC, Reg::T1);
            a.mret();
        });
        assert_eq!(iss.reg(Reg::S1), 1);
        assert_eq!(iss.reg(Reg::S2), 2);
        assert_eq!(iss.csr.mcause, 11); // ecall from M
    }

    #[test]
    fn pmp_fault_reaches_handler_without_leak() {
        let iss = run_program(|a| {
            a.la(Reg::T0, "h");
            a.csrw(csr::MTVEC, Reg::T0);
            // Deny [0x8040_0000, +4K) and allow everything else.
            a.li(Reg::T1, (0x8040_0000u64 >> 2) | ((0x1000 >> 3) - 1));
            a.csrw(csr::PMPADDR0, Reg::T1);
            a.li(Reg::T1, u64::MAX >> 10);
            a.csrw(csr::PMPADDR0 + 1, Reg::T1);
            a.li(Reg::T2, 0x18 | (0x1F << 8));
            a.csrw(csr::PMPCFG0, Reg::T2);
            // Drop to S and fault.
            a.la(Reg::T3, "s");
            a.csrw(csr::MEPC, Reg::T3);
            a.li(Reg::T4, 0x800);
            a.csrw(csr::MSTATUS, Reg::T4);
            a.mret();
            a.label("s");
            a.li(Reg::A4, 0x8040_0000);
            a.ld(Reg::A5, Reg::A4, 0);
            a.label("h");
            a.inst(Inst::Ebreak);
        });
        assert_eq!(iss.csr.mcause, 5, "load access fault");
        assert_eq!(iss.reg(Reg::A5), 0, "no architectural leak in the ISS");
    }

    #[test]
    fn step_limit_reported() {
        let base = 0x8000_0000;
        let mut asm = Assembler::new(base);
        asm.label("spin");
        asm.j("spin");
        let mut mem = Memory::new();
        mem.load_words(base, &asm.assemble().unwrap());
        let mut iss = Iss::new(mem, base);
        assert_eq!(iss.run(100), IssExit::StepLimit);
    }

    /// Regression for the `max_steps`-boundary off-by-one: the budget counts
    /// *retired* instructions, and trap entry retires nothing — so a trap
    /// taken exactly as the budget runs out must still reach its handler.
    /// (Previously every raw step consumed budget and this returned
    /// `StepLimit` without ever executing the handler.)
    #[test]
    fn trap_at_budget_boundary_reaches_handler() {
        let base = 0x8000_0000;
        let mut asm = Assembler::new(base);
        asm.la(Reg::T0, "h"); // 2 insts (auipc+addi)
        asm.csrw(csr::MTVEC, Reg::T0); // 1 inst
        asm.addi(Reg::T1, Reg::T1, 1); // 1 inst — 4 retires so far
        asm.ecall(); // traps: retires nothing
        asm.label("h");
        asm.inst(Inst::Ebreak); // 5th retire
        let mut mem = Memory::new();
        mem.load_words(base, &asm.assemble().unwrap());
        let mut iss = Iss::new(mem, base);
        // Budget of exactly 5 retired instructions: 4 setup + the handler's
        // ebreak. The intervening trap entry must not consume budget.
        assert_eq!(iss.run(5), IssExit::Halted);
        assert_eq!(iss.csr.mcause, 11, "ecall from M reached the handler");
        assert_eq!(iss.retired(), 5);
    }

    /// The raw-step fuse bounds trap storms (a handler that itself faults)
    /// which retire nothing and would otherwise spin forever.
    #[test]
    fn trap_storm_trips_the_fuse() {
        let base = 0x8000_0000;
        let mut asm = Assembler::new(base);
        // mtvec left at 0: the handler address holds no code, so every trap
        // entry immediately faults again (illegal instruction at pc 0).
        asm.ecall();
        let mut mem = Memory::new();
        mem.load_words(base, &asm.assemble().unwrap());
        let mut iss = Iss::new(mem, base);
        assert_eq!(iss.run(10), IssExit::StepLimit);
        assert_eq!(iss.retired(), 0, "nothing ever retires in a trap storm");
    }

    #[test]
    fn mdomain_mirrors_core_semantics() {
        let iss = run_program(|a| {
            a.li(Reg::T0, 2); // enclave 0
            a.csrw(MDOMAIN, Reg::T0);
            a.csrr(Reg::A0, MDOMAIN);
            a.inst(Inst::Ebreak);
        });
        assert_eq!(iss.reg(Reg::A0), 2);
        assert_eq!(iss.domain(), Domain::Enclave(0));
    }

    #[test]
    fn mdomain_read_during_trap_reports_caller_and_mret_restores() {
        let iss = run_program(|a| {
            a.la(Reg::T0, "h");
            a.csrw(csr::MTVEC, Reg::T0);
            a.li(Reg::T0, 2); // enter enclave 0
            a.csrw(MDOMAIN, Reg::T0);
            a.ecall(); // trap into the "monitor"
            a.inst(Inst::Ebreak);
            a.label("h");
            a.csrr(Reg::A0, MDOMAIN); // reports the interrupted world
            a.csrr(Reg::T1, csr::MEPC);
            a.addi(Reg::T1, Reg::T1, 4);
            a.csrw(csr::MEPC, Reg::T1);
            a.mret();
        });
        assert_eq!(iss.reg(Reg::A0), 2, "read during trap reports the caller");
        assert_eq!(iss.domain(), Domain::Enclave(0), "mret restored the domain");
    }

    #[test]
    fn mdomain_faults_below_machine_mode() {
        let iss = run_program(|a| {
            a.la(Reg::T0, "h");
            a.csrw(csr::MTVEC, Reg::T0);
            // Drop to S-mode and touch MDOMAIN: must trap.
            a.la(Reg::T1, "s");
            a.csrw(csr::MEPC, Reg::T1);
            a.li(Reg::T2, 0x800); // MPP = S
            a.csrw(csr::MSTATUS, Reg::T2);
            a.mret();
            a.label("s");
            a.csrr(Reg::A0, MDOMAIN);
            a.label("h");
            a.inst(Inst::Ebreak);
        });
        assert_eq!(iss.csr.mcause, 2, "illegal instruction");
        assert_eq!(iss.reg(Reg::A0), 0, "no value leaked");
    }
}
