//! The microarchitectural execution trace.
//!
//! This is the Rust analog of the paper's instrumented-RTL simulation log:
//! every fill/write/update of every inventoried storage element is recorded
//! together with the cycle, the privilege level and the security *domain*
//! active at that moment. The TEESec checker consumes this trace to find
//! P1 (data) and P2 (metadata) violations.

use serde::{Deserialize, Serialize};

use teesec_isa::priv_level::PrivLevel;

/// The security domain executing when an event occurred.
///
/// Keystone needs no hardware enclave-mode bit — the domain is defined by
/// the PMP configuration the security monitor programs. The platform model
/// tags the trace at each SBI transition, mirroring how the paper's checker
/// learns test boundaries from the TEE API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Domain {
    /// Untrusted host user/supervisor.
    #[default]
    Untrusted,
    /// The Keystone security monitor (machine mode firmware).
    SecurityMonitor,
    /// An enclave, by platform-assigned id.
    Enclave(u32),
}

impl Domain {
    /// `true` for any enclave domain.
    pub fn is_enclave(self) -> bool {
        matches!(self, Domain::Enclave(_))
    }

    /// `true` for domains whose data is a secret w.r.t. the untrusted host
    /// (enclaves and the security monitor).
    pub fn is_trusted(self) -> bool {
        self != Domain::Untrusted
    }

    /// The MDOMAIN CSR encoding of this domain (0 = untrusted, 1 = security
    /// monitor, 2+id = enclave).
    pub fn encode(self) -> u64 {
        match self {
            Domain::Untrusted => 0,
            Domain::SecurityMonitor => 1,
            Domain::Enclave(id) => 2 + id as u64,
        }
    }

    /// Decodes an MDOMAIN CSR value (inverse of [`Domain::encode`]).
    pub fn decode(v: u64) -> Domain {
        match v {
            0 => Domain::Untrusted,
            1 => Domain::SecurityMonitor,
            n => Domain::Enclave((n - 2) as u32),
        }
    }
}

/// A microarchitectural storage element class.
///
/// These are the structures the verification plan inventories (paper §4.1.3)
/// and the checker scans for residue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Structure {
    /// The physical register file (speculative writebacks included).
    RegFile,
    /// L1 data cache lines.
    L1d,
    /// L1 instruction cache lines.
    L1i,
    /// Unified L2 cache lines.
    L2,
    /// Line-fill buffers / MSHRs.
    Lfb,
    /// Speculative store queue.
    StoreQueue,
    /// Committed store buffer.
    StoreBuffer,
    /// Data TLB.
    Dtlb,
    /// Instruction TLB.
    Itlb,
    /// Page-table-walker cache.
    PtwCache,
    /// Micro branch target buffer.
    Ubtb,
    /// Fetch target buffer (main BTB).
    Ftb,
    /// Branch history table.
    Bht,
    /// Hardware performance counters.
    Hpc,
}

impl Structure {
    /// Every structure class, in inventory order.
    pub fn all() -> &'static [Structure] {
        &[
            Structure::RegFile,
            Structure::L1d,
            Structure::L1i,
            Structure::L2,
            Structure::Lfb,
            Structure::StoreQueue,
            Structure::StoreBuffer,
            Structure::Dtlb,
            Structure::Itlb,
            Structure::PtwCache,
            Structure::Ubtb,
            Structure::Ftb,
            Structure::Bht,
            Structure::Hpc,
        ]
    }

    /// This structure's position in [`Structure::all`] (dense index for
    /// per-structure counter arrays).
    pub fn index(self) -> usize {
        match self {
            Structure::RegFile => 0,
            Structure::L1d => 1,
            Structure::L1i => 2,
            Structure::L2 => 3,
            Structure::Lfb => 4,
            Structure::StoreQueue => 5,
            Structure::StoreBuffer => 6,
            Structure::Dtlb => 7,
            Structure::Itlb => 8,
            Structure::PtwCache => 9,
            Structure::Ubtb => 10,
            Structure::Ftb => 11,
            Structure::Bht => 12,
            Structure::Hpc => 13,
        }
    }

    /// Stable display name used in reports (matches the paper's terminology).
    pub fn display_name(self) -> &'static str {
        match self {
            Structure::RegFile => "Register-file",
            Structure::L1d => "L1D-cache",
            Structure::L1i => "L1I-cache",
            Structure::L2 => "L2-cache",
            Structure::Lfb => "Line-fill-buffer",
            Structure::StoreQueue => "Store-queue",
            Structure::StoreBuffer => "Store-buffer",
            Structure::Dtlb => "D-TLB",
            Structure::Itlb => "I-TLB",
            Structure::PtwCache => "PTW-cache",
            Structure::Ubtb => "uBTB",
            Structure::Ftb => "FTB",
            Structure::Bht => "BHT",
            Structure::Hpc => "Perf-counters",
        }
    }
}

/// Why a cache line / fill buffer was filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FillPurpose {
    /// Demand load/store miss.
    Demand,
    /// Hardware prefetch (implicit, unchecked).
    Prefetch,
    /// Page-table-walk access (implicit).
    PageWalk,
    /// Write-allocate refill for a committed store.
    StoreRefill,
}

/// A hardware event counted by the HPM unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HpcEvent {
    /// Retired instructions.
    InstRet,
    /// L1D misses.
    L1dMiss,
    /// Data TLB misses.
    DtlbMiss,
    /// Taken branches.
    BranchTaken,
    /// Branch mispredictions.
    BranchMispredict,
    /// Store-to-load forwards.
    StoreToLoadForward,
    /// Architectural exceptions raised.
    Exception,
    /// Hardware page-table walks performed.
    PageWalk,
}

impl HpcEvent {
    /// The programmable counter index (0-based; counter 0 = `mhpmcounter3`)
    /// this event increments in the default event mapping.
    pub fn counter_index(self) -> usize {
        match self {
            HpcEvent::InstRet => 0,
            HpcEvent::L1dMiss => 1,
            HpcEvent::DtlbMiss => 2,
            HpcEvent::BranchTaken => 3,
            HpcEvent::BranchMispredict => 4,
            HpcEvent::StoreToLoadForward => 5,
            HpcEvent::Exception => 6,
            HpcEvent::PageWalk => 7,
        }
    }

    /// All events, one per default counter.
    pub fn all() -> &'static [HpcEvent] {
        &[
            HpcEvent::InstRet,
            HpcEvent::L1dMiss,
            HpcEvent::DtlbMiss,
            HpcEvent::BranchTaken,
            HpcEvent::BranchMispredict,
            HpcEvent::StoreToLoadForward,
            HpcEvent::Exception,
            HpcEvent::PageWalk,
        ]
    }
}

/// What happened to a storage element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A full cache-line (or buffer-entry) fill with data.
    Fill {
        /// Physical line address.
        addr: u64,
        /// Line contents at fill time.
        data: Vec<u8>,
        /// What initiated the fill.
        purpose: FillPurpose,
    },
    /// A scalar write (register writeback, TLB/BTB entry install, buffer
    /// entry write).
    Write {
        /// Element index (register number, entry slot, counter index...).
        index: u64,
        /// The value written.
        value: u64,
        /// A secondary key (virtual address / tag), when meaningful.
        tag: Option<u64>,
    },
    /// A scalar read that returned a value to the pipeline.
    Read {
        /// Element index.
        index: u64,
        /// The value read.
        value: u64,
    },
    /// The structure (or one entry of it) was flushed/invalidated.
    Flush,
    /// An HPM counter increment.
    CounterBump {
        /// The hardware event counted.
        event: HpcEvent,
    },
    /// The active security domain changed (platform-level marker).
    DomainSwitch {
        /// The domain now active.
        to: Domain,
    },
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation cycle.
    pub cycle: u64,
    /// Privilege level at the time of the event.
    pub priv_level: PrivLevel,
    /// Security domain at the time of the event.
    pub domain: Domain,
    /// Program counter of the associated instruction, when attributable.
    pub pc: Option<u64>,
    /// The storage element concerned.
    pub structure: Structure,
    /// The event itself.
    pub kind: TraceEventKind,
}

/// Per-structure event counts for one event kind class.
///
/// The indices of every array are [`Structure::index`] positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    fills: Vec<u64>,
    writes: Vec<u64>,
    reads: Vec<u64>,
    flushes: Vec<u64>,
    counter_bumps: u64,
    domain_switches: u64,
    total: u64,
}

impl Default for TraceStats {
    fn default() -> TraceStats {
        let n = Structure::all().len();
        TraceStats {
            fills: vec![0; n],
            writes: vec![0; n],
            reads: vec![0; n],
            flushes: vec![0; n],
            counter_bumps: 0,
            domain_switches: 0,
            total: 0,
        }
    }
}

impl TraceStats {
    /// Accounts one event.
    fn bump(&mut self, event: &TraceEvent) {
        let i = event.structure.index();
        match &event.kind {
            TraceEventKind::Fill { .. } => self.fills[i] += 1,
            TraceEventKind::Write { .. } => self.writes[i] += 1,
            TraceEventKind::Read { .. } => self.reads[i] += 1,
            TraceEventKind::Flush => self.flushes[i] += 1,
            TraceEventKind::CounterBump { .. } => self.counter_bumps += 1,
            TraceEventKind::DomainSwitch { .. } => self.domain_switches += 1,
        }
        self.total += 1;
    }

    /// Fill events recorded against `s`.
    pub fn fills(&self, s: Structure) -> u64 {
        self.fills[s.index()]
    }

    /// Write events recorded against `s`.
    pub fn writes(&self, s: Structure) -> u64 {
        self.writes[s.index()]
    }

    /// Read events recorded against `s`.
    pub fn reads(&self, s: Structure) -> u64 {
        self.reads[s.index()]
    }

    /// Flush/invalidate events recorded against `s`.
    pub fn flushes(&self, s: Structure) -> u64 {
        self.flushes[s.index()]
    }

    /// All events recorded against `s`, across kinds (counter bumps count
    /// toward [`Structure::Hpc`]).
    pub fn events_for(&self, s: Structure) -> u64 {
        let mut n = self.fills(s) + self.writes(s) + self.reads(s) + self.flushes(s);
        if s == Structure::Hpc {
            n += self.counter_bumps;
        }
        n
    }

    /// HPM counter-bump events.
    pub fn counter_bumps(&self) -> u64 {
        self.counter_bumps
    }

    /// Domain-switch markers.
    pub fn domain_switches(&self) -> u64 {
        self.domain_switches
    }

    /// Total recorded events of every kind.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// An online consumer of trace events.
///
/// A sink attached via [`Trace::set_sink`] observes every recorded event as
/// it happens, which lets a checker run *during* the simulation instead of
/// over a fully buffered log. Combined with [`Trace::set_buffering`]`(false)`
/// this bounds trace memory regardless of how many cycles a case runs.
///
/// `Send + Sync` are required so a `Core` carrying a sink can still be
/// shared across engine worker threads.
pub trait TraceSink: Send + Sync {
    /// Called once per recorded event, in record order.
    fn on_event(&mut self, event: &TraceEvent);

    /// Recovers the concrete sink for downcasting after the run.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// The growing execution trace.
///
/// Storage is split into an immutable *frozen prefix* and a live tail.
/// [`Trace::freeze`] moves the tail into the reference-counted prefix, so
/// cloning a frozen trace — as platform snapshot forks do for the shared
/// boot/setup prefix — is O(1) instead of a deep event copy, and each
/// fork then only owns its delta. Readers see one contiguous stream via
/// [`Trace::iter_events`].
#[derive(Default)]
pub struct Trace {
    frozen: Option<std::sync::Arc<[TraceEvent]>>,
    events: Vec<TraceEvent>,
    stats: TraceStats,
    enabled: bool,
    buffering: bool,
    sink: Option<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("frozen", &self.frozen_len())
            .field("events", &self.events)
            .field("stats", &self.stats)
            .field("enabled", &self.enabled)
            .field("buffering", &self.buffering)
            .field("sink", &self.sink.as_ref().map(|_| "<dyn TraceSink>"))
            .finish()
    }
}

impl Clone for Trace {
    /// Clones the buffered events and stats. The sink — if any — is *not*
    /// cloned: a sink holds per-run checker state, so a forked trace starts
    /// without one (attach a fresh sink with [`Trace::set_sink`]).
    fn clone(&self) -> Trace {
        Trace {
            // The frozen prefix is shared, not copied: forking a
            // snapshotted platform costs one refcount bump however long
            // the boot trace is.
            frozen: self.frozen.clone(),
            events: self.events.clone(),
            stats: self.stats.clone(),
            enabled: self.enabled,
            buffering: self.buffering,
            sink: None,
        }
    }
}

impl Trace {
    /// Creates an enabled, empty, buffering trace.
    pub fn new() -> Trace {
        Trace {
            frozen: None,
            events: Vec::new(),
            stats: TraceStats::default(),
            enabled: true,
            buffering: true,
            sink: None,
        }
    }

    /// Enables/disables recording (for performance sweeps that only need
    /// architectural results).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables/disables event buffering. With buffering off, events still
    /// update the running stats and feed the attached sink, but are not
    /// retained — [`Trace::events`] stays empty and memory stays bounded.
    pub fn set_buffering(&mut self, on: bool) {
        self.buffering = on;
    }

    /// Whether recorded events are retained in the buffer.
    pub fn is_buffering(&self) -> bool {
        self.buffering
    }

    /// Attaches an online event consumer (replacing any previous one).
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the current sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Whether a sink is attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends an event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.stats.bump(&event);
        if let Some(sink) = self.sink.as_mut() {
            sink.on_event(&event);
        }
        if self.buffering {
            self.events.push(event);
        }
    }

    /// Moves every buffered event into the immutable shared prefix.
    /// Purely a storage-representation change: [`Trace::iter_events`]
    /// yields the identical sequence before and after. Call at snapshot
    /// points so clones share the prefix instead of deep-copying it.
    pub fn freeze(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut v: Vec<TraceEvent> = match self.frozen.take() {
            Some(a) => a.to_vec(),
            None => Vec::with_capacity(self.events.len()),
        };
        v.append(&mut self.events);
        self.frozen = Some(v.into());
    }

    /// Number of events in the frozen (snapshot-shared) prefix.
    pub fn frozen_len(&self) -> usize {
        self.frozen.as_deref().map_or(0, |a| a.len())
    }

    /// All recorded events in order: frozen prefix first, then the live
    /// tail.
    pub fn iter_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.frozen
            .as_deref()
            .into_iter()
            .flatten()
            .chain(self.events.iter())
    }

    /// Running per-structure event counts (maintained by [`Trace::record`],
    /// so reading them is O(1) at any trace length).
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Iterates events touching one structure.
    pub fn for_structure(&self, s: Structure) -> impl Iterator<Item = &TraceEvent> {
        self.iter_events().filter(move |e| e.structure == s)
    }

    /// Number of recorded events (frozen prefix + live tail).
    pub fn len(&self) -> usize {
        self.frozen_len() + self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all recorded events (frozen and live) and resets the
    /// running stats.
    pub fn clear(&mut self) {
        self.frozen = None;
        self.events.clear();
        self.stats = TraceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, s: Structure) -> TraceEvent {
        TraceEvent {
            cycle,
            priv_level: PrivLevel::Supervisor,
            domain: Domain::Untrusted,
            pc: Some(0x8000_0000),
            structure: s,
            kind: TraceEventKind::Flush,
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = Trace::new();
        t.record(ev(1, Structure::L1d));
        t.record(ev(2, Structure::Lfb));
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter_events().next().unwrap().cycle, 1);
        assert_eq!(t.iter_events().nth(1).unwrap().structure, Structure::Lfb);
    }

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::new();
        t.set_enabled(false);
        t.record(ev(1, Structure::L1d));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn structure_filter() {
        let mut t = Trace::new();
        t.record(ev(1, Structure::L1d));
        t.record(ev(2, Structure::Lfb));
        t.record(ev(3, Structure::L1d));
        assert_eq!(t.for_structure(Structure::L1d).count(), 2);
        assert_eq!(t.for_structure(Structure::Ubtb).count(), 0);
    }

    #[test]
    fn domain_classification() {
        assert!(Domain::Enclave(3).is_enclave());
        assert!(Domain::Enclave(3).is_trusted());
        assert!(Domain::SecurityMonitor.is_trusted());
        assert!(!Domain::SecurityMonitor.is_enclave());
        assert!(!Domain::Untrusted.is_trusted());
    }

    #[test]
    fn hpc_events_map_to_unique_counters() {
        let mut seen = std::collections::HashSet::new();
        for e in HpcEvent::all() {
            assert!(
                seen.insert(e.counter_index()),
                "duplicate counter for {e:?}"
            );
        }
    }

    #[test]
    fn structure_names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Structure::all() {
            assert!(seen.insert(s.display_name()));
        }
    }

    #[test]
    fn structure_index_matches_all_order() {
        for (i, s) in Structure::all().iter().enumerate() {
            assert_eq!(s.index(), i, "{s:?}");
        }
    }

    #[test]
    fn stats_track_recorded_events() {
        let mut t = Trace::new();
        t.record(ev(1, Structure::L1d));
        t.record(TraceEvent {
            kind: TraceEventKind::Fill {
                addr: 0x8000_0000,
                data: vec![0; 64],
                purpose: FillPurpose::Demand,
            },
            ..ev(2, Structure::L1d)
        });
        t.record(TraceEvent {
            kind: TraceEventKind::CounterBump {
                event: HpcEvent::L1dMiss,
            },
            ..ev(3, Structure::Hpc)
        });
        t.record(TraceEvent {
            kind: TraceEventKind::DomainSwitch {
                to: Domain::Enclave(0),
            },
            ..ev(4, Structure::Hpc)
        });
        let s = t.stats();
        assert_eq!(s.flushes(Structure::L1d), 1);
        assert_eq!(s.fills(Structure::L1d), 1);
        assert_eq!(s.events_for(Structure::L1d), 2);
        assert_eq!(s.counter_bumps(), 1);
        assert_eq!(s.events_for(Structure::Hpc), 1);
        assert_eq!(s.domain_switches(), 1);
        assert_eq!(s.total(), 4);
        t.clear();
        assert_eq!(t.stats().total(), 0);
    }

    #[test]
    fn disabled_trace_does_not_count_stats() {
        let mut t = Trace::new();
        t.set_enabled(false);
        t.record(ev(1, Structure::L1d));
        assert_eq!(t.stats().total(), 0);
    }

    struct CollectSink(Vec<u64>);

    impl TraceSink for CollectSink {
        fn on_event(&mut self, event: &TraceEvent) {
            self.0.push(event.cycle);
        }

        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    #[test]
    fn sink_sees_every_event_without_buffering() {
        let mut t = Trace::new();
        t.set_buffering(false);
        t.set_sink(Box::new(CollectSink(Vec::new())));
        t.record(ev(1, Structure::L1d));
        t.record(ev(2, Structure::Lfb));
        assert!(t.is_empty(), "buffering off retains nothing");
        assert_eq!(t.stats().total(), 2, "stats still maintained");
        let sink = t.take_sink().expect("sink attached");
        let got = sink.into_any().downcast::<CollectSink>().expect("type");
        assert_eq!(got.0, vec![1, 2], "sink saw events in record order");
        assert!(!t.has_sink());
    }

    #[test]
    fn disabled_trace_feeds_no_sink() {
        let mut t = Trace::new();
        t.set_enabled(false);
        t.set_sink(Box::new(CollectSink(Vec::new())));
        t.record(ev(1, Structure::L1d));
        let sink = t.take_sink().unwrap().into_any();
        assert!(sink.downcast::<CollectSink>().unwrap().0.is_empty());
    }

    #[test]
    fn clone_drops_the_sink_but_keeps_events() {
        let mut t = Trace::new();
        t.set_sink(Box::new(CollectSink(Vec::new())));
        t.record(ev(1, Structure::L1d));
        let c = t.clone();
        assert!(!c.has_sink(), "per-run sink state must not be forked");
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().total(), 1);
        assert!(t.has_sink(), "original keeps its sink");
    }
}
