//! A cycle-driven out-of-order RISC-V core model with full
//! microarchitectural introspection — the simulation substrate of the
//! TEESec reproduction.
//!
//! The paper verifies TEEs against RTL simulations of BOOM and XiangShan.
//! This crate plays that role: a from-scratch RV64 out-of-order core whose
//! security-relevant microarchitectural policies are configuration knobs
//! ([`config::CoreConfig`]), with two presets encoding the two processors'
//! documented differences. Every stateful structure reports itself to the
//! introspection inventory ([`introspect::StorageInventory`]) and logs every
//! fill/write/flush into a typed per-cycle trace ([`trace::Trace`]) — the
//! analog of the paper's instrumented Verilator log.
//!
//! # Example
//!
//! ```
//! use teesec_uarch::config::CoreConfig;
//! use teesec_uarch::core::Core;
//! use teesec_uarch::mem::Memory;
//! use teesec_isa::asm::Assembler;
//! use teesec_isa::reg::Reg;
//! use teesec_isa::inst::Inst;
//!
//! let mut asm = Assembler::new(0x8000_0000);
//! asm.li(Reg::A0, 41);
//! asm.addi(Reg::A0, Reg::A0, 1);
//! asm.inst(Inst::Ebreak);
//! let mut mem = Memory::new();
//! mem.load_words(0x8000_0000, &asm.assemble()?);
//! let mut core = Core::new(CoreConfig::boom(), mem, 0x8000_0000);
//! core.run(10_000);
//! assert_eq!(core.reg(Reg::A0), 42);
//! # Ok::<(), teesec_isa::asm::AssembleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btb;
pub mod cache;
pub mod config;
pub mod core;
pub mod counters;
pub mod csr_file;
pub mod decode;
pub mod introspect;
pub mod iss;
pub mod lsu;
pub mod mem;
pub mod tlb;
pub mod trace;
pub mod trap;

pub use config::CoreConfig;
pub use core::{fast_path_default, Core, FastPathStats, RetiredInst, RunExit};
pub use counters::{StructureCounters, UarchCounters};
pub use decode::{DecodeCache, DecodeCacheStats};
pub use iss::{Iss, IssExit, IssStep};
pub use trace::{Domain, Structure, Trace};
