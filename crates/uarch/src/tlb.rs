//! Translation lookaside buffers and the page-table-walker cache.

use serde::{Deserialize, Serialize};

use teesec_isa::vm::{Pte, VirtAddr};

use crate::trace::Domain;

/// One TLB entry (sv39, 4 KiB leaf pages only — the model's proxy kernel
/// maps everything with 4 KiB granules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbEntry {
    /// Valid bit.
    pub valid: bool,
    /// Virtual page number.
    pub vpn: u64,
    /// The leaf PTE (carries PPN and permission bits).
    pub pte: Pte,
    /// LRU stamp.
    pub last_use: u64,
    /// Domain that installed the translation (metadata residue tracking).
    pub fill_domain: Domain,
}

/// A fully associative TLB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    use_counter: u64,
}

impl Tlb {
    /// Creates a TLB with `n` entries.
    pub fn new(n: usize) -> Tlb {
        let e = TlbEntry {
            valid: false,
            vpn: 0,
            pte: Pte(0),
            last_use: 0,
            fill_domain: Domain::Untrusted,
        };
        Tlb {
            entries: vec![e; n],
            use_counter: 0,
        }
    }

    /// Looks up the translation for `va`, updating LRU state on a hit.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<Pte> {
        let vpn = va.0 >> 12;
        let idx = self.entries.iter().position(|e| e.valid && e.vpn == vpn)?;
        self.use_counter += 1;
        self.entries[idx].last_use = self.use_counter;
        Some(self.entries[idx].pte)
    }

    /// Installs a translation, evicting LRU if full. Returns the slot used.
    pub fn insert(&mut self, va: VirtAddr, pte: Pte, domain: Domain) -> usize {
        let vpn = va.0 >> 12;
        self.use_counter += 1;
        let counter = self.use_counter;
        let idx = self
            .entries
            .iter()
            .position(|e| e.valid && e.vpn == vpn)
            .or_else(|| self.entries.iter().position(|e| !e.valid))
            .unwrap_or_else(|| {
                self.entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_use)
                    .map(|(i, _)| i)
                    .expect("TLB has at least one entry")
            });
        self.entries[idx] = TlbEntry {
            valid: true,
            vpn,
            pte,
            last_use: counter,
            fill_domain: domain,
        };
        idx
    }

    /// Invalidates everything (`sfence.vma`).
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }

    /// All entries, for snapshot inspection.
    pub fn entries(&self) -> &[TlbEntry] {
        &self.entries
    }

    /// Count of valid entries.
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

/// A small cache of page-table-entry fetches keyed by PTE physical address.
///
/// XiangShan PMP-checks refill addresses before requesting them (paper
/// §7.1.2); the walker consults that policy, not this structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PtwCache {
    entries: Vec<PtwCacheEntry>,
    use_counter: u64,
}

/// One PTW cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtwCacheEntry {
    /// Valid bit.
    pub valid: bool,
    /// Physical address of the cached PTE.
    pub pte_addr: u64,
    /// The cached PTE value.
    pub pte: Pte,
    /// LRU stamp.
    pub last_use: u64,
    /// Domain active at fill.
    pub fill_domain: Domain,
}

impl PtwCache {
    /// Creates a PTW cache with `n` entries.
    pub fn new(n: usize) -> PtwCache {
        let e = PtwCacheEntry {
            valid: false,
            pte_addr: 0,
            pte: Pte(0),
            last_use: 0,
            fill_domain: Domain::Untrusted,
        };
        PtwCache {
            entries: vec![e; n],
            use_counter: 0,
        }
    }

    /// Looks up a cached PTE fetch.
    pub fn lookup(&mut self, pte_addr: u64) -> Option<Pte> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.valid && e.pte_addr == pte_addr)?;
        self.use_counter += 1;
        self.entries[idx].last_use = self.use_counter;
        Some(self.entries[idx].pte)
    }

    /// Caches a PTE fetch.
    pub fn insert(&mut self, pte_addr: u64, pte: Pte, domain: Domain) {
        self.use_counter += 1;
        let counter = self.use_counter;
        let idx = self
            .entries
            .iter()
            .position(|e| !e.valid)
            .unwrap_or_else(|| {
                self.entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_use)
                    .map(|(i, _)| i)
                    .expect("PTW cache has at least one entry")
            });
        self.entries[idx] = PtwCacheEntry {
            valid: true,
            pte_addr,
            pte,
            last_use: counter,
            fill_domain: domain,
        };
    }

    /// Invalidates everything (`sfence.vma`).
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }

    /// All entries, for snapshot inspection.
    pub fn entries(&self) -> &[PtwCacheEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_isa::vm::PhysAddr;

    #[test]
    fn tlb_miss_then_hit() {
        let mut tlb = Tlb::new(4);
        let va = VirtAddr(0x4000_1000);
        assert_eq!(tlb.lookup(va), None);
        let pte = Pte::leaf(PhysAddr(0x8000_3000), Pte::R | Pte::W);
        tlb.insert(va, pte, Domain::Untrusted);
        assert_eq!(tlb.lookup(va), Some(pte));
        // Offset within the same page still hits.
        assert_eq!(tlb.lookup(VirtAddr(0x4000_1ABC)), Some(pte));
        // Different page misses.
        assert_eq!(tlb.lookup(VirtAddr(0x4000_2000)), None);
    }

    #[test]
    fn tlb_lru_eviction() {
        let mut tlb = Tlb::new(2);
        let pte = Pte::leaf(PhysAddr(0x8000_0000), Pte::R);
        tlb.insert(VirtAddr(0x1000), pte, Domain::Untrusted);
        tlb.insert(VirtAddr(0x2000), pte, Domain::Untrusted);
        assert!(tlb.lookup(VirtAddr(0x1000)).is_some()); // refresh
        tlb.insert(VirtAddr(0x3000), pte, Domain::Untrusted);
        assert!(tlb.lookup(VirtAddr(0x2000)).is_none());
        assert!(tlb.lookup(VirtAddr(0x1000)).is_some());
        assert_eq!(tlb.valid_count(), 2);
    }

    #[test]
    fn tlb_reinsert_updates_in_place() {
        let mut tlb = Tlb::new(4);
        let va = VirtAddr(0x5000);
        tlb.insert(
            va,
            Pte::leaf(PhysAddr(0x8000_0000), Pte::R),
            Domain::Untrusted,
        );
        tlb.insert(
            va,
            Pte::leaf(PhysAddr(0x9000_0000), Pte::R | Pte::W),
            Domain::Enclave(0),
        );
        assert_eq!(tlb.valid_count(), 1);
        assert_eq!(tlb.lookup(va).unwrap().pa(), PhysAddr(0x9000_0000));
    }

    #[test]
    fn tlb_flush() {
        let mut tlb = Tlb::new(4);
        tlb.insert(
            VirtAddr(0x1000),
            Pte::leaf(PhysAddr(0x8000_0000), Pte::R),
            Domain::Untrusted,
        );
        tlb.flush_all();
        assert_eq!(tlb.valid_count(), 0);
        assert!(tlb.lookup(VirtAddr(0x1000)).is_none());
    }

    #[test]
    fn ptw_cache_roundtrip_and_flush() {
        let mut pc = PtwCache::new(2);
        let pte = Pte::table(PhysAddr(0x8020_0000));
        assert_eq!(pc.lookup(0x8010_0080), None);
        pc.insert(0x8010_0080, pte, Domain::Untrusted);
        assert_eq!(pc.lookup(0x8010_0080), Some(pte));
        pc.flush_all();
        assert_eq!(pc.lookup(0x8010_0080), None);
    }

    #[test]
    fn ptw_cache_lru() {
        let mut pc = PtwCache::new(2);
        let pte = Pte::table(PhysAddr(0x8020_0000));
        pc.insert(0x100, pte, Domain::Untrusted);
        pc.insert(0x200, pte, Domain::Untrusted);
        assert!(pc.lookup(0x100).is_some());
        pc.insert(0x300, pte, Domain::Untrusted);
        assert!(pc.lookup(0x200).is_none());
        assert!(pc.lookup(0x100).is_some() && pc.lookup(0x300).is_some());
    }
}
