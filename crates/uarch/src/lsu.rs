//! The load/store unit: TLB + hardware page-table walker, PMP checking with
//! configurable timing, the L1D/L2 hierarchy with line-fill buffers, the
//! next-line prefetcher, and the committed-store buffer.
//!
//! Every leakage case of the paper's Table 3 manifests here or in the
//! register writeback the core performs with the values this unit returns:
//!
//! * **D1** — prefetch fills skip PMP checks and deposit enclave lines in
//!   the LFB;
//! * **D2** — page-table-walk requests on BOOM traverse the L1D port and
//!   fill the LFB before the access fault resolves; XiangShan's PMP
//!   pre-check suppresses the request;
//! * **D3** — write-allocate refills for committed stores pull the old
//!   (enclave) line into the LFB, where it persists;
//! * **D4–D7** — the parallel PMP check lets a faulting load return real
//!   data from the L1D;
//! * **D8** — the store buffer forwards committed enclave stores to
//!   faulting host loads (XiangShan).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use teesec_isa::csr::Satp;
use teesec_isa::pmp::AccessKind;
use teesec_isa::priv_level::PrivLevel;
use teesec_isa::vm::{pte_addr, Pte, VirtAddr, SV39_LEVELS};

use crate::cache::{Cache, Lfb};
use crate::config::{
    CoreConfig, FaultingMissPolicy, PmpCheckTiming, PrefetcherKind, PtwRequestPath,
};
use crate::csr_file::CsrFile;
use crate::mem::Memory;
use crate::tlb::{PtwCache, Tlb};
use crate::trace::{Domain, FillPurpose, HpcEvent, Structure, Trace, TraceEvent, TraceEventKind};
use crate::trap::Exception;

/// Cycle timestamps of the pipeline stages a load traversed — the lanes of
/// the paper's Figure 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadTimeline {
    /// TLB request issued.
    pub tlb_req: u64,
    /// Translation available (TLB hit or walk completion).
    pub tlb_resp: u64,
    /// PMP permission decision known.
    pub perm_check: u64,
    /// Cache request issued (0 when suppressed).
    pub cache_req: u64,
    /// Cache (or fake-hit / forward) response.
    pub cache_resp: u64,
    /// Whether the response was a "fake hit" with zero data.
    pub fake_hit: bool,
    /// Whether the value was forwarded from the store buffer.
    pub sb_forward: bool,
}

/// A demand load entering the LSU.
#[derive(Debug, Clone, Copy)]
pub struct LoadRequest {
    /// Program-order token (monotone; used for squash).
    pub seq: u64,
    /// Virtual (or physical when translation is off) address.
    pub vaddr: u64,
    /// Access size in bytes.
    pub width: u64,
    /// Privilege of the issuing instruction.
    pub priv_level: PrivLevel,
    /// `mstatus.SUM` at issue.
    pub sum: bool,
    /// `satp` at issue.
    pub satp: Satp,
}

/// A store-address translation request (stores probe the MMU/PMP at execute
/// but only touch memory at commit).
#[derive(Debug, Clone, Copy)]
pub struct XlateRequest {
    /// Program-order token.
    pub seq: u64,
    /// Virtual address.
    pub vaddr: u64,
    /// Access size in bytes.
    pub width: u64,
    /// Privilege of the issuing instruction.
    pub priv_level: PrivLevel,
    /// `mstatus.SUM` at issue.
    pub sum: bool,
    /// `satp` at issue.
    pub satp: Satp,
}

/// Completion record of a demand load.
#[derive(Debug, Clone, Copy)]
pub struct LoadCompletion {
    /// The requesting token.
    pub seq: u64,
    /// The (possibly transient) value returned to the pipeline.
    pub value: u64,
    /// The exception to raise at commit, if any.
    pub exception: Option<Exception>,
    /// Resolved physical address (when translation succeeded).
    pub pa: Option<u64>,
    /// Stage timing.
    pub timeline: LoadTimeline,
}

/// Completion record of a store-address translation.
#[derive(Debug, Clone, Copy)]
pub struct XlateCompletion {
    /// The requesting token.
    pub seq: u64,
    /// Resolved physical address.
    pub pa: Option<u64>,
    /// The exception to raise at commit, if any.
    pub exception: Option<Exception>,
}

// ---------------------------------------------------------------------------
// Internal state machines
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XlateState {
    /// Waiting for the TLB/walker.
    Translate,
    /// Walk `walk_id` outstanding.
    Walking(u64),
    /// Finished (completion emitted).
    Done,
}

#[derive(Debug, Clone)]
struct LoadOp {
    req: LoadRequest,
    squashed: bool,
    state: LoadLane,
    timeline: LoadTimeline,
    pa: Option<u64>,
    exception: Option<Exception>,
    /// The miss counter fires once per load, not once per retry tick.
    miss_counted: bool,
    /// [`Lsu::epoch`] value of the last [`Lsu::try_access`] attempt.
    /// On the fast path a load stalled in [`LoadLane::Access`] skips its
    /// per-cycle retry while the epoch is unchanged: the stall verdict
    /// reads only the store buffer, L1D/LFB state, and the PMP — all of
    /// which bump the epoch when they change — and a failed attempt has
    /// no side effects, so the elided retries are provably identical.
    attempt_epoch: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadLane {
    Translate,
    Walking(u64),
    /// PMP check + access dispatch next tick.
    Access,
    /// Waiting for a fill (`mem_req` id).
    WaitFill(u64),
    /// Respond with `value` once `at` is reached.
    Respond {
        value: u64,
        at: u64,
    },
    Done,
}

#[derive(Debug, Clone)]
struct StoreXlateOp {
    req: XlateRequest,
    squashed: bool,
    state: XlateState,
    pa: Option<u64>,
    exception: Option<Exception>,
}

/// A committed store waiting to drain into the L1D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreBufferEntry {
    /// Physical address.
    pub pa: u64,
    /// Store value.
    pub value: u64,
    /// Width in bytes.
    pub width: u64,
    /// Domain that executed the store.
    pub domain: Domain,
    /// Cycle the entry was created.
    pub cycle: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalkState {
    /// Consult the PTW cache / issue the next PTE fetch.
    Lookup,
    /// PTE fetch outstanding (`mem_req` id).
    WaitMem(u64),
    /// PTE value available this tick.
    HavePte(Pte),
}

#[derive(Debug, Clone)]
struct Walk {
    id: u64,
    va: VirtAddr,
    level: usize,
    table_pa: u64,
    state: WalkState,
    access: AccessKind,
    outcome: Option<WalkOutcome>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalkOutcome {
    Translated(Pte),
    Fault(Exception),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqDest {
    Load(u64),
    Walk(u64),
    Prefetch,
    StoreDrain,
}

#[derive(Debug, Clone, Copy)]
struct MemReq {
    id: u64,
    line_addr: u64,
    purpose: FillPurpose,
    complete_at: u64,
    lfb_idx: Option<usize>,
    dest: ReqDest,
    /// Zero the returned/filled data (clear-illegal-data-returns mitigation).
    zero_fill: bool,
    /// Skip installing the line into the L1D (zeroed or direct-to-L2 paths).
    fill_l1d: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainState {
    Probe,
    WaitFill(u64),
}

/// The load/store unit.
#[derive(Debug, Clone)]
pub struct Lsu {
    cfg: CoreConfig,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Line fill buffers.
    pub lfb: Lfb,
    /// Data TLB.
    pub dtlb: Tlb,
    /// Page-table-walker cache.
    pub ptw_cache: PtwCache,
    store_buffer: VecDeque<StoreBufferEntry>,
    drain_state: DrainState,
    loads: Vec<LoadOp>,
    xlates: Vec<StoreXlateOp>,
    walks: Vec<Walk>,
    mem_reqs: Vec<MemReq>,
    completions: Vec<LoadCompletion>,
    xlate_completions: Vec<XlateCompletion>,
    next_req_id: u64,
    next_walk_id: u64,
    /// Fast-path switch mirrored from the core ([`Lsu::set_fast_path`]).
    fast_path: bool,
    /// Change counter over every input of the access-retry verdict
    /// (store buffer, L1D, LFB, fill completions, PMP). Starts at 1 so a
    /// zero-initialized [`LoadOp::attempt_epoch`] always scans first.
    epoch: u64,
    /// Access retries actually performed (fast path only).
    retry_checks: u64,
    /// Access retries elided as provably-unchanged (fast path only).
    retry_skips: u64,
}

impl Lsu {
    /// Creates an LSU for the given core configuration.
    pub fn new(cfg: &CoreConfig) -> Lsu {
        Lsu {
            l1d: Cache::new(cfg.l1d_sets, cfg.l1d_ways, cfg.line_size),
            l2: Cache::new(cfg.l2_sets, cfg.l2_ways, cfg.line_size),
            lfb: Lfb::new(cfg.lfb_entries, cfg.line_size),
            dtlb: Tlb::new(cfg.dtlb_entries),
            ptw_cache: PtwCache::new(cfg.ptw_cache_entries),
            store_buffer: VecDeque::new(),
            drain_state: DrainState::Probe,
            loads: Vec::new(),
            xlates: Vec::new(),
            walks: Vec::new(),
            mem_reqs: Vec::new(),
            completions: Vec::new(),
            xlate_completions: Vec::new(),
            next_req_id: 0,
            next_walk_id: 0,
            fast_path: crate::core::fast_path_default(),
            epoch: 1,
            retry_checks: 0,
            retry_skips: 0,
            cfg: cfg.clone(),
        }
    }

    /// Mirrors the core's fast-path switch. Bumps the epoch so every
    /// stalled load rescans on the next tick regardless of direction.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
        self.epoch += 1;
    }

    /// `(retries performed, retries elided)` under the fast path.
    pub fn fastpath_counters(&self) -> (u64, u64) {
        (self.retry_checks, self.retry_skips)
    }

    /// Invalidates memoized access-retry verdicts after a change the LSU
    /// cannot see itself (PMP reconfiguration, trap-driven state edits).
    pub fn note_external_change(&mut self) {
        self.epoch += 1;
    }

    /// Records a change to an access-retry verdict input.
    #[inline]
    fn note_change(&mut self) {
        self.epoch += 1;
    }

    /// Enqueues a demand load.
    pub fn start_load(&mut self, req: LoadRequest, cycle: u64) {
        let timeline = LoadTimeline {
            tlb_req: cycle,
            ..LoadTimeline::default()
        };
        self.loads.push(LoadOp {
            req,
            squashed: false,
            state: LoadLane::Translate,
            timeline,
            pa: None,
            exception: None,
            miss_counted: false,
            attempt_epoch: 0,
        });
    }

    /// Enqueues a store-address translation.
    pub fn start_store_xlate(&mut self, req: XlateRequest) {
        self.xlates.push(StoreXlateOp {
            req,
            squashed: false,
            state: XlateState::Translate,
            pa: None,
            exception: None,
        });
    }

    /// Enqueues a committed store for draining.
    #[allow(clippy::too_many_arguments)]
    pub fn commit_store(
        &mut self,
        pa: u64,
        value: u64,
        width: u64,
        domain: Domain,
        cycle: u64,
        trace: &mut Trace,
        priv_level: PrivLevel,
    ) {
        self.store_buffer.push_back(StoreBufferEntry {
            pa,
            value,
            width,
            domain,
            cycle,
        });
        self.note_change();
        if self.cfg.store_buffer_entries > 0 {
            trace.record(TraceEvent {
                cycle,
                priv_level,
                domain,
                pc: None,
                structure: Structure::StoreBuffer,
                kind: TraceEventKind::Write {
                    index: pa,
                    value,
                    tag: Some(width),
                },
            });
        }
    }

    /// Number of stores waiting in the buffer/drain queue.
    pub fn store_buffer_len(&self) -> usize {
        self.store_buffer.len()
    }

    /// `true` once every committed store has reached the L1D/memory
    /// (the condition a `fence` waits for).
    pub fn stores_drained(&self) -> bool {
        self.store_buffer.is_empty() && self.drain_state == DrainState::Probe
    }

    /// Committed-store entries currently buffered (snapshot inspection).
    pub fn store_buffer_entries(&self) -> impl Iterator<Item = &StoreBufferEntry> {
        self.store_buffer.iter()
    }

    /// `true` if any in-flight LSU work remains (used by tests to settle).
    pub fn quiescent(&self) -> bool {
        self.loads.iter().all(|l| l.state == LoadLane::Done)
            && self.xlates.iter().all(|x| x.state == XlateState::Done)
            && self.store_buffer.is_empty()
            && self.mem_reqs.is_empty()
            && self.walks.is_empty()
    }

    /// Drops completion delivery for all ops with `seq >= from_seq`.
    /// Outstanding fills keep running — hardware does not cancel memory
    /// requests, which is exactly why transient accesses leave traces.
    pub fn squash_after(&mut self, from_seq: u64) {
        for l in &mut self.loads {
            if l.req.seq >= from_seq {
                l.squashed = true;
            }
        }
        for x in &mut self.xlates {
            if x.req.seq >= from_seq {
                x.squashed = true;
            }
        }
        self.completions.retain(|c| c.seq < from_seq);
        self.xlate_completions.retain(|c| c.seq < from_seq);
    }

    /// Takes pending load completions.
    pub fn take_completions(&mut self) -> Vec<LoadCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Takes pending store-translation completions.
    pub fn take_xlate_completions(&mut self) -> Vec<XlateCompletion> {
        std::mem::take(&mut self.xlate_completions)
    }

    /// Flushes the L1D (mitigation).
    pub fn flush_l1d(&mut self, cycle: u64, trace: &mut Trace, p: PrivLevel, d: Domain) {
        self.note_change();
        self.l1d.flush_all();
        trace.record(flush_event(cycle, p, d, Structure::L1d));
    }

    /// Flushes the LFB (mitigation).
    pub fn flush_lfb(&mut self, cycle: u64, trace: &mut Trace, p: PrivLevel, d: Domain) {
        self.note_change();
        self.lfb.flush_all();
        trace.record(flush_event(cycle, p, d, Structure::Lfb));
    }

    /// Synchronously completes every buffered committed store (no trace
    /// event — this is the drain a cache-flush operation performs before
    /// invalidating lines, not a distinct mitigation).
    pub fn drain_all_stores(&mut self, mem: &mut Memory) {
        self.note_change();
        while let Some(e) = self.store_buffer.pop_front() {
            mem.write_uint(e.pa, e.value, e.width);
            if self.l1d.contains(e.pa) {
                self.l1d.write(e.pa, e.value, e.width);
            }
            if self.l2.contains(e.pa) {
                self.l2.write(e.pa, e.value, e.width);
            }
        }
        self.cancel_outstanding_store_refills();
        self.drain_state = DrainState::Probe;
    }

    /// Cancels in-flight write-allocate refills: the synchronous drain has
    /// already absorbed their stores, and letting them land later would
    /// re-install (possibly secret) lines into a just-flushed cache.
    fn cancel_outstanding_store_refills(&mut self) {
        self.note_change();
        let cancelled: Vec<MemReq> = self
            .mem_reqs
            .iter()
            .filter(|r| r.dest == ReqDest::StoreDrain)
            .copied()
            .collect();
        self.mem_reqs.retain(|r| r.dest != ReqDest::StoreDrain);
        for req in cancelled {
            if let Some(idx) = req.lfb_idx {
                self.lfb.invalidate_entry(idx);
            }
        }
    }

    /// Drops all buffered committed stores after writing them through to
    /// memory (mitigation drains rather than discards — discarding would
    /// lose architectural state).
    pub fn flush_store_buffer(
        &mut self,
        mem: &mut Memory,
        cycle: u64,
        trace: &mut Trace,
        p: PrivLevel,
        d: Domain,
    ) {
        self.note_change();
        while let Some(e) = self.store_buffer.pop_front() {
            mem.write_uint(e.pa, e.value, e.width);
            if self.l1d.contains(e.pa) {
                self.l1d.write(e.pa, e.value, e.width);
            }
            if self.l2.contains(e.pa) {
                self.l2.write(e.pa, e.value, e.width);
            }
        }
        self.cancel_outstanding_store_refills();
        self.drain_state = DrainState::Probe;
        trace.record(flush_event(cycle, p, d, Structure::StoreBuffer));
    }

    /// Flushes both TLBs' data side and the PTW cache (`sfence.vma`).
    pub fn sfence(&mut self, cycle: u64, trace: &mut Trace, p: PrivLevel, d: Domain) {
        self.dtlb.flush_all();
        self.ptw_cache.flush_all();
        trace.record(flush_event(cycle, p, d, Structure::Dtlb));
        trace.record(flush_event(cycle, p, d, Structure::PtwCache));
    }

    // -----------------------------------------------------------------
    // The per-cycle state machine advance.
    // -----------------------------------------------------------------

    /// Advances every in-flight operation by one cycle.
    pub fn tick(
        &mut self,
        cycle: u64,
        priv_level: PrivLevel,
        domain: Domain,
        csr: &mut CsrFile,
        mem: &mut Memory,
        trace: &mut Trace,
    ) {
        self.complete_mem_reqs(cycle, priv_level, domain, csr, mem, trace);
        self.advance_walks(cycle, priv_level, domain, csr, mem, trace);
        self.advance_loads(cycle, priv_level, domain, csr, mem, trace);
        self.advance_xlates(cycle, priv_level, domain, csr, trace);
        self.drain_stores(cycle, priv_level, domain, mem, trace);
        self.loads.retain(|l| l.state != LoadLane::Done);
        self.xlates.retain(|x| x.state != XlateState::Done);
        let keep: Vec<u64> = self
            .walks
            .iter()
            .filter(|w| w.outcome.is_none() || self.walk_has_waiters(w.id))
            .map(|w| w.id)
            .collect();
        self.walks.retain(|w| keep.contains(&w.id));
    }

    fn walk_has_waiters(&self, walk_id: u64) -> bool {
        self.loads
            .iter()
            .any(|l| l.state == LoadLane::Walking(walk_id))
            || self
                .xlates
                .iter()
                .any(|x| x.state == XlateState::Walking(walk_id))
    }

    fn alloc_req_id(&mut self) -> u64 {
        self.next_req_id += 1;
        self.next_req_id
    }

    // ---- memory request completion ------------------------------------

    fn complete_mem_reqs(
        &mut self,
        cycle: u64,
        priv_level: PrivLevel,
        domain: Domain,
        csr: &mut CsrFile,
        mem: &mut Memory,
        trace: &mut Trace,
    ) {
        let ready: Vec<MemReq> = self
            .mem_reqs
            .iter()
            .filter(|r| r.complete_at <= cycle)
            .copied()
            .collect();
        self.mem_reqs.retain(|r| r.complete_at > cycle);
        if !ready.is_empty() {
            // Completions fill the L1D/LFB and may pop a draining store —
            // any stalled load's retry verdict can flip.
            self.note_change();
        }
        for req in ready {
            let line_size = self.l1d.line_size();
            // Obtain the line: from L2 if present, else from memory (which
            // also installs it into L2 — the hierarchy is inclusive here).
            let mut data = vec![0u8; line_size as usize];
            if self.l2.contains(req.line_addr) {
                for i in 0..line_size {
                    data[i as usize] = self.l2.read(req.line_addr + i, 1).unwrap_or(0) as u8;
                }
            } else {
                mem.read_bytes(req.line_addr, &mut data);
                self.l2.fill(req.line_addr, data.clone(), domain);
                trace.record(TraceEvent {
                    cycle,
                    priv_level,
                    domain,
                    pc: None,
                    structure: Structure::L2,
                    kind: TraceEventKind::Fill {
                        addr: req.line_addr,
                        data: data.clone(),
                        purpose: req.purpose,
                    },
                });
            }
            if req.zero_fill {
                data.fill(0);
            }
            // Complete the LFB entry with the (possibly zeroed) line. A
            // mitigation flush may have invalidated — and a newer request
            // reallocated — the entry while this request was outstanding;
            // the late fill only lands if the slot still belongs to it.
            let lfb_slot_live = req.lfb_idx.is_some_and(|idx| {
                let e = self.lfb.entry(idx);
                e.valid
                    && e.state == crate::cache::LfbState::Pending
                    && e.line_addr == req.line_addr
            });
            if let (Some(idx), true) = (req.lfb_idx, lfb_slot_live) {
                self.lfb.complete(idx, data.clone(), domain, cycle);
                trace.record(TraceEvent {
                    cycle,
                    priv_level,
                    domain,
                    pc: None,
                    structure: Structure::Lfb,
                    kind: TraceEventKind::Fill {
                        addr: req.line_addr,
                        data: data.clone(),
                        purpose: req.purpose,
                    },
                });
            }
            if req.fill_l1d {
                self.l1d.fill(req.line_addr, data.clone(), domain);
                trace.record(TraceEvent {
                    cycle,
                    priv_level,
                    domain,
                    pc: None,
                    structure: Structure::L1d,
                    kind: TraceEventKind::Fill {
                        addr: req.line_addr,
                        data: data.clone(),
                        purpose: req.purpose,
                    },
                });
            }
            match req.dest {
                ReqDest::Load(seq) => {
                    if let Some(l) = self.loads.iter_mut().find(|l| l.req.seq == seq) {
                        if l.state == LoadLane::WaitFill(req.id) {
                            let off = (l.pa.unwrap_or(0) - req.line_addr) as usize;
                            let mut v = 0u64;
                            for i in (0..l.req.width as usize).rev() {
                                v = (v << 8) | data[off + i] as u64;
                            }
                            l.timeline.cache_resp = cycle;
                            l.state = LoadLane::Respond {
                                value: v,
                                at: cycle,
                            };
                        }
                    }
                }
                ReqDest::Walk(walk_id) => {
                    if let Some(w) = self.walks.iter_mut().find(|w| w.id == walk_id) {
                        if w.state == WalkState::WaitMem(req.id) {
                            let pa = pte_addr(teesec_isa::vm::PhysAddr(w.table_pa), w.va, w.level);
                            let off = (pa.0 - req.line_addr) as usize;
                            let mut v = 0u64;
                            for i in (0..8).rev() {
                                v = (v << 8) | data[off + i] as u64;
                            }
                            w.state = WalkState::HavePte(Pte(v));
                        }
                    }
                }
                ReqDest::Prefetch => {}
                ReqDest::StoreDrain => {
                    if self.drain_state == DrainState::WaitFill(req.id) {
                        // Write-allocate completed: merge the store.
                        if let Some(e) = self.store_buffer.front().copied() {
                            self.perform_store_write(e, mem);
                            self.store_buffer.pop_front();
                        }
                        self.drain_state = DrainState::Probe;
                    }
                }
            }
            if self.cfg.lfb_deallocate_on_complete {
                if let Some(idx) = req.lfb_idx {
                    self.lfb.invalidate_entry(idx);
                }
            }
        }
        let _ = csr;
    }

    // ---- page-table walker ---------------------------------------------

    fn start_walk(&mut self, va: VirtAddr, satp: Satp, access: AccessKind) -> u64 {
        self.next_walk_id += 1;
        let id = self.next_walk_id;
        self.walks.push(Walk {
            id,
            va,
            level: SV39_LEVELS - 1,
            table_pa: satp.root_pa(),
            state: WalkState::Lookup,
            access,
            outcome: None,
        });
        id
    }

    fn advance_walks(
        &mut self,
        cycle: u64,
        priv_level: PrivLevel,
        domain: Domain,
        csr: &mut CsrFile,
        mem: &mut Memory,
        trace: &mut Trace,
    ) {
        let mut new_reqs: Vec<MemReq> = Vec::new();
        let line_size = self.l1d.line_size();
        for wi in 0..self.walks.len() {
            if self.walks[wi].outcome.is_some() {
                continue;
            }
            loop {
                let (state, level, table_pa, va, access) = {
                    let w = &self.walks[wi];
                    (w.state, w.level, w.table_pa, w.va, w.access)
                };
                match state {
                    WalkState::WaitMem(_) => break,
                    WalkState::Lookup => {
                        let paddr = pte_addr(teesec_isa::vm::PhysAddr(table_pa), va, level);
                        if let Some(pte) = self.ptw_cache.lookup(paddr.0) {
                            self.walks[wi].state = WalkState::HavePte(pte);
                            continue;
                        }
                        // XiangShan: PMP-check the refill address before
                        // creating the request; if denied, no request at all.
                        let ptw_denied =
                            !csr.pmp
                                .allows(paddr.0, 8, AccessKind::Read, PrivLevel::Supervisor);
                        if self.cfg.effective_ptw_precheck() && ptw_denied {
                            self.walks[wi].outcome =
                                Some(WalkOutcome::Fault(access_fault(access, va.0)));
                            break;
                        }
                        // Clear-illegal-data-returns (Table 4): the check
                        // still runs in parallel, but a denied response is
                        // zeroed before it reaches any buffer.
                        let zero_fill =
                            ptw_denied && self.cfg.mitigations.clear_illegal_data_returns;
                        // Issue the implicit PTE fetch.
                        let line_addr = paddr.0 & !(line_size - 1);
                        let id = self.alloc_req_id();
                        let (lfb_idx, fill_l1d, latency) = match self.cfg.ptw_request_path {
                            PtwRequestPath::ViaL1d => {
                                if self.l1d.contains(paddr.0) {
                                    // L1D hit: short latency, no fill.
                                    (None, false, self.cfg.l1_hit_latency)
                                } else {
                                    let lat = self.cfg.l2_latency
                                        + if self.l2.contains(line_addr) {
                                            0
                                        } else {
                                            self.cfg.mem_latency
                                        };
                                    // The BOOM path: the walk allocates an
                                    // LFB entry and fills the L1D — enclave
                                    // data lands in both (case D2).
                                    match self.lfb.allocate(line_addr, FillPurpose::PageWalk) {
                                        Some(idx) => (Some(idx), true, lat),
                                        None => break, // structural stall; retry next tick
                                    }
                                }
                            }
                            PtwRequestPath::DirectToL2 => {
                                let lat = self.cfg.l2_latency
                                    + if self.l2.contains(line_addr) {
                                        0
                                    } else {
                                        self.cfg.mem_latency
                                    };
                                (None, false, lat)
                            }
                        };
                        csr.hpc_bump(HpcEvent::PageWalk, domain);
                        trace.record(TraceEvent {
                            cycle,
                            priv_level,
                            domain,
                            pc: None,
                            structure: Structure::Hpc,
                            kind: TraceEventKind::CounterBump {
                                event: HpcEvent::PageWalk,
                            },
                        });
                        new_reqs.push(MemReq {
                            id,
                            line_addr,
                            purpose: FillPurpose::PageWalk,
                            complete_at: cycle + latency,
                            lfb_idx,
                            dest: ReqDest::Walk(self.walks[wi].id),
                            zero_fill,
                            fill_l1d: fill_l1d && !zero_fill,
                        });
                        self.walks[wi].state = WalkState::WaitMem(id);
                        break;
                    }
                    WalkState::HavePte(pte) => {
                        let paddr = pte_addr(teesec_isa::vm::PhysAddr(table_pa), va, level);
                        self.ptw_cache.insert(paddr.0, pte, domain);
                        trace.record(TraceEvent {
                            cycle,
                            priv_level,
                            domain,
                            pc: None,
                            structure: Structure::PtwCache,
                            kind: TraceEventKind::Write {
                                index: paddr.0,
                                value: pte.0,
                                tag: Some(level as u64),
                            },
                        });
                        if !pte.valid() {
                            self.walks[wi].outcome =
                                Some(WalkOutcome::Fault(page_fault(access, va.0)));
                            break;
                        }
                        if pte.is_leaf() {
                            if level != 0 {
                                // Superpages are not produced by the model's
                                // proxy kernel; treat as a page fault.
                                self.walks[wi].outcome =
                                    Some(WalkOutcome::Fault(page_fault(access, va.0)));
                                break;
                            }
                            self.walks[wi].outcome = Some(WalkOutcome::Translated(pte));
                            break;
                        }
                        if level == 0 {
                            self.walks[wi].outcome =
                                Some(WalkOutcome::Fault(page_fault(access, va.0)));
                            break;
                        }
                        self.walks[wi].level = level - 1;
                        self.walks[wi].table_pa = pte.pa().0;
                        self.walks[wi].state = WalkState::Lookup;
                        // Next level proceeds on a later tick (one level per
                        // cycle when PTW-cache hits, otherwise memory-bound).
                        break;
                    }
                }
            }
        }
        self.mem_reqs.extend(new_reqs);
        let _ = mem;
    }

    fn walk_outcome(&self, walk_id: u64) -> Option<WalkOutcome> {
        self.walks
            .iter()
            .find(|w| w.id == walk_id)
            .and_then(|w| w.outcome)
    }

    // ---- loads ----------------------------------------------------------

    fn advance_loads(
        &mut self,
        cycle: u64,
        priv_level: PrivLevel,
        domain: Domain,
        csr: &mut CsrFile,
        mem: &mut Memory,
        trace: &mut Trace,
    ) {
        for i in 0..self.loads.len() {
            match self.loads[i].state {
                LoadLane::Done | LoadLane::WaitFill(_) => {}
                LoadLane::Respond { value, at } => {
                    if at <= cycle {
                        let l = &mut self.loads[i];
                        let mut value = value;
                        if l.exception.is_some() && self.cfg.mitigations.clear_illegal_data_returns
                        {
                            value = 0;
                        }
                        if !l.squashed {
                            self.completions.push(LoadCompletion {
                                seq: l.req.seq,
                                value,
                                exception: l.exception,
                                pa: l.pa,
                                timeline: l.timeline,
                            });
                        }
                        l.state = LoadLane::Done;
                    }
                }
                LoadLane::Translate => {
                    let req = self.loads[i].req;
                    match self.translate(
                        req.vaddr,
                        req.priv_level,
                        req.sum,
                        req.satp,
                        AccessKind::Read,
                        cycle,
                        domain,
                        csr,
                        trace,
                    ) {
                        TranslateOutcome::Done(pa) => {
                            self.loads[i].pa = Some(pa);
                            self.loads[i].timeline.tlb_resp = cycle;
                            self.loads[i].state = LoadLane::Access;
                            // PMP check + access happen on the next tick
                            // (same-cycle in hardware terms; the +0/+1 skew
                            // is uniform across configurations).
                            self.try_access(i, cycle, priv_level, domain, csr, mem, trace);
                        }
                        TranslateOutcome::Fault(e) => {
                            self.loads[i].timeline.tlb_resp = cycle;
                            self.loads[i].exception = Some(e);
                            self.loads[i].state = LoadLane::Respond {
                                value: 0,
                                at: cycle + 1,
                            };
                        }
                        TranslateOutcome::Walking(id) => {
                            self.loads[i].state = LoadLane::Walking(id);
                        }
                    }
                }
                LoadLane::Walking(walk_id) => {
                    if let Some(outcome) = self.walk_outcome(walk_id) {
                        let req = self.loads[i].req;
                        match outcome {
                            WalkOutcome::Translated(pte) => {
                                self.dtlb.insert(VirtAddr(req.vaddr), pte, domain);
                                trace.record(TraceEvent {
                                    cycle,
                                    priv_level,
                                    domain,
                                    pc: None,
                                    structure: Structure::Dtlb,
                                    kind: TraceEventKind::Write {
                                        index: req.vaddr >> 12,
                                        value: pte.0,
                                        tag: None,
                                    },
                                });
                                if pte.permits(AccessKind::Read, req.priv_level, req.sum) {
                                    let pa = pte.pa().0 | (req.vaddr & 0xFFF);
                                    self.loads[i].pa = Some(pa);
                                    self.loads[i].timeline.tlb_resp = cycle;
                                    self.loads[i].state = LoadLane::Access;
                                    self.try_access(i, cycle, priv_level, domain, csr, mem, trace);
                                } else {
                                    self.loads[i].timeline.tlb_resp = cycle;
                                    self.loads[i].exception =
                                        Some(Exception::LoadPageFault(req.vaddr));
                                    self.loads[i].state = LoadLane::Respond {
                                        value: 0,
                                        at: cycle + 1,
                                    };
                                }
                            }
                            WalkOutcome::Fault(e) => {
                                self.loads[i].timeline.tlb_resp = cycle;
                                self.loads[i].exception = Some(e);
                                self.loads[i].state = LoadLane::Respond {
                                    value: 0,
                                    at: cycle + 1,
                                };
                            }
                        }
                    }
                }
                LoadLane::Access => {
                    // Fast path: a stalled load's retry verdict cannot
                    // change until some verdict input does (every such
                    // change bumps `epoch`), and a failed attempt has no
                    // side effects — skip the redundant re-probe.
                    if self.fast_path && self.loads[i].attempt_epoch == self.epoch {
                        self.retry_skips += 1;
                    } else {
                        if self.fast_path {
                            self.retry_checks += 1;
                        }
                        self.try_access(i, cycle, priv_level, domain, csr, mem, trace);
                    }
                }
            }
        }
    }

    /// PMP check + store-buffer probe + cache access for load `i`, whose
    /// physical address is resolved.
    #[allow(clippy::too_many_arguments)]
    fn try_access(
        &mut self,
        i: usize,
        cycle: u64,
        priv_level: PrivLevel,
        domain: Domain,
        csr: &mut CsrFile,
        mem: &mut Memory,
        trace: &mut Trace,
    ) {
        self.loads[i].attempt_epoch = self.epoch;
        let req = self.loads[i].req;
        let pa = self.loads[i].pa.expect("access stage requires a PA");
        if !pa.is_multiple_of(req.width) {
            self.loads[i].exception = Some(Exception::LoadMisaligned(req.vaddr));
            self.loads[i].state = LoadLane::Respond {
                value: 0,
                at: cycle + 1,
            };
            return;
        }
        let decision = csr
            .pmp
            .check(pa, req.width, AccessKind::Read, req.priv_level);
        self.loads[i].timeline.perm_check = cycle;
        let faulted = !decision.allowed;
        if faulted {
            self.loads[i].exception = Some(Exception::LoadAccessFault(req.vaddr));
        }
        if faulted && self.cfg.effective_pmp_check() == PmpCheckTiming::BeforeAccess {
            // Serialized check: the access never reaches the hierarchy.
            self.loads[i].state = LoadLane::Respond {
                value: 0,
                at: cycle + 1,
            };
            return;
        }

        // Store buffer: committed stores not yet in the L1D.
        if let Some(sb_hit) = self.probe_store_buffer(pa, req.width) {
            match sb_hit {
                SbProbe::Forward(value) => {
                    csr.hpc_bump(HpcEvent::StoreToLoadForward, domain);
                    trace.record(TraceEvent {
                        cycle,
                        priv_level,
                        domain,
                        pc: None,
                        structure: Structure::Hpc,
                        kind: TraceEventKind::CounterBump {
                            event: HpcEvent::StoreToLoadForward,
                        },
                    });
                    // The forward itself is an observable store-buffer read
                    // (the checker uses it to classify D8 by mechanism).
                    trace.record(TraceEvent {
                        cycle,
                        priv_level,
                        domain,
                        pc: None,
                        structure: Structure::StoreBuffer,
                        kind: TraceEventKind::Read { index: pa, value },
                    });
                    // XiangShan forwards even to faulting loads (case D8).
                    self.loads[i].timeline.cache_resp = cycle + 1;
                    self.loads[i].timeline.sb_forward = true;
                    self.loads[i].state = LoadLane::Respond {
                        value,
                        at: cycle + 1,
                    };
                    return;
                }
                SbProbe::Conflict => {
                    // Overlapping but unforwardable: wait for drain.
                    return;
                }
            }
        }

        self.loads[i].timeline.cache_req = cycle;
        if self.l1d.contains(pa) {
            let value = self.l1d.read(pa, req.width).expect("hit read");
            self.loads[i].timeline.cache_resp = cycle + self.cfg.l1_hit_latency;
            self.loads[i].state = LoadLane::Respond {
                value,
                at: cycle + self.cfg.l1_hit_latency,
            };
            return;
        }

        // L1D miss (counted once per load, however many retry ticks the
        // fill takes).
        if !self.loads[i].miss_counted {
            self.loads[i].miss_counted = true;
            csr.hpc_bump(HpcEvent::L1dMiss, domain);
            trace.record(TraceEvent {
                cycle,
                priv_level,
                domain,
                pc: None,
                structure: Structure::Hpc,
                kind: TraceEventKind::CounterBump {
                    event: HpcEvent::L1dMiss,
                },
            });
        }
        if faulted && self.cfg.faulting_miss_policy == FaultingMissPolicy::FakeHitZero {
            // XiangShan: the slow miss path leaves time to observe the
            // fault — respond with a fake hit of zeros, no L2 request.
            self.loads[i].timeline.fake_hit = true;
            self.loads[i].timeline.cache_resp = cycle + self.cfg.l1_hit_latency;
            self.loads[i].state = LoadLane::Respond {
                value: 0,
                at: cycle + self.cfg.l1_hit_latency,
            };
            return;
        }
        let line_addr = pa & !(self.l1d.line_size() - 1);
        if self.lfb.pending_for(line_addr).is_some() {
            // Merge with the outstanding fill: retry until it lands.
            return;
        }
        let Some(lfb_idx) = self.lfb.allocate(line_addr, FillPurpose::Demand) else {
            return; // all MSHRs pending: structural stall
        };
        let latency = self.cfg.l2_latency
            + if self.l2.contains(line_addr) {
                0
            } else {
                self.cfg.mem_latency
            };
        let id = self.alloc_req_id();
        let zero_fill = faulted && self.cfg.mitigations.clear_illegal_data_returns;
        self.mem_reqs.push(MemReq {
            id,
            line_addr,
            purpose: FillPurpose::Demand,
            complete_at: cycle + latency,
            lfb_idx: Some(lfb_idx),
            dest: ReqDest::Load(req.seq),
            zero_fill,
            fill_l1d: !zero_fill,
        });
        self.loads[i].state = LoadLane::WaitFill(id);
        self.maybe_prefetch(line_addr, req.priv_level, cycle, csr);
        let _ = mem;
    }

    fn maybe_prefetch(
        &mut self,
        demand_line: u64,
        priv_level: PrivLevel,
        cycle: u64,
        csr: &CsrFile,
    ) {
        if self.cfg.l1d_prefetcher != PrefetcherKind::NextLine {
            return;
        }
        let next = demand_line + self.l1d.line_size();
        if self.l1d.contains(next) || self.lfb.pending_for(next).is_some() {
            return;
        }
        // The hardware prefetcher performs no permission checks unless the
        // (mitigating) configuration says so — this is what enables D1.
        if self.cfg.prefetcher_pmp_check
            && !csr
                .pmp
                .allows(next, self.l1d.line_size(), AccessKind::Read, priv_level)
        {
            return;
        }
        let Some(lfb_idx) = self.lfb.allocate(next, FillPurpose::Prefetch) else {
            return;
        };
        let latency = self.cfg.l2_latency
            + if self.l2.contains(next) {
                0
            } else {
                self.cfg.mem_latency
            };
        let id = self.alloc_req_id();
        self.mem_reqs.push(MemReq {
            id,
            line_addr: next,
            purpose: FillPurpose::Prefetch,
            complete_at: cycle + latency,
            lfb_idx: Some(lfb_idx),
            dest: ReqDest::Prefetch,
            zero_fill: false,
            fill_l1d: true,
        });
    }

    fn probe_store_buffer(&self, pa: u64, width: u64) -> Option<SbProbe> {
        for e in self.store_buffer.iter().rev() {
            let overlap = pa < e.pa + e.width && e.pa < pa + width;
            if !overlap {
                continue;
            }
            let exact = e.pa == pa && e.width == width;
            if exact && self.cfg.store_buffer_forwarding && self.cfg.store_buffer_entries > 0 {
                return Some(SbProbe::Forward(e.value));
            }
            return Some(SbProbe::Conflict);
        }
        None
    }

    // ---- store-address translations --------------------------------------

    fn advance_xlates(
        &mut self,
        cycle: u64,
        priv_level: PrivLevel,
        domain: Domain,
        csr: &mut CsrFile,
        trace: &mut Trace,
    ) {
        for i in 0..self.xlates.len() {
            match self.xlates[i].state {
                XlateState::Done => {}
                XlateState::Translate => {
                    let req = self.xlates[i].req;
                    match self.translate(
                        req.vaddr,
                        req.priv_level,
                        req.sum,
                        req.satp,
                        AccessKind::Write,
                        cycle,
                        domain,
                        csr,
                        trace,
                    ) {
                        TranslateOutcome::Done(pa) => {
                            self.finish_xlate(i, Some(pa), None, csr);
                        }
                        TranslateOutcome::Fault(e) => {
                            self.finish_xlate(i, None, Some(e), csr);
                        }
                        TranslateOutcome::Walking(id) => {
                            self.xlates[i].state = XlateState::Walking(id);
                        }
                    }
                }
                XlateState::Walking(walk_id) => {
                    if let Some(outcome) = self.walk_outcome(walk_id) {
                        let req = self.xlates[i].req;
                        match outcome {
                            WalkOutcome::Translated(pte) => {
                                self.dtlb.insert(VirtAddr(req.vaddr), pte, domain);
                                trace.record(TraceEvent {
                                    cycle,
                                    priv_level,
                                    domain,
                                    pc: None,
                                    structure: Structure::Dtlb,
                                    kind: TraceEventKind::Write {
                                        index: req.vaddr >> 12,
                                        value: pte.0,
                                        tag: None,
                                    },
                                });
                                if pte.permits(AccessKind::Write, req.priv_level, req.sum) {
                                    let pa = pte.pa().0 | (req.vaddr & 0xFFF);
                                    self.finish_xlate(i, Some(pa), None, csr);
                                } else {
                                    self.finish_xlate(
                                        i,
                                        None,
                                        Some(Exception::StorePageFault(req.vaddr)),
                                        csr,
                                    );
                                }
                            }
                            WalkOutcome::Fault(e) => {
                                let e = match e {
                                    Exception::LoadPageFault(a) => Exception::StorePageFault(a),
                                    Exception::LoadAccessFault(a) => Exception::StoreAccessFault(a),
                                    other => other,
                                };
                                self.finish_xlate(i, None, Some(e), csr);
                            }
                        }
                    }
                }
            }
        }
    }

    fn finish_xlate(
        &mut self,
        i: usize,
        pa: Option<u64>,
        mut exception: Option<Exception>,
        csr: &CsrFile,
    ) {
        let req = self.xlates[i].req;
        if let Some(pa) = pa {
            if pa % req.width != 0 {
                exception = Some(Exception::StoreMisaligned(req.vaddr));
            } else if !csr
                .pmp
                .allows(pa, req.width, AccessKind::Write, req.priv_level)
            {
                exception = Some(Exception::StoreAccessFault(req.vaddr));
            }
        }
        let x = &mut self.xlates[i];
        x.pa = pa;
        x.exception = exception;
        x.state = XlateState::Done;
        if !x.squashed {
            self.xlate_completions.push(XlateCompletion {
                seq: req.seq,
                pa,
                exception,
            });
        }
    }

    // ---- shared translation front end ------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn translate(
        &mut self,
        vaddr: u64,
        priv_level: PrivLevel,
        sum: bool,
        satp: Satp,
        access: AccessKind,
        cycle: u64,
        domain: Domain,
        csr: &mut CsrFile,
        trace: &mut Trace,
    ) -> TranslateOutcome {
        if priv_level == PrivLevel::Machine || !satp.is_sv39() {
            return TranslateOutcome::Done(vaddr);
        }
        let va = VirtAddr(vaddr);
        if !va.is_canonical() {
            return TranslateOutcome::Fault(page_fault(access, vaddr));
        }
        if let Some(pte) = self.dtlb.lookup(va) {
            return if pte.permits(access, priv_level, sum) {
                TranslateOutcome::Done(pte.pa().0 | va.page_offset())
            } else {
                TranslateOutcome::Fault(page_fault(access, vaddr))
            };
        }
        csr.hpc_bump(HpcEvent::DtlbMiss, domain);
        trace.record(TraceEvent {
            cycle,
            priv_level,
            domain,
            pc: None,
            structure: Structure::Hpc,
            kind: TraceEventKind::CounterBump {
                event: HpcEvent::DtlbMiss,
            },
        });
        TranslateOutcome::Walking(self.start_walk(va, satp, access))
    }

    // ---- committed store draining -----------------------------------------

    fn drain_stores(
        &mut self,
        cycle: u64,
        _priv_level: PrivLevel,
        domain: Domain,
        mem: &mut Memory,
        trace: &mut Trace,
    ) {
        if self.drain_state != DrainState::Probe {
            return;
        }
        let Some(e) = self.store_buffer.front().copied() else {
            return;
        };
        if self.l1d.contains(e.pa) {
            self.perform_store_write(e, mem);
            self.store_buffer.pop_front();
            self.note_change();
            return;
        }
        // Write-allocate: fetch the old line through the LFB first. The
        // fetched line is the *previous* memory content — when the security
        // monitor scrubs a destroyed enclave this is enclave secret data,
        // and it persists in the LFB afterwards (case D3).
        let line_addr = e.pa & !(self.l1d.line_size() - 1);
        if self.lfb.pending_for(line_addr).is_some() {
            return;
        }
        let Some(lfb_idx) = self.lfb.allocate(line_addr, FillPurpose::StoreRefill) else {
            return;
        };
        let latency = self.cfg.l2_latency
            + if self.l2.contains(line_addr) {
                0
            } else {
                self.cfg.mem_latency
            };
        let id = self.alloc_req_id();
        self.mem_reqs.push(MemReq {
            id,
            line_addr,
            purpose: FillPurpose::StoreRefill,
            complete_at: cycle + latency,
            lfb_idx: Some(lfb_idx),
            dest: ReqDest::StoreDrain,
            zero_fill: false,
            fill_l1d: true,
        });
        self.drain_state = DrainState::WaitFill(id);
        let _ = (cycle, domain, trace);
    }

    fn perform_store_write(&mut self, e: StoreBufferEntry, mem: &mut Memory) {
        // Write-through: L1D (if present), L2 (if present), and memory.
        self.l1d.write(e.pa, e.value, e.width);
        if self.l2.contains(e.pa) {
            self.l2.write(e.pa, e.value, e.width);
        }
        mem.write_uint(e.pa, e.value, e.width);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SbProbe {
    Forward(u64),
    Conflict,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TranslateOutcome {
    Done(u64),
    Fault(Exception),
    Walking(u64),
}

fn page_fault(access: AccessKind, addr: u64) -> Exception {
    match access {
        AccessKind::Read => Exception::LoadPageFault(addr),
        AccessKind::Write => Exception::StorePageFault(addr),
        AccessKind::Execute => Exception::InstPageFault(addr),
    }
}

fn access_fault(access: AccessKind, addr: u64) -> Exception {
    match access {
        AccessKind::Read => Exception::LoadAccessFault(addr),
        AccessKind::Write => Exception::StoreAccessFault(addr),
        AccessKind::Execute => Exception::InstAccessFault(addr),
    }
}

fn flush_event(cycle: u64, p: PrivLevel, d: Domain, s: Structure) -> TraceEvent {
    TraceEvent {
        cycle,
        priv_level: p,
        domain: d,
        pc: None,
        structure: s,
        kind: TraceEventKind::Flush,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_isa::pmp::PmpCfg;

    fn setup(cfg: CoreConfig) -> (Lsu, CsrFile, Memory, Trace) {
        let lsu = Lsu::new(&cfg);
        let csr = CsrFile::new(cfg.hpm_counters);
        let mem = Memory::new();
        let trace = Trace::new();
        (lsu, csr, mem, trace)
    }

    fn run_until_complete(
        lsu: &mut Lsu,
        csr: &mut CsrFile,
        mem: &mut Memory,
        trace: &mut Trace,
        start: u64,
        max: u64,
    ) -> (Vec<LoadCompletion>, u64) {
        let mut out = Vec::new();
        let mut cycle = start;
        while out.is_empty() && cycle < start + max {
            cycle += 1;
            lsu.tick(
                cycle,
                PrivLevel::Supervisor,
                Domain::Untrusted,
                csr,
                mem,
                trace,
            );
            out = lsu.take_completions();
        }
        (out, cycle)
    }

    fn load_req(seq: u64, addr: u64) -> LoadRequest {
        LoadRequest {
            seq,
            vaddr: addr,
            width: 8,
            priv_level: PrivLevel::Supervisor,
            sum: false,
            satp: Satp::default(),
        }
    }

    #[test]
    fn load_miss_fills_hierarchy_then_hits() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        mem.write_u64(0x8000_1000, 0xAABB_CCDD_EEFF_0011);
        lsu.start_load(load_req(1, 0x8000_1000), 0);
        let (done, c1) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 200);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].value, 0xAABB_CCDD_EEFF_0011);
        assert!(done[0].exception.is_none());
        assert!(lsu.l1d.contains(0x8000_1000));
        // Second access hits: much faster.
        lsu.start_load(load_req(2, 0x8000_1000), c1);
        let (done2, c2) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, c1, 200);
        assert_eq!(done2[0].value, 0xAABB_CCDD_EEFF_0011);
        assert!(c2 - c1 < 8, "hit should be fast, took {}", c2 - c1);
    }

    #[test]
    fn faulting_hit_returns_verbatim_secret_on_parallel_check() {
        // Both BOOM and XiangShan leak a PMP-protected value that is already
        // in the L1D (paper D4).
        for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
            let (mut lsu, mut csr, mut mem, mut trace) = setup(cfg);
            mem.write_u64(0x8040_0000, 0x5EC2_E7DA_7A11_2EAD);
            // Warm the line into L1D with an allowed access (no PMP yet).
            lsu.start_load(load_req(1, 0x8040_0000), 0);
            let (_, c) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 200);
            // Now protect the region.
            csr.pmp
                .program_napot(0, 0x8040_0000, 0x1000, PmpCfg::napot(false, false, false));
            lsu.start_load(load_req(2, 0x8040_0000), c);
            let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, c, 200);
            assert_eq!(
                done[0].value, 0x5EC2_E7DA_7A11_2EAD,
                "secret forwarded transiently"
            );
            assert!(matches!(
                done[0].exception,
                Some(Exception::LoadAccessFault(_))
            ));
        }
    }

    #[test]
    fn faulting_miss_boom_fills_lfb_with_secret() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        mem.write_u64(0x8040_0000, 0x1234_5678_9ABC_DEF0);
        csr.pmp
            .program_napot(0, 0x8040_0000, 0x1000, PmpCfg::napot(false, false, false));
        lsu.start_load(load_req(1, 0x8040_0000), 0);
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 300);
        assert!(matches!(
            done[0].exception,
            Some(Exception::LoadAccessFault(_))
        ));
        // BOOM forwards the miss to L2; secret lands in the LFB and is
        // returned.
        assert_eq!(done[0].value, 0x1234_5678_9ABC_DEF0);
        let lfb_fills: Vec<_> = trace
            .for_structure(Structure::Lfb)
            .filter(|e| matches!(e.kind, TraceEventKind::Fill { .. }))
            .collect();
        assert!(!lfb_fills.is_empty(), "LFB must have been filled");
    }

    #[test]
    fn faulting_miss_xiangshan_fake_hit_returns_zero() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::xiangshan());
        mem.write_u64(0x8040_0000, 0x1234_5678_9ABC_DEF0);
        csr.pmp
            .program_napot(0, 0x8040_0000, 0x1000, PmpCfg::napot(false, false, false));
        lsu.start_load(load_req(1, 0x8040_0000), 0);
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 300);
        assert_eq!(done[0].value, 0, "fake hit returns zeros");
        assert!(done[0].timeline.fake_hit);
        assert!(matches!(
            done[0].exception,
            Some(Exception::LoadAccessFault(_))
        ));
        // And no LFB fill happened.
        assert_eq!(
            trace
                .for_structure(Structure::Lfb)
                .filter(|e| matches!(e.kind, TraceEventKind::Fill { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn serialized_pmp_check_suppresses_access_entirely() {
        let mut cfg = CoreConfig::boom();
        cfg.mitigations.serialize_pmp_check = true;
        let (mut lsu, mut csr, mut mem, mut trace) = setup(cfg);
        mem.write_u64(0x8040_0000, 0x1234);
        csr.pmp
            .program_napot(0, 0x8040_0000, 0x1000, PmpCfg::napot(false, false, false));
        lsu.start_load(load_req(1, 0x8040_0000), 0);
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 300);
        assert_eq!(done[0].value, 0);
        assert_eq!(done[0].timeline.cache_req, 0, "no cache request issued");
        assert!(matches!(
            done[0].exception,
            Some(Exception::LoadAccessFault(_))
        ));
    }

    #[test]
    fn clear_illegal_data_returns_zeroes_hit_value() {
        let mut cfg = CoreConfig::boom();
        cfg.mitigations.clear_illegal_data_returns = true;
        let (mut lsu, mut csr, mut mem, mut trace) = setup(cfg);
        mem.write_u64(0x8040_0000, 0x5555);
        lsu.start_load(load_req(1, 0x8040_0000), 0);
        let (_, c) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 300);
        csr.pmp
            .program_napot(0, 0x8040_0000, 0x1000, PmpCfg::napot(false, false, false));
        lsu.start_load(load_req(2, 0x8040_0000), c);
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, c, 300);
        assert_eq!(done[0].value, 0, "illegal return zeroed");
        assert!(done[0].exception.is_some());
    }

    #[test]
    fn prefetcher_pulls_next_line_without_pmp_check() {
        // Case D1: a demand access near a PMP boundary prefetches the
        // protected next line into the LFB.
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        mem.write_u64(0x8040_0FC0, 0x1111); // accessible last line of page
        mem.write_u64(0x8040_1000, 0xE9C1_A6E5_EC2E_7777); // start of protected page
        csr.pmp
            .program_napot(0, 0x8040_1000, 0x1000, PmpCfg::napot(false, false, false));
        // Default-allow for everything else (Keystone's final PMP entry).
        csr.pmp
            .program_napot(1, 0, 1 << 48, PmpCfg::napot(true, true, true));
        lsu.start_load(load_req(1, 0x8040_0FC0), 0);
        let (done, mut c) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 300);
        assert!(done[0].exception.is_none());
        // Let the prefetch land.
        for _ in 0..200 {
            c += 1;
            lsu.tick(
                c,
                PrivLevel::Supervisor,
                Domain::Untrusted,
                &mut csr,
                &mut mem,
                &mut trace,
            );
        }
        let prefetch_fill = trace.for_structure(Structure::Lfb).any(|e| {
            matches!(
                &e.kind,
                TraceEventKind::Fill {
                    addr: 0x8040_1000,
                    purpose: FillPurpose::Prefetch,
                    ..
                }
            )
        });
        assert!(
            prefetch_fill,
            "prefetcher must fill the protected line into the LFB"
        );
    }

    #[test]
    fn xiangshan_has_no_prefetcher() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::xiangshan());
        mem.write_u64(0x8040_0FC0, 0x1111);
        lsu.start_load(load_req(1, 0x8040_0FC0), 0);
        let (_, mut c) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 300);
        for _ in 0..200 {
            c += 1;
            lsu.tick(
                c,
                PrivLevel::Supervisor,
                Domain::Untrusted,
                &mut csr,
                &mut mem,
                &mut trace,
            );
        }
        assert!(!trace.for_structure(Structure::Lfb).any(|e| {
            matches!(
                &e.kind,
                TraceEventKind::Fill {
                    purpose: FillPurpose::Prefetch,
                    ..
                }
            )
        }));
    }

    #[test]
    fn store_buffer_forwards_to_faulting_load_on_xiangshan() {
        // Case D8.
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::xiangshan());
        // A committed enclave store sits in the store buffer.
        lsu.commit_store(
            0x8040_0008,
            0xFEED_FACE,
            8,
            Domain::Enclave(0),
            1,
            &mut trace,
            PrivLevel::Supervisor,
        );
        // Protect the region, then issue a host load to the same address.
        csr.pmp
            .program_napot(0, 0x8040_0000, 0x1000, PmpCfg::napot(false, false, false));
        lsu.start_load(load_req(7, 0x8040_0008), 1);
        // One tick is enough for a forward (but drain may consume the entry
        // first; forwarding wins because probe happens during the same tick).
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 1, 50);
        assert!(matches!(
            done[0].exception,
            Some(Exception::LoadAccessFault(_))
        ));
        assert!(done[0].timeline.sb_forward, "store buffer must forward");
        assert_eq!(done[0].value, 0xFEED_FACE);
    }

    #[test]
    fn boom_does_not_forward_from_drain_queue() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        lsu.commit_store(
            0x8040_0008,
            0xFEED_FACE,
            8,
            Domain::Enclave(0),
            1,
            &mut trace,
            PrivLevel::Supervisor,
        );
        csr.pmp
            .program_napot(0, 0x8040_0000, 0x1000, PmpCfg::napot(false, false, false));
        lsu.start_load(load_req(7, 0x8040_0008), 1);
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 1, 500);
        assert!(!done[0].timeline.sb_forward);
        // The load waited for the drain and then took the normal (faulting)
        // path.
        assert!(matches!(
            done[0].exception,
            Some(Exception::LoadAccessFault(_))
        ));
    }

    #[test]
    fn store_drain_write_allocate_pulls_old_line_into_lfb() {
        // The D3 mechanism: scrubbing stores fetch the old secret line.
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        mem.write_u64(0x8040_0000, 0x01D5_EC2E_7C0F_FEE5);
        lsu.commit_store(
            0x8040_0000,
            0,
            8,
            Domain::SecurityMonitor,
            1,
            &mut trace,
            PrivLevel::Machine,
        );
        let mut c = 1;
        while lsu.store_buffer_len() > 0 && c < 500 {
            c += 1;
            lsu.tick(
                c,
                PrivLevel::Machine,
                Domain::SecurityMonitor,
                &mut csr,
                &mut mem,
                &mut trace,
            );
        }
        assert_eq!(lsu.store_buffer_len(), 0);
        assert_eq!(mem.read_u64(0x8040_0000), 0, "store landed");
        // The LFB residual entry holds the OLD line.
        let residual = lsu
            .lfb
            .entries()
            .iter()
            .find(|e| e.valid && e.line_addr == 0x8040_0000)
            .expect("residual LFB entry");
        let mut old = [0u8; 8];
        old.copy_from_slice(&residual.data[0..8]);
        assert_eq!(
            u64::from_le_bytes(old),
            0x01D5_EC2E_7C0F_FEE5,
            "old secret persists in LFB"
        );
    }

    #[test]
    fn sv39_translation_through_real_page_tables() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        // Build a 3-level table mapping VA 0x4000_0000 -> PA 0x8020_0000.
        let root = 0x8100_0000u64;
        let l1 = 0x8100_1000u64;
        let l0 = 0x8100_2000u64;
        let va = VirtAddr(0x4000_0000);
        mem.write_u64(
            root + va.vpn(2) * 8,
            Pte::table(teesec_isa::vm::PhysAddr(l1)).0,
        );
        mem.write_u64(
            l1 + va.vpn(1) * 8,
            Pte::table(teesec_isa::vm::PhysAddr(l0)).0,
        );
        mem.write_u64(
            l0 + va.vpn(0) * 8,
            Pte::leaf(teesec_isa::vm::PhysAddr(0x8020_0000), Pte::R | Pte::W).0,
        );
        mem.write_u64(0x8020_0018, 0xCAFE_F00D);
        let req = LoadRequest {
            seq: 1,
            vaddr: 0x4000_0018,
            width: 8,
            priv_level: PrivLevel::Supervisor,
            sum: false,
            satp: Satp::sv39(root),
        };
        lsu.start_load(req, 0);
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 1000);
        assert_eq!(done[0].value, 0xCAFE_F00D);
        assert_eq!(done[0].pa, Some(0x8020_0018));
        // TLB now holds the mapping; a second access is fast.
        assert!(lsu.dtlb.lookup(VirtAddr(0x4000_0000)).is_some());
    }

    #[test]
    fn ptw_boom_fills_lfb_from_poisoned_root() {
        // Case D2: SATP points into PMP-protected memory; the walk's first
        // access fills the LFB with the protected line on BOOM.
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        let enclave_pa = 0x8040_0000u64;
        mem.write_u64(enclave_pa, 0xE9C1_A6E5);
        csr.pmp
            .program_napot(0, enclave_pa, 0x1000, PmpCfg::napot(false, false, false));
        let req = LoadRequest {
            seq: 1,
            vaddr: 0x4000_0000,
            width: 8,
            priv_level: PrivLevel::Supervisor,
            sum: false,
            satp: Satp::sv39(enclave_pa),
        };
        lsu.start_load(req, 0);
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 1000);
        // The walk reads a garbage PTE and faults...
        assert!(done[0].exception.is_some());
        // ...but the enclave line was already pulled into the LFB.
        let leaked = trace.for_structure(Structure::Lfb).any(|e| {
            matches!(&e.kind, TraceEventKind::Fill { addr, purpose: FillPurpose::PageWalk, .. } if *addr == enclave_pa)
        });
        assert!(
            leaked,
            "BOOM PTW must fill LFB from poisoned root page table"
        );
    }

    #[test]
    fn ptw_xiangshan_precheck_creates_no_request() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::xiangshan());
        let enclave_pa = 0x8040_0000u64;
        mem.write_u64(enclave_pa, 0xE9C1_A6E5);
        csr.pmp
            .program_napot(0, enclave_pa, 0x1000, PmpCfg::napot(false, false, false));
        let req = LoadRequest {
            seq: 1,
            vaddr: 0x4000_0000,
            width: 8,
            priv_level: PrivLevel::Supervisor,
            sum: false,
            satp: Satp::sv39(enclave_pa),
        };
        lsu.start_load(req, 0);
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 1000);
        assert!(matches!(
            done[0].exception,
            Some(Exception::LoadAccessFault(_))
        ));
        // No LFB or L2 fill of the enclave line.
        assert!(!trace.for_structure(Structure::Lfb).any(|e| {
            matches!(&e.kind, TraceEventKind::Fill { addr, .. } if *addr == enclave_pa)
        }));
        assert!(!trace.for_structure(Structure::L2).any(|e| {
            matches!(&e.kind, TraceEventKind::Fill { addr, .. } if *addr == enclave_pa)
        }));
    }

    #[test]
    fn squashed_load_still_fills_cache_but_does_not_complete() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        mem.write_u64(0x8000_2000, 0x77);
        lsu.start_load(load_req(9, 0x8000_2000), 0);
        lsu.squash_after(5);
        let mut c = 0;
        let mut done = Vec::new();
        while c < 300 {
            c += 1;
            lsu.tick(
                c,
                PrivLevel::Supervisor,
                Domain::Untrusted,
                &mut csr,
                &mut mem,
                &mut trace,
            );
            done.extend(lsu.take_completions());
        }
        assert!(done.is_empty(), "squashed load must not complete");
        assert!(
            lsu.l1d.contains(0x8000_2000),
            "fill proceeds regardless of squash"
        );
    }

    #[test]
    fn misaligned_load_faults_without_access() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        lsu.start_load(load_req(1, 0x8000_1003), 0);
        let (done, _) = run_until_complete(&mut lsu, &mut csr, &mut mem, &mut trace, 0, 50);
        assert!(matches!(
            done[0].exception,
            Some(Exception::LoadMisaligned(_))
        ));
        assert_eq!(done[0].timeline.cache_req, 0);
    }

    #[test]
    fn store_xlate_reports_pmp_fault() {
        let (mut lsu, mut csr, mut mem, mut trace) = setup(CoreConfig::boom());
        csr.pmp
            .program_napot(0, 0x8040_0000, 0x1000, PmpCfg::napot(true, false, false));
        lsu.start_store_xlate(XlateRequest {
            seq: 1,
            vaddr: 0x8040_0000,
            width: 8,
            priv_level: PrivLevel::Supervisor,
            sum: false,
            satp: Satp::default(),
        });
        let mut c = 0;
        let mut done = Vec::new();
        while done.is_empty() && c < 50 {
            c += 1;
            lsu.tick(
                c,
                PrivLevel::Supervisor,
                Domain::Untrusted,
                &mut csr,
                &mut mem,
                &mut trace,
            );
            done = lsu.take_xlate_completions();
        }
        assert!(matches!(
            done[0].exception,
            Some(Exception::StoreAccessFault(_))
        ));
    }
}
