//! The control-and-status register file, including the PMP unit and the
//! hardware performance counters.

use serde::{Deserialize, Serialize};

use teesec_isa::csr::{self, CsrAddr, Mstatus, Satp};
use teesec_isa::pmp::{PmpCfg, PmpSet};
use teesec_isa::priv_level::PrivLevel;

use crate::trace::{Domain, HpcEvent};

/// Why a CSR access was rejected (raised as an illegal-instruction
/// exception by the core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CsrError {
    /// The executing privilege level is below the CSR's requirement, or a
    /// counter is blocked by `mcounteren`/`scounteren`.
    NotPrivileged,
    /// Write to a read-only CSR.
    ReadOnly,
    /// The CSR is not implemented in this model.
    Nonexistent,
}

/// The architectural CSR state of the core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsrFile {
    /// Machine status.
    pub mstatus: Mstatus,
    /// Machine trap vector.
    pub mtvec: u64,
    /// Machine exception PC.
    pub mepc: u64,
    /// Machine trap cause.
    pub mcause: u64,
    /// Machine trap value.
    pub mtval: u64,
    /// Machine scratch.
    pub mscratch: u64,
    /// Machine interrupt enable.
    pub mie: u64,
    /// Machine interrupt pending.
    pub mip: u64,
    /// Counter-enable for S/U access to `cycle`/`instret`/`hpmcounterN`.
    pub mcounteren: u64,
    /// Supervisor trap vector.
    pub stvec: u64,
    /// Supervisor exception PC.
    pub sepc: u64,
    /// Supervisor trap cause.
    pub scause: u64,
    /// Supervisor trap value.
    pub stval: u64,
    /// Supervisor scratch.
    pub sscratch: u64,
    /// Supervisor counter enable.
    pub scounteren: u64,
    /// Address translation and protection.
    pub satp: Satp,
    /// The PMP unit.
    pub pmp: PmpSet,
    /// Cycle counter.
    pub cycle: u64,
    /// Instructions-retired counter.
    pub instret: u64,
    /// Programmable HPM counters (`mhpmcounter3 + i`).
    pub hpm: Vec<u64>,
    /// Per-counter record of the domains whose activity contributed since
    /// the last reset — model-side ground truth used by tests; the checker
    /// derives the same information from trace events.
    pub hpm_contributors: Vec<Vec<Domain>>,
}

impl CsrFile {
    /// Creates a reset CSR file with `hpm_counters` programmable counters.
    pub fn new(hpm_counters: usize) -> CsrFile {
        CsrFile {
            mstatus: Mstatus::default(),
            mtvec: 0,
            mepc: 0,
            mcause: 0,
            mtval: 0,
            mscratch: 0,
            mie: 0,
            mip: 0,
            mcounteren: u64::MAX, // counters visible to S/U by default
            stvec: 0,
            sepc: 0,
            scause: 0,
            stval: 0,
            sscratch: 0,
            scounteren: u64::MAX,
            satp: Satp::default(),
            pmp: PmpSet::default(),
            cycle: 0,
            instret: 0,
            hpm: vec![0; hpm_counters],
            hpm_contributors: vec![Vec::new(); hpm_counters],
        }
    }

    /// Increments the counter mapped to `event`, recording the contributing
    /// domain.
    pub fn hpc_bump(&mut self, event: HpcEvent, domain: Domain) {
        let i = event.counter_index();
        if i < self.hpm.len() {
            self.hpm[i] += 1;
            if self.hpm_contributors[i].last() != Some(&domain) {
                self.hpm_contributors[i].push(domain);
            }
        }
    }

    /// Clears all HPM counters (mitigation / explicit reset), forgetting
    /// contributor history.
    pub fn hpc_clear(&mut self) {
        self.hpm.fill(0);
        for c in &mut self.hpm_contributors {
            c.clear();
        }
    }

    /// `true` if counter `i` has accumulated events from a trusted domain
    /// since its last reset.
    pub fn hpc_tainted(&self, i: usize) -> bool {
        self.hpm_contributors
            .get(i)
            .is_some_and(|c| c.iter().any(|d| d.is_trusted()))
    }

    fn counter_accessible(&self, idx: u64, priv_level: PrivLevel) -> bool {
        match priv_level {
            PrivLevel::Machine => true,
            PrivLevel::Supervisor => self.mcounteren >> idx & 1 == 1,
            PrivLevel::User => {
                (self.mcounteren >> idx & 1 == 1) && (self.scounteren >> idx & 1 == 1)
            }
        }
    }

    /// Reads a CSR with privilege checking.
    ///
    /// # Errors
    ///
    /// [`CsrError::NotPrivileged`] when the privilege level is insufficient,
    /// [`CsrError::Nonexistent`] for unimplemented CSRs.
    pub fn read(&self, addr: CsrAddr, priv_level: PrivLevel) -> Result<u64, CsrError> {
        if !priv_level.dominates(csr::required_privilege(addr)) {
            return Err(CsrError::NotPrivileged);
        }
        self.read_unchecked(addr, priv_level)
    }

    /// Reads a CSR *without* the address-encoded privilege check, but still
    /// applying counter-enable gating. Used by the transient-writeback model
    /// to obtain the value a lazy permission check would have exposed.
    pub fn read_unchecked(&self, addr: CsrAddr, priv_level: PrivLevel) -> Result<u64, CsrError> {
        let v = match addr {
            csr::MSTATUS => self.mstatus.0,
            csr::SSTATUS => self.mstatus.0 & 0x8000_0003_000D_E762, // restricted view
            csr::MTVEC => self.mtvec,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::MTVAL => self.mtval,
            csr::MSCRATCH => self.mscratch,
            csr::MIE => self.mie,
            csr::MIP => self.mip,
            csr::MCOUNTEREN => self.mcounteren,
            csr::MEDELEG | csr::MIDELEG => 0,
            csr::STVEC => self.stvec,
            csr::SEPC => self.sepc,
            csr::SCAUSE => self.scause,
            csr::STVAL => self.stval,
            csr::SSCRATCH => self.sscratch,
            csr::SCOUNTEREN => self.scounteren,
            csr::SIE => self.mie,
            csr::SIP => self.mip,
            csr::SATP => self.satp.0,
            csr::MCYCLE => self.cycle,
            csr::MINSTRET => self.instret,
            csr::CYCLE => {
                if !self.counter_accessible(0, priv_level) {
                    return Err(CsrError::NotPrivileged);
                }
                self.cycle
            }
            csr::INSTRET => {
                if !self.counter_accessible(2, priv_level) {
                    return Err(CsrError::NotPrivileged);
                }
                self.instret
            }
            csr::TIME => self.cycle, // mtime mirrors mcycle in this model
            _ if (csr::PMPCFG0..csr::PMPCFG0 + 4).contains(&addr) => self.read_pmpcfg(addr)?,
            _ if (csr::PMPADDR0..csr::PMPADDR0 + 16).contains(&addr) => {
                self.pmp.addr_raw((addr - csr::PMPADDR0) as usize)
            }
            _ if (csr::MHPMCOUNTER3..csr::MHPMCOUNTER3 + 29).contains(&addr) => {
                let i = (addr - csr::MHPMCOUNTER3) as usize;
                self.hpm.get(i).copied().ok_or(CsrError::Nonexistent)?
            }
            _ if (csr::HPMCOUNTER3..csr::HPMCOUNTER3 + 29).contains(&addr) => {
                let i = (addr - csr::HPMCOUNTER3) as usize;
                if !self.counter_accessible(3 + i as u64, priv_level) {
                    return Err(CsrError::NotPrivileged);
                }
                self.hpm.get(i).copied().ok_or(CsrError::Nonexistent)?
            }
            _ if (csr::MHPMEVENT3..csr::MHPMEVENT3 + 29).contains(&addr) => 0,
            _ => return Err(CsrError::Nonexistent),
        };
        Ok(v)
    }

    fn read_pmpcfg(&self, addr: CsrAddr) -> Result<u64, CsrError> {
        // RV64: only even pmpcfg registers exist.
        let n = (addr - csr::PMPCFG0) as usize;
        if !n.is_multiple_of(2) {
            return Err(CsrError::Nonexistent);
        }
        let base = n / 2 * 8;
        let mut v = 0u64;
        for i in (0..8).rev() {
            let e = base + i;
            let b = if e < self.pmp.len() {
                self.pmp.cfg(e).to_byte()
            } else {
                0
            };
            v = (v << 8) | b as u64;
        }
        Ok(v)
    }

    /// Outcome flags of a CSR write that the core must act on.
    pub fn write(
        &mut self,
        addr: CsrAddr,
        value: u64,
        priv_level: PrivLevel,
    ) -> Result<CsrWriteEffect, CsrError> {
        if !priv_level.dominates(csr::required_privilege(addr)) {
            return Err(CsrError::NotPrivileged);
        }
        if csr::is_read_only(addr) {
            return Err(CsrError::ReadOnly);
        }
        let mut effect = CsrWriteEffect::default();
        match addr {
            csr::MSTATUS => self.mstatus = Mstatus(value),
            csr::SSTATUS => {
                // Restricted write: SIE, SPIE, SPP, SUM only.
                let mask =
                    Mstatus::SIE_BIT | Mstatus::SPIE_BIT | Mstatus::SPP_BIT | Mstatus::SUM_BIT;
                self.mstatus = Mstatus((self.mstatus.0 & !mask) | (value & mask));
            }
            csr::MTVEC => self.mtvec = value,
            csr::MEPC => self.mepc = value & !1,
            csr::MCAUSE => self.mcause = value,
            csr::MTVAL => self.mtval = value,
            csr::MSCRATCH => self.mscratch = value,
            csr::MIE => self.mie = value,
            csr::MIP => self.mip = value,
            csr::MCOUNTEREN => self.mcounteren = value,
            csr::MEDELEG | csr::MIDELEG => {}
            csr::STVEC => self.stvec = value,
            csr::SEPC => self.sepc = value & !1,
            csr::SCAUSE => self.scause = value,
            csr::STVAL => self.stval = value,
            csr::SSCRATCH => self.sscratch = value,
            csr::SCOUNTEREN => self.scounteren = value,
            csr::SIE => self.mie = value,
            csr::SIP => self.mip = value,
            csr::SATP => {
                self.satp = Satp(value);
                effect.satp_written = true;
            }
            csr::MCYCLE => self.cycle = value,
            csr::MINSTRET => self.instret = value,
            _ if (csr::PMPCFG0..csr::PMPCFG0 + 4).contains(&addr) => {
                self.write_pmpcfg(addr, value)?;
                effect.pmp_reconfigured = true;
            }
            _ if (csr::PMPADDR0..csr::PMPADDR0 + 16).contains(&addr) => {
                self.pmp
                    .set_addr_raw((addr - csr::PMPADDR0) as usize, value);
                effect.pmp_reconfigured = true;
            }
            _ if (csr::MHPMCOUNTER3..csr::MHPMCOUNTER3 + 29).contains(&addr) => {
                let i = (addr - csr::MHPMCOUNTER3) as usize;
                if i >= self.hpm.len() {
                    return Err(CsrError::Nonexistent);
                }
                self.hpm[i] = value;
                if value == 0 {
                    self.hpm_contributors[i].clear();
                }
            }
            _ if (csr::MHPMEVENT3..csr::MHPMEVENT3 + 29).contains(&addr) => {}
            _ => return Err(CsrError::Nonexistent),
        }
        Ok(effect)
    }

    fn write_pmpcfg(&mut self, addr: CsrAddr, value: u64) -> Result<(), CsrError> {
        let n = (addr - csr::PMPCFG0) as usize;
        if !n.is_multiple_of(2) {
            return Err(CsrError::Nonexistent);
        }
        let base = n / 2 * 8;
        for i in 0..8 {
            let e = base + i;
            if e < self.pmp.len() {
                self.pmp
                    .set_cfg(e, PmpCfg::from_byte((value >> (8 * i)) as u8));
            }
        }
        Ok(())
    }
}

/// Side effects of a CSR write that the pipeline must act on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsrWriteEffect {
    /// A PMP CSR changed — Keystone's domain-switch marker; triggers
    /// mitigation flushes when configured.
    pub pmp_reconfigured: bool,
    /// `satp` changed (address-translation root moved).
    pub satp_written: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_isa::pmp::{AccessKind, PmpCfg};

    #[test]
    fn privilege_gating() {
        let f = CsrFile::new(8);
        assert_eq!(
            f.read(csr::MSTATUS, PrivLevel::Supervisor),
            Err(CsrError::NotPrivileged)
        );
        assert!(f.read(csr::MSTATUS, PrivLevel::Machine).is_ok());
        assert!(f.read(csr::SATP, PrivLevel::Supervisor).is_ok());
        assert_eq!(
            f.read(csr::SATP, PrivLevel::User),
            Err(CsrError::NotPrivileged)
        );
    }

    #[test]
    fn counter_enable_gating() {
        let mut f = CsrFile::new(8);
        assert!(f.read(csr::CYCLE, PrivLevel::User).is_ok());
        f.mcounteren = 0;
        assert_eq!(
            f.read(csr::CYCLE, PrivLevel::User),
            Err(CsrError::NotPrivileged)
        );
        assert_eq!(
            f.read(csr::CYCLE, PrivLevel::Supervisor),
            Err(CsrError::NotPrivileged)
        );
        assert!(f.read(csr::CYCLE, PrivLevel::Machine).is_ok());
        // hpmcounter3 likewise.
        f.mcounteren = 0b1000; // bit 3 only
        assert!(f
            .read(csr::hpmcounter_csr(0), PrivLevel::Supervisor)
            .is_ok());
        assert_eq!(
            f.read(csr::hpmcounter_csr(1), PrivLevel::Supervisor),
            Err(CsrError::NotPrivileged)
        );
    }

    #[test]
    fn read_only_counters_reject_writes() {
        let mut f = CsrFile::new(8);
        assert_eq!(
            f.write(csr::CYCLE, 0, PrivLevel::Machine),
            Err(CsrError::ReadOnly)
        );
    }

    #[test]
    fn pmp_csr_mapping_programs_unit() {
        let mut f = CsrFile::new(8);
        // NAPOT region [0x8040_0000, 0x8040_0000 + 2 MiB) via pmpaddr0/pmpcfg0.
        let base = 0x8040_0000u64;
        let size = 0x20_0000u64;
        let addr_val = (base >> 2) | ((size >> 3) - 1);
        let eff = f
            .write(csr::PMPADDR0, addr_val, PrivLevel::Machine)
            .unwrap();
        assert!(eff.pmp_reconfigured);
        let cfg = PmpCfg::napot(true, true, true).to_byte() as u64;
        f.write(csr::PMPCFG0, cfg, PrivLevel::Machine).unwrap();
        assert!(f
            .pmp
            .allows(base + 8, 8, AccessKind::Read, PrivLevel::Supervisor));
        assert!(!f
            .pmp
            .allows(base - 8, 8, AccessKind::Read, PrivLevel::Supervisor));
        // Read back the packed cfg byte.
        assert_eq!(
            f.read(csr::PMPCFG0, PrivLevel::Machine).unwrap() & 0xFF,
            cfg
        );
    }

    #[test]
    fn pmp_access_requires_machine_mode() {
        let mut f = CsrFile::new(8);
        assert_eq!(
            f.write(csr::PMPCFG0, 0, PrivLevel::Supervisor),
            Err(CsrError::NotPrivileged)
        );
    }

    #[test]
    fn hpc_bump_and_taint_tracking() {
        let mut f = CsrFile::new(8);
        f.hpc_bump(HpcEvent::L1dMiss, Domain::Untrusted);
        assert!(!f.hpc_tainted(HpcEvent::L1dMiss.counter_index()));
        f.hpc_bump(HpcEvent::L1dMiss, Domain::Enclave(0));
        assert!(f.hpc_tainted(HpcEvent::L1dMiss.counter_index()));
        assert_eq!(f.hpm[HpcEvent::L1dMiss.counter_index()], 2);
        f.hpc_clear();
        assert!(!f.hpc_tainted(HpcEvent::L1dMiss.counter_index()));
        assert_eq!(f.hpm[HpcEvent::L1dMiss.counter_index()], 0);
    }

    #[test]
    fn hpm_counter_write_of_zero_clears_taint() {
        let mut f = CsrFile::new(8);
        f.hpc_bump(HpcEvent::Exception, Domain::Enclave(1));
        let a = csr::mhpmcounter_csr(HpcEvent::Exception.counter_index());
        f.write(a, 0, PrivLevel::Machine).unwrap();
        assert!(!f.hpc_tainted(HpcEvent::Exception.counter_index()));
    }

    #[test]
    fn satp_write_reports_effect() {
        let mut f = CsrFile::new(8);
        let eff = f
            .write(csr::SATP, Satp::sv39(0x8020_0000).0, PrivLevel::Supervisor)
            .unwrap();
        assert!(eff.satp_written && !eff.pmp_reconfigured);
        assert!(f.satp.is_sv39());
    }

    #[test]
    fn sstatus_is_restricted_view() {
        let mut f = CsrFile::new(8);
        f.write(csr::MSTATUS, u64::MAX, PrivLevel::Machine).unwrap();
        let sstatus = f.read(csr::SSTATUS, PrivLevel::Supervisor).unwrap();
        // MPP bits must not be visible through sstatus.
        assert_eq!(sstatus >> Mstatus::MPP_SHIFT & 0b11, 0);
        // But SPP is.
        assert_eq!(sstatus & Mstatus::SPP_BIT, Mstatus::SPP_BIT);
    }

    #[test]
    fn nonexistent_csr() {
        let f = CsrFile::new(8);
        assert_eq!(
            f.read(0x7FF, PrivLevel::Machine),
            Err(CsrError::Nonexistent)
        );
    }
}
