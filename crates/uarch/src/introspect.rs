//! Storage-element introspection — the analog of the paper's Yosys synthesis
//! pass that enumerates every HDL construct mapping to memory cells
//! (paper §4.1.3).
//!
//! Each stateful structure in the core model reports itself here; the
//! TEESec verification plan consumes the inventory to decide what to log
//! and what the checker must scan.

use serde::{Deserialize, Serialize};

use crate::config::{CoreConfig, PrefetcherKind};
use crate::trace::Structure;

/// What a storage element holds, from the checker's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentClass {
    /// Architectural or microarchitectural *data* (cache lines, register
    /// values) — subject to security principle P1.
    Data,
    /// Execution *metadata* (branch history, event counts, translations) —
    /// subject to security principle P2.
    Metadata,
}

/// One inventoried storage element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageElement {
    /// The structure class.
    pub structure: Structure,
    /// Element capacity in entries (lines, slots, counters...).
    pub entries: usize,
    /// Bytes of payload per entry.
    pub entry_bytes: usize,
    /// Data or metadata.
    pub content: ContentClass,
    /// Whether the element can be *filled by implicit accesses* (prefetch,
    /// page walks) — these paths often skip permission checks.
    pub implicit_fill: bool,
    /// Whether the element is flushed at privilege/domain switches in this
    /// configuration (before mitigations this is `false` everywhere, which
    /// is exactly the paper's observation).
    pub flushed_on_domain_switch: bool,
}

/// The full storage inventory of a configured core.
///
/// ```
/// use teesec_uarch::introspect::StorageInventory;
/// use teesec_uarch::trace::Structure;
/// use teesec_uarch::CoreConfig;
///
/// let inventory = StorageInventory::profile(&CoreConfig::boom());
/// let lfb = inventory.element(Structure::Lfb).expect("LFB present");
/// assert!(lfb.implicit_fill, "the LFB is fillable by implicit accesses");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageInventory {
    /// Design name this inventory describes.
    pub design: String,
    /// The elements, in [`Structure::all`] order (absent structures are
    /// omitted — e.g. the store buffer on a core with zero SB entries).
    pub elements: Vec<StorageElement>,
}

impl StorageInventory {
    /// Profiles a core configuration into its storage inventory.
    pub fn profile(config: &CoreConfig) -> StorageInventory {
        let m = config.mitigations;
        let line = config.line_size as usize;
        let mut elements = vec![
            StorageElement {
                structure: Structure::RegFile,
                entries: 32,
                entry_bytes: 8,
                content: ContentClass::Data,
                implicit_fill: false,
                flushed_on_domain_switch: false,
            },
            StorageElement {
                structure: Structure::L1d,
                entries: config.l1d_sets * config.l1d_ways,
                entry_bytes: line,
                content: ContentClass::Data,
                implicit_fill: true,
                flushed_on_domain_switch: m.flush_l1d_on_domain_switch,
            },
            StorageElement {
                structure: Structure::L1i,
                entries: config.l1d_sets * config.l1d_ways,
                entry_bytes: line,
                content: ContentClass::Data,
                implicit_fill: true,
                flushed_on_domain_switch: false,
            },
            StorageElement {
                structure: Structure::L2,
                entries: config.l2_sets * config.l2_ways,
                entry_bytes: line,
                content: ContentClass::Data,
                implicit_fill: true,
                flushed_on_domain_switch: false,
            },
            StorageElement {
                structure: Structure::Lfb,
                entries: config.lfb_entries,
                entry_bytes: line,
                content: ContentClass::Data,
                implicit_fill: true,
                flushed_on_domain_switch: m.flush_lfb_on_domain_switch,
            },
            StorageElement {
                structure: Structure::StoreQueue,
                entries: config.store_queue_entries,
                entry_bytes: 8,
                content: ContentClass::Data,
                implicit_fill: false,
                flushed_on_domain_switch: false,
            },
        ];
        if config.store_buffer_entries > 0 {
            elements.push(StorageElement {
                structure: Structure::StoreBuffer,
                entries: config.store_buffer_entries,
                entry_bytes: 8,
                content: ContentClass::Data,
                implicit_fill: false,
                flushed_on_domain_switch: m.flush_store_buffer_on_domain_switch,
            });
        }
        elements.extend([
            StorageElement {
                structure: Structure::Dtlb,
                entries: config.dtlb_entries,
                entry_bytes: 8,
                content: ContentClass::Metadata,
                implicit_fill: true,
                flushed_on_domain_switch: false,
            },
            StorageElement {
                structure: Structure::Itlb,
                entries: config.itlb_entries,
                entry_bytes: 8,
                content: ContentClass::Metadata,
                implicit_fill: true,
                flushed_on_domain_switch: false,
            },
            StorageElement {
                structure: Structure::PtwCache,
                entries: config.ptw_cache_entries,
                entry_bytes: 8,
                content: ContentClass::Data,
                implicit_fill: true,
                flushed_on_domain_switch: false,
            },
            StorageElement {
                structure: Structure::Ubtb,
                entries: config.ubtb_entries,
                entry_bytes: 8,
                content: ContentClass::Metadata,
                implicit_fill: false,
                flushed_on_domain_switch: m.flush_bpu_on_domain_switch,
            },
            StorageElement {
                structure: Structure::Ftb,
                entries: config.ftb_sets * config.ftb_ways,
                entry_bytes: 8,
                content: ContentClass::Metadata,
                implicit_fill: false,
                flushed_on_domain_switch: m.flush_bpu_on_domain_switch,
            },
            StorageElement {
                structure: Structure::Bht,
                entries: 1024,
                entry_bytes: 1,
                content: ContentClass::Metadata,
                implicit_fill: false,
                flushed_on_domain_switch: m.flush_bpu_on_domain_switch,
            },
            StorageElement {
                structure: Structure::Hpc,
                entries: config.hpm_counters,
                entry_bytes: 8,
                content: ContentClass::Metadata,
                implicit_fill: false,
                flushed_on_domain_switch: m.clear_hpc_on_domain_switch,
            },
        ]);
        // The prefetcher has no payload storage of its own, but its presence
        // turns the LFB into an implicit-fill target. Nothing extra to list
        // when absent.
        let _ = matches!(config.l1d_prefetcher, PrefetcherKind::NextLine);
        StorageInventory {
            design: config.name.clone(),
            elements,
        }
    }

    /// Looks up one element.
    pub fn element(&self, s: Structure) -> Option<&StorageElement> {
        self.elements.iter().find(|e| e.structure == s)
    }

    /// Elements that can be filled by implicit (permission-check-skipping)
    /// accesses — the paths §4.1.2 calls out as frequently unchecked.
    pub fn implicit_fill_targets(&self) -> impl Iterator<Item = &StorageElement> {
        self.elements.iter().filter(|e| e.implicit_fill)
    }

    /// Elements holding enclave-relevant metadata (P2 targets).
    pub fn metadata_elements(&self) -> impl Iterator<Item = &StorageElement> {
        self.elements
            .iter()
            .filter(|e| e.content == ContentClass::Metadata)
    }

    /// Total modeled state in bytes (diagnostic).
    pub fn total_state_bytes(&self) -> usize {
        self.elements
            .iter()
            .map(|e| e.entries * e.entry_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, MitigationSet};

    #[test]
    fn boom_has_no_store_buffer_element() {
        let inv = StorageInventory::profile(&CoreConfig::boom());
        assert!(inv.element(Structure::StoreBuffer).is_none());
        let inv_xs = StorageInventory::profile(&CoreConfig::xiangshan());
        assert!(inv_xs.element(Structure::StoreBuffer).is_some());
    }

    #[test]
    fn naive_deployment_flushes_nothing() {
        let inv = StorageInventory::profile(&CoreConfig::boom());
        assert!(inv.elements.iter().all(|e| !e.flushed_on_domain_switch));
    }

    #[test]
    fn mitigations_reflect_in_inventory() {
        let cfg = CoreConfig::boom().with_mitigations(MitigationSet::flush_everything());
        let inv = StorageInventory::profile(&cfg);
        assert!(
            inv.element(Structure::L1d)
                .unwrap()
                .flushed_on_domain_switch
        );
        assert!(
            inv.element(Structure::Lfb)
                .unwrap()
                .flushed_on_domain_switch
        );
        assert!(
            inv.element(Structure::Ubtb)
                .unwrap()
                .flushed_on_domain_switch
        );
        assert!(
            inv.element(Structure::Hpc)
                .unwrap()
                .flushed_on_domain_switch
        );
        // L2 is never flushed even under "flush everything" (the paper's
        // flush targets are the core-private buffers).
        assert!(!inv.element(Structure::L2).unwrap().flushed_on_domain_switch);
    }

    #[test]
    fn implicit_fill_targets_include_lfb_and_caches() {
        let inv = StorageInventory::profile(&CoreConfig::boom());
        let implicit: Vec<Structure> = inv.implicit_fill_targets().map(|e| e.structure).collect();
        assert!(implicit.contains(&Structure::Lfb));
        assert!(implicit.contains(&Structure::L1d));
        assert!(implicit.contains(&Structure::PtwCache));
        assert!(!implicit.contains(&Structure::RegFile));
    }

    #[test]
    fn metadata_elements_cover_p2_targets() {
        let inv = StorageInventory::profile(&CoreConfig::xiangshan());
        let meta: Vec<Structure> = inv.metadata_elements().map(|e| e.structure).collect();
        assert!(meta.contains(&Structure::Ubtb));
        assert!(meta.contains(&Structure::Hpc));
        assert!(meta.contains(&Structure::Dtlb));
        assert!(!meta.contains(&Structure::L1d));
    }

    #[test]
    fn capacities_follow_config() {
        let cfg = CoreConfig::xiangshan();
        let inv = StorageInventory::profile(&cfg);
        assert_eq!(
            inv.element(Structure::Ubtb).unwrap().entries,
            cfg.ubtb_entries
        );
        assert_eq!(
            inv.element(Structure::L1d).unwrap().entries,
            cfg.l1d_sets * cfg.l1d_ways
        );
        assert!(inv.total_state_bytes() > 0);
    }
}
