//! The out-of-order core: fetch with branch prediction, a reorder buffer
//! with scoreboard operand forwarding, speculative execution with *lazy*
//! exception handling (faults are recorded at execute and raised at commit —
//! the Meltdown-enabling implementation both BOOM and XiangShan use), and
//! precise trap/interrupt handling.

use std::collections::VecDeque;
use std::sync::OnceLock;

use teesec_isa::csr::{self, CsrAddr, Mstatus};
use teesec_isa::inst::{CsrOp, CsrSrc, Inst};
use teesec_isa::pmp::AccessKind;
use teesec_isa::priv_level::PrivLevel;
use teesec_isa::reg::Reg;
use teesec_isa::vm::{pte_addr, PhysAddr, Pte, VirtAddr, SV39_LEVELS};

use crate::btb::{Bht, Ftb, Ubtb};
use crate::config::CoreConfig;
use crate::counters::{StructureCounters, UarchCounters};
use crate::csr_file::{CsrError, CsrFile};
use crate::decode::{DecodeCache, DecodeCacheStats};
use crate::lsu::{LoadRequest, Lsu, XlateRequest};
use crate::mem::Memory;
use crate::tlb::Tlb;
use crate::trace::{Domain, HpcEvent, Structure, Trace, TraceEvent, TraceEventKind};
use crate::trap::{Exception, Interrupt};

/// The custom machine CSR the platform firmware writes to declare the active
/// security domain to the verification instrumentation (0 = untrusted,
/// 1 = security monitor, `2 + id` = enclave `id`). This is the model's
/// analog of the paper's checker knowing test boundaries from the TEE API.
pub const MDOMAIN: CsrAddr = 0x7C0;

/// Number of cycles a faulting (privilege-checked) CSR read lingers between
/// transient writeback and its flush from the ROB — the window the Figure 6
/// interrupt exploits.
const CSR_FLUSH_DELAY: u64 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Executing,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct StoreInfo {
    pa: Option<u64>,
    vaddr: u64,
    value: u64,
    width: u64,
}

/// Memory-disambiguation verdict for a load against older in-flight stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SqScan {
    /// The youngest older store to the same address supplies the value.
    Forward(u64),
    /// An older store's address is unknown or partially overlaps: stall.
    Wait,
    /// No conflict: the load may probe the memory hierarchy.
    Clear,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    pc: u64,
    predicted_next: u64,
    inst: Result<Inst, u32>,
    state: EntryState,
    result: Option<u64>,
    exception: Option<Exception>,
    store: Option<StoreInfo>,
    serializing: bool,
    /// For the delayed flush of faulting CSR reads.
    commit_not_before: u64,
    /// Set once the serializing instruction performed its effect.
    sys_executed: bool,
    sign_extend_from: Option<u64>,
}

/// Why [`Core::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// An `ebreak` retired (the platform's end-of-test convention).
    Halted,
    /// The cycle budget was exhausted.
    CycleLimit,
}

/// One architecturally retired instruction, recorded when the retire probe
/// is on ([`Core::set_retire_probe`]) — the commit-boundary event stream a
/// lockstep differential oracle aligns against a reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredInst {
    /// ROB sequence number (monotonic across the run, gaps where squashed).
    pub seq: u64,
    /// PC of the retired instruction.
    pub pc: u64,
    /// The instruction (poisoned fetches never retire, so always decoded).
    pub inst: Inst,
    /// The value committed to the architectural register file, when the
    /// instruction has a destination register.
    pub result: Option<u64>,
}

/// A configured core instance bound to a physical memory.
///
/// `Clone` forks the complete core state — architectural and
/// microarchitectural — in O(backed pages) thanks to the copy-on-write
/// [`Memory`]; platform snapshotting builds on this. The clone does *not*
/// inherit an attached trace sink (see [`Trace::clone`]).
#[derive(Debug, Clone)]
pub struct Core {
    /// The configuration the core was built with.
    pub config: CoreConfig,
    /// Physical memory.
    pub mem: Memory,
    /// CSR file (incl. PMP and performance counters).
    pub csr: CsrFile,
    /// Load/store unit and cache hierarchy.
    pub lsu: Lsu,
    /// Execution trace.
    pub trace: Trace,
    /// Micro BTB.
    pub ubtb: Ubtb,
    /// Fetch target buffer.
    pub ftb: Ftb,
    /// Branch history table.
    pub bht: Bht,
    /// Instruction TLB.
    pub itlb: Tlb,
    /// L1 instruction cache (fills traced; fetch latency is not modeled —
    /// the paper's leakage cases are all D-side).
    pub l1i: crate::cache::Cache,
    /// Current cycle.
    pub cycle: u64,
    /// Current privilege level.
    pub priv_level: PrivLevel,
    /// Current security domain (trace attribution).
    pub domain: Domain,
    /// Set once an `ebreak` retires.
    pub halted: bool,

    fetch_pc: u64,
    fetch_stalled: bool,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    spec_rf: [u64; 32],
    arch_rf: [u64; 32],
    ext_irq_at: Option<u64>,
    retired: u64,
    /// Domain of the interrupted world while a trap is being serviced;
    /// restored at `mret` unless firmware wrote MDOMAIN meanwhile.
    domain_before_trap: Option<Domain>,
    /// Retire probe: when on, every architectural commit is appended to
    /// `retire_log` for [`Core::take_retired_log`].
    retire_probe: bool,
    retire_log: Vec<RetiredInst>,
    /// Fetch fence: when the fetch stage is about to fetch this PC, it
    /// stops instead (mid-cycle, before the fetch) and latches
    /// `fetch_fence_hit` — the snapshot point for platform checkpointing.
    fetch_fence: Option<u64>,
    fetch_fence_hit: bool,
    /// Fast-path switch (page-keyed decode cache + dirty-scan elision).
    /// Defaults from `TEESEC_FASTPATH`; both settings are byte-identical
    /// in every architectural and traced observable.
    fast_path: bool,
    /// Pre-decoded instruction cache (consulted only on the fast path;
    /// clones empty, see [`DecodeCache`]).
    decode_cache: DecodeCache,
    /// Fetch-line memo (fast path only; clones cold, see [`FetchMemo`]).
    fetch_memo: FetchMemo,
    /// Dirty-scan watermark: every waiting ROB entry at a position below
    /// it was scanned after the last change to anything its scan reads,
    /// and stalled — so the execute walk starts here. Writebacks and
    /// store resolutions at position `p` pull it down to `p + 1` (their
    /// effects are only visible to younger scans); retires, traps, and
    /// serializing instructions reset it to 0.
    scan_from: usize,
    /// Fast-path diagnostics: scans performed / scans elided.
    scan_checks: u64,
    scan_skips: u64,
}

/// The single I-cache line the fetch stage is currently streaming
/// through, with its translation and lazily memoized per-slot decodes. A
/// hit elides the ITLB probe, the PMP check, the L1I lookup, and decode.
///
/// Byte-identity safety: (a) a resident L1I line is immutable, so the
/// memoized words equal what `Cache::read` would return — including
/// staleness against memory, because the I-side is incoherent by design
/// until `fence.i`; (b) the I-side structures are touched *only* by
/// fetch, so collapsing consecutive recency stamps of the
/// most-recently-used line/TLB entry preserves the relative LRU order
/// that eviction decisions compare — future fills and their trace events
/// are unchanged; (c) translation, privilege, and PMP verdicts are
/// pinned by dropping the memo at every serializing instruction, trap,
/// and run entry, and every full-path fetch (line switch, fill, or
/// fault) rebuilds it.
#[derive(Debug, Default)]
struct FetchMemo {
    valid: bool,
    /// Line-aligned virtual fetch address.
    va_line: u64,
    /// Line-aligned physical address it translates to.
    pa_line: u64,
    /// `(word, memoized decode)` per 4-byte slot; decode is pure, so the
    /// memoized result is identical to a fresh `Inst::decode`.
    slots: Vec<(u32, Option<Option<Inst>>)>,
}

impl Clone for FetchMemo {
    /// Forks start cold, mirroring [`DecodeCache`]: the memo is pure
    /// acceleration state, never worth carrying across a snapshot fork.
    fn clone(&self) -> FetchMemo {
        FetchMemo::default()
    }
}

/// Fast-path effectiveness counters, exported by the engine as the
/// `teesec_decode_cache_*` and `teesec_dirty_scan_*` Prometheus families.
/// Deliberately *not* part of [`UarchCounters`]: the counter digest is a
/// byte-identity observable across fast-path settings, these are not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Decode-cache hit/miss/invalidation counts.
    pub decode: DecodeCacheStats,
    /// Operand/store-queue scans actually performed (fast path on).
    pub scan_checks: u64,
    /// Scans elided because the dirty epoch was unchanged.
    pub scan_skips: u64,
}

/// Process-wide fast-path default: on unless `TEESEC_FASTPATH` is set to
/// `0`, `off`, `false` or `no`.
pub fn fast_path_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("TEESEC_FASTPATH").as_deref(),
            Ok("0" | "off" | "false" | "no")
        )
    })
}

impl Core {
    /// Creates a core with reset state, starting execution at `reset_pc` in
    /// machine mode.
    pub fn new(config: CoreConfig, mem: Memory, reset_pc: u64) -> Core {
        config.validate();
        Core {
            csr: CsrFile::new(config.hpm_counters),
            lsu: Lsu::new(&config),
            trace: Trace::new(),
            ubtb: Ubtb::new(config.ubtb_entries, config.ubtb_tag_bits),
            ftb: Ftb::new(config.ftb_sets, config.ftb_ways, 16),
            bht: Bht::new(1024),
            itlb: Tlb::new(config.itlb_entries),
            l1i: crate::cache::Cache::new(config.l1d_sets, config.l1d_ways, config.line_size),
            cycle: 0,
            priv_level: PrivLevel::Machine,
            domain: Domain::SecurityMonitor,
            halted: false,
            fetch_pc: reset_pc,
            fetch_stalled: false,
            rob: VecDeque::new(),
            next_seq: 0,
            spec_rf: [0; 32],
            arch_rf: [0; 32],
            ext_irq_at: None,
            retired: 0,
            domain_before_trap: None,
            retire_probe: false,
            retire_log: Vec::new(),
            fetch_fence: None,
            fetch_fence_hit: false,
            fast_path: fast_path_default(),
            decode_cache: DecodeCache::new(),
            fetch_memo: FetchMemo::default(),
            scan_from: 0,
            scan_checks: 0,
            scan_skips: 0,
            mem,
            config,
        }
    }

    /// Enables or disables the fast path (decode cache + dirty-scan
    /// elision). Both settings produce byte-identical runs; off is the
    /// reference path the equivalence harness compares against.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
        self.lsu.set_fast_path(on);
        self.scan_from = 0;
        self.fetch_memo.valid = false;
        if !on {
            self.decode_cache.flush();
        }
    }

    /// Whether the fast path is enabled.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Fast-path effectiveness counters (zeroes when the fast path never
    /// ran; decode stats reset on `Clone`, see [`DecodeCache`]).
    pub fn fast_path_stats(&self) -> FastPathStats {
        let (lsu_checks, lsu_skips) = self.lsu.fastpath_counters();
        FastPathStats {
            decode: self.decode_cache.stats,
            scan_checks: self.scan_checks + lsu_checks,
            scan_skips: self.scan_skips + lsu_skips,
        }
    }

    /// Resets the dirty-scan watermark: every waiting entry will be
    /// rescanned. Called wherever state that scans read may have changed
    /// beyond a known ROB position — retires shift every position, traps
    /// and serializing instructions can change anything — and defensively
    /// at the public run entry points (external code may have poked
    /// `mem`/`csr`/registers between runs).
    #[inline]
    fn invalidate_scans(&mut self) {
        self.scan_from = 0;
    }

    /// Marks entries *younger* than `pos` for rescan. Writebacks,
    /// store-address computation, and translation completions at `pos`
    /// feed only younger entries' scans (operand and store-queue scans
    /// read strictly older entries), so the watermark never needs to drop
    /// below `pos + 1` for them.
    #[inline]
    fn invalidate_scans_after(&mut self, pos: usize) {
        self.scan_from = self.scan_from.min(pos + 1);
    }

    /// Drops the fetch-line memo: translation, privilege, PMP, or L1I
    /// state may have changed.
    #[inline]
    fn invalidate_fetch_memo(&mut self) {
        self.fetch_memo.valid = false;
    }

    /// Arms (or clears, with `None`) the fetch fence: the fetch stage halts
    /// dispatch the moment it is about to fetch `pc`, leaving the pipeline
    /// otherwise undisturbed. Used to park the core at a known program
    /// point for snapshotting.
    pub fn set_fetch_fence(&mut self, pc: Option<u64>) {
        self.fetch_fence = pc;
        self.fetch_fence_hit = false;
    }

    /// `true` once the fetch stage stopped at the armed fence PC.
    pub fn fetch_fence_hit(&self) -> bool {
        self.fetch_fence_hit
    }

    /// Steps until the fetch stage reaches the fence at `pc` (returns
    /// `true`), or the core halts / `max_cycles` elapses (`false`). On
    /// success the core is parked mid-cycle: execute/commit of the current
    /// cycle have run, and fetch stopped just *before* fetching `pc`.
    /// Complete the interrupted cycle later with [`Core::resume_fetch`].
    pub fn run_until_fetch(&mut self, pc: u64, max_cycles: u64) -> bool {
        self.invalidate_scans();
        self.invalidate_fetch_memo();
        self.lsu.note_external_change();
        self.set_fetch_fence(Some(pc));
        while !self.fetch_fence_hit && !self.halted && self.cycle < max_cycles {
            self.step();
        }
        self.fetch_fence_hit
    }

    /// Clears the fetch fence and finishes the fetch stage of the cycle
    /// [`Core::run_until_fetch`] interrupted, so a subsequent
    /// [`Core::run`]/[`Core::step`] continues exactly as an uninterrupted
    /// execution would.
    pub fn resume_fetch(&mut self) {
        let was_hit = self.fetch_fence_hit;
        self.fetch_fence = None;
        self.fetch_fence_hit = false;
        if was_hit && !self.halted {
            self.fetch_stage();
        }
    }

    /// Turns the retire probe on or off. While on, every architectural
    /// commit is recorded; drain the log with [`Core::take_retired_log`]
    /// (ideally every cycle — the log grows unboundedly otherwise).
    pub fn set_retire_probe(&mut self, on: bool) {
        self.retire_probe = on;
        if !on {
            self.retire_log.clear();
        }
    }

    /// Drains the retire log recorded since the last call (empty unless
    /// [`Core::set_retire_probe`] enabled the probe).
    pub fn take_retired_log(&mut self) -> Vec<RetiredInst> {
        std::mem::take(&mut self.retire_log)
    }

    /// The architectural value of register `r`.
    pub fn reg(&self, r: Reg) -> u64 {
        self.arch_rf[r.index() as usize]
    }

    /// The *speculative* (physical) register file value — includes transient
    /// writebacks that never retire.
    pub fn spec_reg(&self, r: Reg) -> u64 {
        self.spec_rf[r.index() as usize]
    }

    /// Sets an architectural register (test setup).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.invalidate_scans();
        if !r.is_zero() {
            self.arch_rf[r.index() as usize] = v;
            self.spec_rf[r.index() as usize] = v;
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Harvests the run's microarchitectural counters: cycles, retired
    /// instructions, per-structure trace-event counts, and each storage
    /// element's occupancy at this instant (after a finished run, the
    /// residue surface the checker scans).
    pub fn counters(&self) -> UarchCounters {
        let stats = self.trace.stats();
        let cfg = &self.config;
        let count_valid = |it: usize| it as u64;
        let occupancy = |s: Structure| -> u64 {
            match s {
                Structure::RegFile => count_valid(self.arch_rf.iter().filter(|&&v| v != 0).count()),
                Structure::L1d => count_valid(self.lsu.l1d.valid_lines().count()),
                Structure::L1i => count_valid(self.l1i.valid_lines().count()),
                Structure::L2 => count_valid(self.lsu.l2.valid_lines().count()),
                Structure::Lfb => {
                    count_valid(self.lsu.lfb.entries().iter().filter(|e| e.valid).count())
                }
                // The store queue is ROB-resident; it is empty whenever the
                // pipeline is (any finished run).
                Structure::StoreQueue => 0,
                Structure::StoreBuffer => count_valid(self.lsu.store_buffer_len()),
                Structure::Dtlb => count_valid(self.lsu.dtlb.valid_count()),
                Structure::Itlb => count_valid(self.itlb.valid_count()),
                Structure::PtwCache => count_valid(
                    self.lsu
                        .ptw_cache
                        .entries()
                        .iter()
                        .filter(|e| e.valid)
                        .count(),
                ),
                Structure::Ubtb => {
                    count_valid(self.ubtb.entries().iter().filter(|e| e.valid).count())
                }
                Structure::Ftb => {
                    count_valid(self.ftb.entries().iter().filter(|e| e.valid).count())
                }
                Structure::Bht => {
                    count_valid(self.bht.counters().iter().filter(|&&c| c != 1).count())
                }
                Structure::Hpc => count_valid(self.csr.hpm.iter().filter(|&&v| v != 0).count()),
            }
        };
        let capacity = |s: Structure| -> u64 {
            (match s {
                Structure::RegFile => 32,
                Structure::L1d | Structure::L1i => cfg.l1d_sets * cfg.l1d_ways,
                Structure::L2 => cfg.l2_sets * cfg.l2_ways,
                Structure::Lfb => cfg.lfb_entries,
                Structure::StoreQueue => cfg.store_queue_entries,
                Structure::StoreBuffer => cfg.store_buffer_entries,
                Structure::Dtlb => cfg.dtlb_entries,
                Structure::Itlb => cfg.itlb_entries,
                Structure::PtwCache => cfg.ptw_cache_entries,
                Structure::Ubtb => cfg.ubtb_entries,
                Structure::Ftb => cfg.ftb_sets * cfg.ftb_ways,
                Structure::Bht => self.bht.counters().len(),
                Structure::Hpc => cfg.hpm_counters,
            }) as u64
        };
        UarchCounters {
            cycles: self.cycle,
            instructions_retired: self.retired,
            trace_events: stats.total(),
            counter_bumps: stats.counter_bumps(),
            domain_switches: stats.domain_switches(),
            structures: Structure::all()
                .iter()
                .map(|&s| StructureCounters {
                    structure: s,
                    fills: stats.fills(s),
                    writes: stats.writes(s),
                    reads: stats.reads(s),
                    flushes: stats.flushes(s),
                    occupancy_at_exit: occupancy(s),
                    capacity: capacity(s),
                })
                .collect(),
        }
    }

    /// The next fetch PC (diagnostics).
    pub fn fetch_pc(&self) -> u64 {
        self.fetch_pc
    }

    /// Schedules a machine external interrupt to assert at `cycle`.
    pub fn schedule_external_interrupt(&mut self, cycle: u64) {
        self.ext_irq_at = Some(cycle);
    }

    /// Runs until halt or `max_cycles`. After a halt, the LSU is ticked
    /// until quiescent so buffered committed stores reach memory (hardware
    /// drains its store buffer eventually; tests inspect raw memory).
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        self.invalidate_scans();
        self.invalidate_fetch_memo();
        self.lsu.note_external_change();
        while !self.halted {
            if self.cycle >= max_cycles {
                return RunExit::CycleLimit;
            }
            self.step();
        }
        self.drain();
        RunExit::Halted
    }

    /// [`Core::run`] with a periodic observer: `on_batch` is invoked after
    /// every `batch` simulated cycles and once on exit, with the core
    /// inspectable in between. The stepping is bit-identical to a single
    /// `run(max_cycles)` call — the hook only partitions the same cycle
    /// sequence — so tracers can sample progress (cycle counters, stall
    /// state) without perturbing the simulation.
    pub fn run_batched(
        &mut self,
        max_cycles: u64,
        batch: u64,
        on_batch: &mut dyn FnMut(&Core),
    ) -> RunExit {
        let batch = batch.max(1);
        loop {
            let target = max_cycles.min(self.cycle.saturating_add(batch));
            let exit = self.run(target);
            on_batch(self);
            if exit == RunExit::Halted || self.cycle >= max_cycles {
                return exit;
            }
        }
    }

    /// Ticks the LSU (without advancing the pipeline) until all in-flight
    /// memory work completes.
    pub fn drain(&mut self) {
        let mut budget = 4_000_000u64;
        while !self.lsu.quiescent() && budget > 0 {
            self.cycle += 1;
            budget -= 1;
            self.lsu.tick(
                self.cycle,
                self.priv_level,
                self.domain,
                &mut self.csr,
                &mut self.mem,
                &mut self.trace,
            );
        }
    }

    /// Advances the core by one cycle.
    pub fn step(&mut self) {
        if self.halted {
            return;
        }
        self.cycle += 1;
        self.csr.cycle = self.cycle;
        if let Some(at) = self.ext_irq_at {
            if self.cycle >= at {
                self.csr.mip |= 1 << Interrupt::MachineExternal.number();
            }
        }
        self.lsu.tick(
            self.cycle,
            self.priv_level,
            self.domain,
            &mut self.csr,
            &mut self.mem,
            &mut self.trace,
        );
        self.collect_lsu_completions();
        if self.take_interrupt_if_pending() {
            return;
        }
        self.execute_stage();
        self.commit_stage();
        self.fetch_stage();
    }

    // ------------------------------------------------------------------
    // Operand scoreboard
    // ------------------------------------------------------------------

    /// The value of `r` as seen by the instruction at ROB position `pos`,
    /// or `None` if an older in-flight writer has not completed.
    fn source_value(&self, pos: usize, r: Reg) -> Option<u64> {
        if r.is_zero() {
            return Some(0);
        }
        for j in (0..pos).rev() {
            let e = &self.rob[j];
            let dest = match e.inst {
                Ok(i) => i.dest(),
                Err(_) => None,
            };
            if dest == Some(r) {
                return if e.state == EntryState::Done {
                    e.result
                } else {
                    None
                };
            }
        }
        Some(self.arch_rf[r.index() as usize])
    }

    fn operands_ready(&self, pos: usize) -> bool {
        match self.rob[pos].inst {
            Ok(i) => i
                .sources()
                .iter()
                .all(|&r| self.source_value(pos, r).is_some()),
            Err(_) => true,
        }
    }

    /// Is this entry the youngest writer of its destination register?
    fn is_youngest_writer(&self, pos: usize) -> bool {
        let Ok(inst) = self.rob[pos].inst else {
            return false;
        };
        let Some(d) = inst.dest() else { return false };
        !self
            .rob
            .iter()
            .skip(pos + 1)
            .any(|e| matches!(e.inst, Ok(i) if i.dest() == Some(d)))
    }

    fn writeback(&mut self, pos: usize, value: u64) {
        // A completed writer can only unblock *younger* scans — operand
        // and store-queue scans read strictly older entries, so memos of
        // entries ahead of `pos` stay valid.
        self.invalidate_scans_after(pos);
        self.rob[pos].result = Some(value);
        let Ok(inst) = self.rob[pos].inst else { return };
        let Some(d) = inst.dest() else { return };
        if self.is_youngest_writer(pos) {
            self.spec_rf[d.index() as usize] = value;
        }
        let (cycle, priv_level, domain, pc) =
            (self.cycle, self.priv_level, self.domain, self.rob[pos].pc);
        self.trace.record(TraceEvent {
            cycle,
            priv_level,
            domain,
            pc: Some(pc),
            structure: Structure::RegFile,
            kind: TraceEventKind::Write {
                index: d.index() as u64,
                value,
                tag: None,
            },
        });
    }

    fn rebuild_spec_rf(&mut self) {
        self.spec_rf = self.arch_rf;
        for j in 0..self.rob.len() {
            if self.rob[j].state == EntryState::Done {
                if let (Ok(inst), Some(v)) = (self.rob[j].inst, self.rob[j].result) {
                    if let Some(d) = inst.dest() {
                        self.spec_rf[d.index() as usize] = v;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // LSU completion collection
    // ------------------------------------------------------------------

    fn collect_lsu_completions(&mut self) {
        for c in self.lsu.take_completions() {
            if let Some(pos) = self.rob.iter().position(|e| e.seq == c.seq) {
                let mut v = c.value;
                if let Some(bits) = self.rob[pos].sign_extend_from {
                    if bits < 64 {
                        let shift = 64 - bits;
                        v = ((v << shift) as i64 >> shift) as u64;
                    }
                }
                self.rob[pos].exception = c.exception;
                self.rob[pos].state = EntryState::Done;
                // Transient writeback happens regardless of a recorded
                // exception — the lazy handling that enables D4-D8.
                self.writeback(pos, v);
            }
        }
        for c in self.lsu.take_xlate_completions() {
            if let Some(pos) = self.rob.iter().position(|e| e.seq == c.seq) {
                // A store turning Done can unblock younger loads' scans
                // — and only those; scans never read younger entries.
                self.invalidate_scans_after(pos);
                self.rob[pos].exception = c.exception;
                if let Some(s) = self.rob[pos].store.as_mut() {
                    s.pa = c.pa;
                }
                self.rob[pos].state = EntryState::Done;
            }
        }
    }

    // ------------------------------------------------------------------
    // Execute stage
    // ------------------------------------------------------------------

    /// Disambiguates a load at ROB position `pos` against older in-flight
    /// stores. Forwarding applies only to exact-width matches in
    /// untranslated mode with read permission — anything murkier (unknown
    /// store address, partial overlap, active translation, PMP denial)
    /// conservatively stalls until the store drains and the normal probe
    /// path (with its full checks) runs.
    fn scan_store_queue(&self, pos: usize, vaddr: u64, width: u64) -> SqScan {
        for j in (0..pos).rev() {
            let e = &self.rob[j];
            if !matches!(e.inst, Ok(Inst::Store { .. })) {
                continue;
            }
            let Some(st) = e.store else {
                // Address not yet computed: cannot disambiguate.
                return SqScan::Wait;
            };
            let overlap = vaddr < st.vaddr + st.width && st.vaddr < vaddr + width;
            if !overlap {
                continue;
            }
            let exact = st.vaddr == vaddr && st.width == width;
            let translated = self.priv_level != PrivLevel::Machine && self.csr.satp.is_sv39();
            if exact
                && !translated
                && self
                    .csr
                    .pmp
                    .allows(vaddr, width, AccessKind::Read, self.priv_level)
            {
                return SqScan::Forward(st.value);
            }
            return SqScan::Wait;
        }
        SqScan::Clear
    }

    fn execute_stage(&mut self) {
        let fast = self.fast_path;
        let mut issued = 0usize;
        // Dirty-scan elision: every waiting entry below the watermark was
        // scanned after the last change to anything its scan reads, and
        // stalled — a rescan would return the same verdict. The walk
        // starts at the watermark, which during a long stall sits past
        // the whole ROB and skips the stage outright.
        let mut pos = if fast {
            let start = self.scan_from.min(self.rob.len());
            self.scan_skips += start as u64;
            start
        } else {
            0
        };
        while pos < self.rob.len() && issued < self.config.width * 2 {
            if self.rob[pos].state != EntryState::Waiting || self.rob[pos].serializing {
                pos += 1;
                continue;
            }
            if fast {
                self.scan_checks += 1;
            }
            if !self.operands_ready(pos) {
                pos += 1;
                continue;
            }
            let inst = match self.rob[pos].inst {
                Ok(i) => i,
                Err(_) => {
                    // Illegal instruction: raise at commit.
                    self.rob[pos].state = EntryState::Done;
                    pos += 1;
                    continue;
                }
            };
            let pc = self.rob[pos].pc;
            let src = |core: &Core, r: Reg| core.source_value(pos, r).expect("checked ready");
            match inst {
                Inst::Lui { imm20, .. } => {
                    let v = ((imm20 as i64) << 12) as u64;
                    self.rob[pos].state = EntryState::Done;
                    self.writeback(pos, v);
                    issued += 1;
                }
                Inst::Auipc { imm20, .. } => {
                    let v = pc.wrapping_add(((imm20 as i64) << 12) as u64);
                    self.rob[pos].state = EntryState::Done;
                    self.writeback(pos, v);
                    issued += 1;
                }
                Inst::AluImm {
                    op, rs1, imm, word, ..
                } => {
                    let v = op.eval(src(self, rs1), imm as i64 as u64, word);
                    self.rob[pos].state = EntryState::Done;
                    self.writeback(pos, v);
                    issued += 1;
                }
                Inst::AluReg {
                    op, rs1, rs2, word, ..
                } => {
                    let v = op.eval(src(self, rs1), src(self, rs2), word);
                    self.rob[pos].state = EntryState::Done;
                    self.writeback(pos, v);
                    issued += 1;
                }
                Inst::Jal { offset, .. } => {
                    let target = pc.wrapping_add(offset as i64 as u64);
                    self.rob[pos].state = EntryState::Done;
                    self.writeback(pos, pc + 4);
                    self.resolve_control_flow(pos, target, true);
                    issued += 1;
                    // Positions after `pos` may have been squashed.
                    pos += 1;
                    continue;
                }
                Inst::Jalr { rs1, offset, .. } => {
                    let target = src(self, rs1).wrapping_add(offset as i64 as u64) & !1;
                    self.rob[pos].state = EntryState::Done;
                    self.writeback(pos, pc + 4);
                    self.resolve_control_flow(pos, target, true);
                    issued += 1;
                    pos += 1;
                    continue;
                }
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset,
                } => {
                    let taken = cond.taken(src(self, rs1), src(self, rs2));
                    let target = if taken {
                        pc.wrapping_add(offset as i64 as u64)
                    } else {
                        pc + 4
                    };
                    self.rob[pos].state = EntryState::Done;
                    if taken {
                        self.csr.hpc_bump(HpcEvent::BranchTaken, self.domain);
                        self.record_hpc_bump(HpcEvent::BranchTaken, Some(pc));
                    }
                    self.train_predictors(pc, target, taken);
                    self.resolve_control_flow(pos, target, taken);
                    issued += 1;
                    pos += 1;
                    continue;
                }
                Inst::Load {
                    width,
                    signed,
                    rs1,
                    offset,
                    ..
                } => {
                    let vaddr = src(self, rs1).wrapping_add(offset as i64 as u64);
                    let bytes = width.bytes();
                    match self.scan_store_queue(pos, vaddr, bytes) {
                        SqScan::Wait => {
                            pos += 1;
                            continue;
                        }
                        SqScan::Forward(raw) => {
                            // Store-queue forwarding: the youngest older
                            // store supplies the bytes without a cache
                            // access.
                            let mut v = raw & width_mask(bytes);
                            if signed && bytes < 8 {
                                let shift = 64 - bytes * 8;
                                v = ((v << shift) as i64 >> shift) as u64;
                            }
                            self.csr.hpc_bump(HpcEvent::StoreToLoadForward, self.domain);
                            self.record_hpc_bump(HpcEvent::StoreToLoadForward, Some(pc));
                            let (cycle, priv_level, domain) =
                                (self.cycle, self.priv_level, self.domain);
                            self.trace.record(TraceEvent {
                                cycle,
                                priv_level,
                                domain,
                                pc: Some(pc),
                                structure: Structure::StoreQueue,
                                kind: TraceEventKind::Read {
                                    index: vaddr,
                                    value: v,
                                },
                            });
                            self.rob[pos].state = EntryState::Done;
                            self.writeback(pos, v);
                            issued += 1;
                        }
                        SqScan::Clear => {
                            self.rob[pos].sign_extend_from = signed.then_some(bytes * 8);
                            let req = LoadRequest {
                                seq: self.rob[pos].seq,
                                vaddr,
                                width: bytes,
                                priv_level: self.priv_level,
                                sum: self.csr.mstatus.0 & Mstatus::SUM_BIT != 0,
                                satp: self.csr.satp,
                            };
                            self.rob[pos].state = EntryState::Executing;
                            self.lsu.start_load(req, self.cycle);
                            issued += 1;
                        }
                    }
                }
                Inst::Store {
                    width,
                    rs2,
                    rs1,
                    offset,
                } => {
                    let vaddr = src(self, rs1).wrapping_add(offset as i64 as u64);
                    let value = src(self, rs2);
                    let bytes = width.bytes();
                    // The store's address is now known: younger loads'
                    // disambiguation verdicts can change (older entries
                    // never scan this one).
                    self.invalidate_scans_after(pos);
                    self.rob[pos].store = Some(StoreInfo {
                        pa: None,
                        vaddr,
                        value,
                        width: bytes,
                    });
                    let (cycle, priv_level, domain) = (self.cycle, self.priv_level, self.domain);
                    self.trace.record(TraceEvent {
                        cycle,
                        priv_level,
                        domain,
                        pc: Some(pc),
                        structure: Structure::StoreQueue,
                        kind: TraceEventKind::Write {
                            index: vaddr,
                            value,
                            tag: Some(bytes),
                        },
                    });
                    let req = XlateRequest {
                        seq: self.rob[pos].seq,
                        vaddr,
                        width: bytes,
                        priv_level: self.priv_level,
                        sum: self.csr.mstatus.0 & Mstatus::SUM_BIT != 0,
                        satp: self.csr.satp,
                    };
                    self.rob[pos].state = EntryState::Executing;
                    self.lsu.start_store_xlate(req);
                    issued += 1;
                }
                // Serializing instructions execute at commit.
                _ => {}
            }
            pos += 1;
        }
        if fast {
            // Everything below `pos` has now been scanned against current
            // state: a mid-walk writeback or store resolution at `p` only
            // invalidates entries younger than `p`, which the walk
            // visited afterwards. (`min` guards against a mid-walk
            // squash; an early exit on the issue budget leaves the
            // watermark at the first unvisited entry.)
            self.scan_from = pos.min(self.rob.len());
        }
    }

    fn record_hpc_bump(&mut self, event: HpcEvent, pc: Option<u64>) {
        let (cycle, priv_level, domain) = (self.cycle, self.priv_level, self.domain);
        self.trace.record(TraceEvent {
            cycle,
            priv_level,
            domain,
            pc,
            structure: Structure::Hpc,
            kind: TraceEventKind::CounterBump { event },
        });
    }

    fn train_predictors(&mut self, pc: u64, target: u64, taken: bool) {
        let (cycle, priv_level, domain) = (self.cycle, self.priv_level, self.domain);
        self.bht.train(pc, taken);
        self.trace.record(TraceEvent {
            cycle,
            priv_level,
            domain,
            pc: Some(pc),
            structure: Structure::Bht,
            kind: TraceEventKind::Write {
                index: pc >> 2,
                value: taken as u64,
                tag: None,
            },
        });
        if taken {
            let idx = self.ubtb.train(pc, target, taken, domain);
            self.trace.record(TraceEvent {
                cycle,
                priv_level,
                domain,
                pc: Some(pc),
                structure: Structure::Ubtb,
                kind: TraceEventKind::Write {
                    index: idx as u64,
                    value: target,
                    tag: Some(self.ubtb.tag(pc)),
                },
            });
            self.ftb.train(pc, target, taken, domain);
            self.trace.record(TraceEvent {
                cycle,
                priv_level,
                domain,
                pc: Some(pc),
                structure: Structure::Ftb,
                kind: TraceEventKind::Write {
                    index: pc >> 2,
                    value: target,
                    tag: None,
                },
            });
        }
    }

    /// Compares the resolved next PC with the fetch-time prediction and
    /// redirects (squashing younger work) on a mismatch.
    fn resolve_control_flow(&mut self, pos: usize, actual_next: u64, _taken: bool) {
        if self.rob[pos].predicted_next == actual_next {
            return;
        }
        self.csr.hpc_bump(HpcEvent::BranchMispredict, self.domain);
        let pc = self.rob[pos].pc;
        self.record_hpc_bump(HpcEvent::BranchMispredict, Some(pc));
        let squash_seq = self.rob[pos].seq + 1;
        while self.rob.len() > pos + 1 {
            self.rob.pop_back();
        }
        self.lsu.squash_after(squash_seq);
        self.rebuild_spec_rf();
        self.fetch_pc = actual_next;
        self.fetch_stalled = false;
    }

    // ------------------------------------------------------------------
    // Commit stage
    // ------------------------------------------------------------------

    fn commit_stage(&mut self) {
        for _ in 0..self.config.width {
            let Some(head) = self.rob.front() else { return };
            if head.serializing {
                if !self.operands_ready(0) {
                    return;
                }
                if !head.sys_executed {
                    self.execute_system_at_head();
                }
                // The system instruction may have scheduled a delayed flush.
                let head = self.rob.front().expect("head persists");
                if !head.sys_executed {
                    // A WFI still waiting for its interrupt.
                    return;
                }
                if self.cycle < head.commit_not_before {
                    return;
                }
                if let Some(e) = head.exception {
                    let pc = head.pc;
                    self.take_exception(e, pc);
                    return;
                }
                self.retire_head();
                // Serializing instructions redirect fetch themselves; only
                // one commits per cycle.
                return;
            }
            if head.state != EntryState::Done {
                return;
            }
            if let Some(e) = head.exception {
                let pc = head.pc;
                self.take_exception(e, pc);
                return;
            }
            self.retire_head();
        }
    }

    fn retire_head(&mut self) {
        // Retiring shifts every ROB position, moves the head's result
        // into the architectural file, and releases a head store to the
        // store buffer — all of which scans read.
        self.invalidate_scans();
        let head = self.rob.pop_front().expect("retire requires a head");
        if let (Ok(inst), Some(v)) = (head.inst, head.result) {
            if let Some(d) = inst.dest() {
                self.arch_rf[d.index() as usize] = v;
            }
        }
        if self.retire_probe {
            if let Ok(inst) = head.inst {
                self.retire_log.push(RetiredInst {
                    seq: head.seq,
                    pc: head.pc,
                    inst,
                    result: inst.dest().and(head.result),
                });
            }
        }
        if let Some(s) = head.store {
            let pa = s.pa.expect("store without exception has a PA");
            self.lsu.commit_store(
                pa,
                s.value,
                s.width,
                self.domain,
                self.cycle,
                &mut self.trace,
                self.priv_level,
            );
        }
        self.retired += 1;
        self.csr.instret += 1;
        self.csr.hpc_bump(HpcEvent::InstRet, self.domain);
        if matches!(head.inst, Ok(Inst::Ebreak)) {
            self.halted = true;
        }
    }

    // ------------------------------------------------------------------
    // System / CSR instructions (executed at ROB head)
    // ------------------------------------------------------------------

    fn execute_system_at_head(&mut self) {
        // Serializing instructions may touch CSRs (satp, PMP, mstatus.SUM),
        // privilege, or the head entry itself — all scan inputs, and all
        // fetch-memo inputs (satp, priv, PMP, fence.i's L1I flush). The
        // PMP also feeds stalled loads' access-retry verdicts in the LSU.
        self.invalidate_scans();
        self.invalidate_fetch_memo();
        self.lsu.note_external_change();
        let head = self.rob.front().expect("caller checked");
        let pc = head.pc;
        let seq = head.seq;
        let inst = match head.inst {
            Ok(i) => i,
            Err(w) => {
                self.rob[0].exception = Some(Exception::IllegalInstruction(w));
                self.rob[0].sys_executed = true;
                self.rob[0].state = EntryState::Done;
                return;
            }
        };
        self.rob[0].sys_executed = true;
        self.rob[0].state = EntryState::Done;
        match inst {
            Inst::Ecall => {
                self.rob[0].exception = Some(Exception::Ecall(self.priv_level));
            }
            Inst::Ebreak => {
                // Platform convention: ebreak halts the test; retire below.
                self.rob[0].commit_not_before = 0;
            }
            Inst::Mret => {
                if self.priv_level != PrivLevel::Machine {
                    self.rob[0].exception =
                        Some(Exception::IllegalInstruction(Inst::Mret.encode()));
                    return;
                }
                let mpp = self.csr.mstatus.mpp();
                let mpie = self.csr.mstatus.0 & Mstatus::MPIE_BIT != 0;
                self.csr.mstatus.set_mie(mpie);
                self.csr.mstatus.0 |= Mstatus::MPIE_BIT;
                self.csr.mstatus.set_mpp(PrivLevel::User);
                self.priv_level = mpp;
                if let Some(d) = self.domain_before_trap.take() {
                    // Firmware did not declare a switch: returning to the
                    // interrupted world.
                    self.set_domain(d);
                }
                // Context-switch mitigations also hook the firmware-exit
                // boundary — state the monitor touched (e.g. attestation
                // keys) must not stay behind.
                self.apply_domain_switch_mitigations();
                self.redirect_after_head(self.csr.mepc, seq);
            }
            Inst::Sret => {
                if self.priv_level == PrivLevel::User {
                    self.rob[0].exception =
                        Some(Exception::IllegalInstruction(Inst::Sret.encode()));
                    return;
                }
                let spp = self.csr.mstatus.spp();
                let spie = self.csr.mstatus.0 & Mstatus::SPIE_BIT != 0;
                self.csr.mstatus.set_sie(spie);
                self.csr.mstatus.0 |= Mstatus::SPIE_BIT;
                self.csr.mstatus.set_spp(PrivLevel::User);
                self.priv_level = spp;
                self.redirect_after_head(self.csr.sepc, seq);
            }
            Inst::Wfi => {
                let pending = self.csr.mip & self.csr.mie;
                if pending == 0 {
                    // Spin at the head until an interrupt is pending.
                    self.rob[0].sys_executed = false;
                    self.rob[0].state = EntryState::Waiting;
                }
            }
            Inst::Fence => {
                if !self.lsu.stores_drained() {
                    // Fences order memory operations: hold at the head until
                    // all committed stores have reached the L1D.
                    self.rob[0].sys_executed = false;
                    self.rob[0].state = EntryState::Waiting;
                }
            }
            Inst::FenceI => {
                // fence.i synchronizes the instruction stream with memory.
                self.l1i.flush_all();
                self.decode_cache.flush();
            }
            Inst::SfenceVma => {
                self.lsu
                    .sfence(self.cycle, &mut self.trace, self.priv_level, self.domain);
                self.itlb.flush_all();
                let (cycle, priv_level, domain) = (self.cycle, self.priv_level, self.domain);
                self.trace.record(TraceEvent {
                    cycle,
                    priv_level,
                    domain,
                    pc: Some(pc),
                    structure: Structure::Itlb,
                    kind: TraceEventKind::Flush,
                });
            }
            Inst::Csr {
                op,
                rd,
                src,
                csr: addr,
            } => {
                self.execute_csr(op, rd, src, addr, pc);
            }
            _ => unreachable!("non-serializing instruction at system execute"),
        }
        if self.rob[0].sys_executed
            && self.rob[0].exception.is_none()
            && !matches!(inst, Inst::Mret | Inst::Sret)
        {
            // Serializing instructions resume fetch at pc + 4 (a WFI that is
            // still waiting has sys_executed reset and does not redirect).
            self.redirect_after_head(pc + 4, seq);
        }
    }

    fn redirect_after_head(&mut self, target: u64, seq: u64) {
        while self.rob.len() > 1 {
            self.rob.pop_back();
        }
        self.lsu.squash_after(seq + 1);
        self.rebuild_spec_rf();
        self.fetch_pc = target;
        self.fetch_stalled = false;
    }

    fn execute_csr(&mut self, op: CsrOp, rd: Reg, src: CsrSrc, addr: CsrAddr, pc: u64) {
        // The platform domain register is intercepted before the CSR file.
        if addr == MDOMAIN {
            if self.priv_level != PrivLevel::Machine {
                self.rob[0].exception = Some(Exception::IllegalInstruction(0));
                return;
            }
            // A read during trap handling reports the interrupted world
            // (the SBI caller), not the monitor itself.
            let old = self.domain_before_trap.unwrap_or(self.domain).encode();
            if let CsrSrc::Reg(r) = src {
                if op == CsrOp::Rw || !r.is_zero() {
                    let v = self.source_value(0, r).expect("head operands ready");
                    let new = apply_csr_op(op, old, v);
                    self.domain_before_trap = None;
                    self.set_domain(decode_domain(new));
                }
            } else if let CsrSrc::Imm(i) = src {
                if op == CsrOp::Rw || i != 0 {
                    let new = apply_csr_op(op, old, i as u64);
                    self.domain_before_trap = None;
                    self.set_domain(decode_domain(new));
                }
            }
            self.writeback(0, old);
            return;
        }
        let src_val = match src {
            CsrSrc::Reg(r) => self.source_value(0, r).expect("head operands ready"),
            CsrSrc::Imm(i) => i as u64,
        };
        let wants_read = !(op == CsrOp::Rw && rd.is_zero());
        let wants_write = match (op, src) {
            (CsrOp::Rw, _) => true,
            (_, CsrSrc::Reg(r)) => !r.is_zero(),
            (_, CsrSrc::Imm(i)) => i != 0,
        };
        let old = if wants_read || wants_write {
            match self.csr.read(addr, self.priv_level) {
                Ok(v) => v,
                Err(CsrError::NotPrivileged) if self.config.csr_read_transient_writeback => {
                    // XiangShan: the privileged value is transiently written
                    // back before the lazy privilege check flushes the
                    // instruction (paper Figure 6). The value lingers for
                    // CSR_FLUSH_DELAY cycles before the exception is raised.
                    if let Ok(v) = self.csr.read_unchecked(addr, PrivLevel::Machine) {
                        self.writeback(0, v);
                        if is_hpc_read(addr) {
                            let (cycle, priv_level, domain) =
                                (self.cycle, self.priv_level, self.domain);
                            self.trace.record(TraceEvent {
                                cycle,
                                priv_level,
                                domain,
                                pc: Some(pc),
                                structure: Structure::Hpc,
                                kind: TraceEventKind::Read {
                                    index: hpc_read_index(addr),
                                    value: v,
                                },
                            });
                        }
                    }
                    self.rob[0].exception = Some(Exception::IllegalInstruction(0));
                    self.rob[0].commit_not_before = self.cycle + CSR_FLUSH_DELAY;
                    return;
                }
                Err(_) => {
                    self.rob[0].exception = Some(Exception::IllegalInstruction(0));
                    return;
                }
            }
        } else {
            0
        };
        if wants_write {
            let new = apply_csr_op(op, old, src_val);
            match self.csr.write(addr, new, self.priv_level) {
                Ok(effect) => {
                    if effect.pmp_reconfigured {
                        self.apply_domain_switch_mitigations();
                    }
                    if (csr::MHPMCOUNTER3..csr::MHPMCOUNTER3 + 29).contains(&addr) {
                        let (cycle, priv_level, domain) =
                            (self.cycle, self.priv_level, self.domain);
                        self.trace.record(TraceEvent {
                            cycle,
                            priv_level,
                            domain,
                            pc: Some(pc),
                            structure: Structure::Hpc,
                            kind: TraceEventKind::Write {
                                index: (addr - csr::MHPMCOUNTER3) as u64,
                                value: new,
                                tag: None,
                            },
                        });
                    }
                    if effect.satp_written {
                        // Real hardware requires sfence.vma; the model keeps
                        // stale TLB entries too (matching hardware), so no
                        // implicit flush here.
                    }
                }
                Err(_) => {
                    self.rob[0].exception = Some(Exception::IllegalInstruction(0));
                    return;
                }
            }
        }
        self.writeback(0, old);
        // Reads of tainted performance counters are the checker's M1 signal;
        // record the read explicitly.
        if wants_read && is_hpc_read(addr) {
            let (cycle, priv_level, domain) = (self.cycle, self.priv_level, self.domain);
            self.trace.record(TraceEvent {
                cycle,
                priv_level,
                domain,
                pc: Some(pc),
                structure: Structure::Hpc,
                kind: TraceEventKind::Read {
                    index: hpc_read_index(addr),
                    value: old,
                },
            });
        }
    }

    /// Applies the mitigation flushes at a domain boundary: every PMP
    /// reconfiguration (Keystone's switch marker, paper §8) and every
    /// firmware exit (`mret`).
    fn apply_domain_switch_mitigations(&mut self) {
        let m = self.config.mitigations;
        let (cycle, priv_level, domain) = (self.cycle, self.priv_level, self.domain);
        if m.flush_l1d_on_domain_switch {
            // A purge-style flush (MI6's approach): complete pending
            // committed stores first, otherwise they would re-pollute the
            // invalidated cache moments later.
            self.lsu.drain_all_stores(&mut self.mem);
            self.lsu
                .flush_l1d(cycle, &mut self.trace, priv_level, domain);
        }
        if m.flush_lfb_on_domain_switch {
            self.lsu
                .flush_lfb(cycle, &mut self.trace, priv_level, domain);
        }
        if m.flush_store_buffer_on_domain_switch {
            self.lsu
                .flush_store_buffer(&mut self.mem, cycle, &mut self.trace, priv_level, domain);
        }
        if m.flush_bpu_on_domain_switch {
            self.ubtb.flush_all();
            self.ftb.flush_all();
            self.bht.flush_all();
            for s in [Structure::Ubtb, Structure::Ftb, Structure::Bht] {
                self.trace.record(TraceEvent {
                    cycle,
                    priv_level,
                    domain,
                    pc: None,
                    structure: s,
                    kind: TraceEventKind::Flush,
                });
            }
        }
        if m.clear_hpc_on_domain_switch {
            self.csr.hpc_clear();
            self.trace.record(TraceEvent {
                cycle,
                priv_level,
                domain,
                pc: None,
                structure: Structure::Hpc,
                kind: TraceEventKind::Flush,
            });
        }
    }

    fn set_domain(&mut self, d: Domain) {
        if d != self.domain {
            self.domain = d;
            let (cycle, priv_level) = (self.cycle, self.priv_level);
            self.trace.record(TraceEvent {
                cycle,
                priv_level,
                domain: d,
                pc: None,
                structure: Structure::Hpc, // marker events carry no structure; HPC is benign
                kind: TraceEventKind::DomainSwitch { to: d },
            });
        }
    }

    // ------------------------------------------------------------------
    // Traps
    // ------------------------------------------------------------------

    fn take_exception(&mut self, e: Exception, epc: u64) {
        self.csr.hpc_bump(HpcEvent::Exception, self.domain);
        self.record_hpc_bump(HpcEvent::Exception, Some(epc));
        self.enter_trap(e.cause(), e.tval(), epc);
    }

    fn take_interrupt_if_pending(&mut self) -> bool {
        let pending = self.csr.mip & self.csr.mie;
        if pending & (1 << Interrupt::MachineExternal.number()) == 0 {
            return false;
        }
        let enabled = self.priv_level != PrivLevel::Machine || self.csr.mstatus.mie();
        if !enabled {
            return false;
        }
        // XiangShan's context snapshot includes speculative writebacks — the
        // transient CSR value survives into the saved context (Figure 6).
        if self.config.interrupt_snapshot_speculative {
            self.arch_rf = self.spec_rf;
            self.arch_rf[0] = 0;
        }
        let epc = self.rob.front().map(|e| e.pc).unwrap_or(self.fetch_pc);
        self.csr.mip &= !(1 << Interrupt::MachineExternal.number());
        self.ext_irq_at = None;
        self.enter_trap(Interrupt::MachineExternal.cause(), 0, epc);
        true
    }

    fn enter_trap(&mut self, cause: u64, tval: u64, epc: u64) {
        self.invalidate_scans();
        self.invalidate_fetch_memo();
        self.lsu.note_external_change();
        self.csr.mepc = epc;
        self.csr.mcause = cause;
        self.csr.mtval = tval;
        let mie = self.csr.mstatus.mie();
        if mie {
            self.csr.mstatus.0 |= Mstatus::MPIE_BIT;
        } else {
            self.csr.mstatus.0 &= !Mstatus::MPIE_BIT;
        }
        self.csr.mstatus.set_mie(false);
        self.csr.mstatus.set_mpp(self.priv_level);
        self.priv_level = PrivLevel::Machine;
        // The M-mode trap handler is the security monitor by construction;
        // remember whose world was interrupted so MDOMAIN reads report the
        // caller and mret can restore it.
        self.domain_before_trap = Some(self.domain);
        self.set_domain(Domain::SecurityMonitor);
        self.rob.clear();
        self.lsu.squash_after(0);
        self.rebuild_spec_rf();
        self.fetch_pc = self.csr.mtvec;
        self.fetch_stalled = false;
    }

    // ------------------------------------------------------------------
    // Fetch / dispatch
    // ------------------------------------------------------------------

    fn fetch_stage(&mut self) {
        let mut dispatched = 0usize;
        while dispatched < self.config.width
            && self.rob.len() < self.config.rob_entries
            && !self.fetch_stalled
            && !self.halted
        {
            let pc = self.fetch_pc;
            if self.fetch_fence == Some(pc) {
                self.fetch_fence_hit = true;
                return;
            }
            // Fast path: the line memo serves the word, the translation,
            // and the decode without touching the ITLB, PMP, or L1I.
            let (word, pa, fetch_exc, predecoded) = match self.fetch_memo_probe(pc) {
                Some((w, pa, d)) => (w, pa, None, Some(d)),
                None => {
                    let (w, pa, e) = self.fetch_word(pc);
                    (w, pa, e, None)
                }
            };
            let decoded = match fetch_exc {
                Some(e) => {
                    // Dispatch a poisoned entry that raises at commit.
                    self.push_entry(pc, pc + 4, Err(0), Some(e), false);
                    self.fetch_stalled = true; // wait for the fault to commit
                    return;
                }
                None => match predecoded {
                    Some(d) => d,
                    // Decode is a pure function of the word, so the
                    // memoized result (validated against the page version
                    // *and* the fetched word itself) is identical to a
                    // fresh decode.
                    None if self.fast_path => {
                        let version = self.mem.page_version(pa);
                        self.decode_cache.decode(pa, version, word)
                    }
                    None => Inst::decode(word).ok(),
                },
            };
            match decoded {
                None => {
                    self.push_entry(
                        pc,
                        pc + 4,
                        Err(word),
                        Some(Exception::IllegalInstruction(word)),
                        false,
                    );
                    self.fetch_stalled = true;
                    return;
                }
                Some(inst) => {
                    let serializing = matches!(
                        inst,
                        Inst::Csr { .. }
                            | Inst::Ecall
                            | Inst::Ebreak
                            | Inst::Mret
                            | Inst::Sret
                            | Inst::Wfi
                            | Inst::Fence
                            | Inst::FenceI
                            | Inst::SfenceVma
                    );
                    let predicted = self.predict_next(pc, inst);
                    self.push_entry(pc, predicted, Ok(inst), None, serializing);
                    self.fetch_pc = predicted;
                    if serializing {
                        self.fetch_stalled = true;
                    }
                    dispatched += 1;
                }
            }
        }
    }

    fn push_entry(
        &mut self,
        pc: u64,
        predicted_next: u64,
        inst: Result<Inst, u32>,
        exception: Option<Exception>,
        serializing: bool,
    ) {
        self.next_seq += 1;
        let state = if exception.is_some() {
            EntryState::Done
        } else {
            EntryState::Waiting
        };
        self.rob.push_back(RobEntry {
            seq: self.next_seq,
            pc,
            predicted_next,
            inst,
            state,
            result: None,
            exception,
            store: None,
            serializing,
            commit_not_before: 0,
            sys_executed: false,
            sign_extend_from: None,
        });
    }

    fn predict_next(&mut self, pc: u64, inst: Inst) -> u64 {
        // The eIBRS-style mitigation: entries trained by a different domain
        // are unreachable (tag mismatch), as if absent.
        let tagged = self.config.mitigations.tag_bpu_with_domain;
        let domain = self.domain;
        let reachable = |e: &crate::btb::BtbEntry| !tagged || e.train_domain == domain;
        match inst {
            Inst::Jal { offset, .. } => pc.wrapping_add(offset as i64 as u64),
            Inst::Jalr { .. } => {
                if let Some(e) = self.ubtb.predict(pc).filter(|e| reachable(e)) {
                    e.target
                } else if let Some(e) = self.ftb.predict(pc).filter(|e| reachable(e)) {
                    e.target
                } else {
                    pc + 4
                }
            }
            Inst::Branch { .. } => {
                // uBTB hit provides the target; direction from the uBTB's
                // last outcome or the BHT.
                if let Some(e) = self.ubtb.predict(pc).filter(|e| reachable(e)) {
                    if e.taken {
                        e.target
                    } else {
                        pc + 4
                    }
                } else if let Some(e) = self.ftb.predict(pc).filter(|e| reachable(e)) {
                    if self.bht.predict_taken(pc) {
                        e.target
                    } else {
                        pc + 4
                    }
                } else {
                    pc + 4
                }
            }
            _ => pc + 4,
        }
    }

    /// Fetches the instruction word at `pc`, performing I-side translation
    /// and PMP checking. Returns the word, the physical address it came
    /// from (decode-cache key), and an optional fetch fault.
    fn fetch_word(&mut self, pc: u64) -> (u32, u64, Option<Exception>) {
        let pa = if self.priv_level != PrivLevel::Machine && self.csr.satp.is_sv39() {
            let va = VirtAddr(pc);
            if !va.is_canonical() {
                return (0, 0, Some(Exception::InstPageFault(pc)));
            }
            let pte = match self.itlb.lookup(va) {
                Some(p) => p,
                None => match self.functional_iwalk(va) {
                    Ok(p) => p,
                    Err(e) => return (0, 0, Some(e)),
                },
            };
            if !pte.permits(AccessKind::Execute, self.priv_level, false) {
                return (0, 0, Some(Exception::InstPageFault(pc)));
            }
            pte.pa().0 | va.page_offset()
        } else {
            pc
        };
        if !self
            .csr
            .pmp
            .allows(pa, 4, AccessKind::Execute, self.priv_level)
        {
            return (0, 0, Some(Exception::InstAccessFault(pc)));
        }
        // I-side cache: fills are traced like every other storage element
        // (fetch latency itself is not modeled; see DESIGN.md).
        if !self.l1i.contains(pa) {
            let line_addr = self.l1i.line_addr(pa);
            let mut data = vec![0u8; self.config.line_size as usize];
            self.mem.read_bytes(line_addr, &mut data);
            self.l1i.fill(line_addr, data.clone(), self.domain);
            let (cycle, priv_level, domain) = (self.cycle, self.priv_level, self.domain);
            self.trace.record(TraceEvent {
                cycle,
                priv_level,
                domain,
                pc: Some(pc),
                structure: Structure::L1i,
                kind: TraceEventKind::Fill {
                    addr: line_addr,
                    data,
                    purpose: crate::trace::FillPurpose::Demand,
                },
            });
        }
        let word = self.l1i.read(pa, 4).expect("line just ensured resident") as u32;
        if self.fast_path {
            self.install_fetch_memo(pc, pa);
        }
        (word, pa, None)
    }

    /// Probes the fetch-line memo for `pc`. A hit returns the word, its
    /// physical address, and the (lazily memoized) decode — eliding the
    /// ITLB probe, PMP check, L1I lookup, and decode the full path would
    /// perform with identical results (see [`FetchMemo`]).
    fn fetch_memo_probe(&mut self, pc: u64) -> Option<(u32, u64, Option<Inst>)> {
        if !self.fast_path || !self.fetch_memo.valid || pc & 3 != 0 {
            return None;
        }
        let m = &mut self.fetch_memo;
        if pc & !(self.config.line_size - 1) != m.va_line {
            return None;
        }
        let off = pc - m.va_line;
        let (word, decoded) = &mut m.slots[(off / 4) as usize];
        let d = match decoded {
            Some(d) => *d,
            None => {
                let d = Inst::decode(*word).ok();
                *decoded = Some(d);
                d
            }
        };
        let hit = (*word, m.pa_line + off, d);
        self.decode_cache.stats.hits += 1;
        Some(hit)
    }

    /// (Re)points the fetch-line memo at the line containing `pa`, which
    /// the full fetch path just translated, permission-checked, and
    /// accessed — so its recency stamps are current and the line is
    /// resident.
    fn install_fetch_memo(&mut self, pc: u64, pa: u64) {
        let line_mask = self.config.line_size - 1;
        let Some(line) = self.l1i.peek_line(pa) else {
            return;
        };
        let m = &mut self.fetch_memo;
        m.valid = true;
        m.va_line = pc & !line_mask;
        m.pa_line = pa & !line_mask;
        m.slots.clear();
        m.slots.extend(
            line.data
                .chunks_exact(4)
                .map(|c| (u32::from_le_bytes([c[0], c[1], c[2], c[3]]), None)),
        );
    }

    /// I-side page walk. Modeled functionally (no cache traffic): the
    /// paper's leakage cases all use the D-side walker; see DESIGN.md.
    fn functional_iwalk(&mut self, va: VirtAddr) -> Result<Pte, Exception> {
        let mut table = self.csr.satp.root_pa();
        for level in (0..SV39_LEVELS).rev() {
            let pa = pte_addr(PhysAddr(table), va, level);
            let pte = Pte(self.mem.read_u64(pa.0));
            if !pte.valid() {
                return Err(Exception::InstPageFault(va.0));
            }
            if pte.is_leaf() {
                if level != 0 {
                    return Err(Exception::InstPageFault(va.0));
                }
                let slot = self.itlb.insert(va, pte, self.domain);
                let (cycle, priv_level, domain) = (self.cycle, self.priv_level, self.domain);
                self.trace.record(TraceEvent {
                    cycle,
                    priv_level,
                    domain,
                    pc: Some(va.0),
                    structure: Structure::Itlb,
                    kind: TraceEventKind::Write {
                        index: slot as u64,
                        value: pte.0,
                        tag: None,
                    },
                });
                return Ok(pte);
            }
            table = pte.pa().0;
        }
        Err(Exception::InstPageFault(va.0))
    }
}

fn width_mask(bytes: u64) -> u64 {
    if bytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (bytes * 8)) - 1
    }
}

fn apply_csr_op(op: CsrOp, old: u64, src: u64) -> u64 {
    match op {
        CsrOp::Rw => src,
        CsrOp::Rs => old | src,
        CsrOp::Rc => old & !src,
    }
}

fn decode_domain(v: u64) -> Domain {
    Domain::decode(v)
}

fn is_hpc_read(addr: CsrAddr) -> bool {
    (csr::HPMCOUNTER3..csr::HPMCOUNTER3 + 29).contains(&addr)
        || (csr::MHPMCOUNTER3..csr::MHPMCOUNTER3 + 29).contains(&addr)
        || addr == csr::CYCLE
        || addr == csr::INSTRET
}

fn hpc_read_index(addr: CsrAddr) -> u64 {
    if (csr::HPMCOUNTER3..csr::HPMCOUNTER3 + 29).contains(&addr) {
        (addr - csr::HPMCOUNTER3) as u64
    } else if (csr::MHPMCOUNTER3..csr::MHPMCOUNTER3 + 29).contains(&addr) {
        (addr - csr::MHPMCOUNTER3) as u64
    } else {
        u64::MAX // cycle/instret: not a programmable counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_isa::asm::Assembler;

    const BASE: u64 = 0x8000_0000;

    fn core_with(cfg: CoreConfig, build: impl FnOnce(&mut Assembler)) -> Core {
        let mut asm = Assembler::new(BASE);
        build(&mut asm);
        let words = asm.assemble().expect("assemble");
        let mut mem = Memory::new();
        mem.load_words(BASE, &words);
        Core::new(cfg, mem, BASE)
    }

    fn run(core: &mut Core) {
        assert_eq!(core.run(200_000), RunExit::Halted, "program must halt");
    }

    #[test]
    fn arithmetic_program_retires() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.li(Reg::A0, 20);
            a.li(Reg::A1, 22);
            a.add(Reg::A2, Reg::A0, Reg::A1);
            a.inst(Inst::Ebreak);
        });
        run(&mut core);
        assert_eq!(core.reg(Reg::A2), 42);
    }

    #[test]
    fn run_batched_is_cycle_identical_to_run() {
        let program = |a: &mut Assembler| {
            a.li(Reg::T0, 0x8010_0000);
            for i in 0..24 {
                a.li(Reg::T1, 0x1000 + i);
                a.sd(Reg::T1, Reg::T0, (i * 8) as i32);
                a.ld(Reg::T2, Reg::T0, (i * 8) as i32);
            }
            a.inst(Inst::Ebreak);
        };
        for (limit, batch) in [(200_000u64, 50u64), (200_000, 1), (40, 16), (40, 1_000)] {
            let mut plain = core_with(CoreConfig::boom(), program);
            let plain_exit = plain.run(limit);
            let mut batched = core_with(CoreConfig::boom(), program);
            let mut samples = Vec::new();
            let batched_exit = batched.run_batched(limit, batch, &mut |c| samples.push(c.cycle));
            assert_eq!(batched_exit, plain_exit, "limit {limit} batch {batch}");
            assert_eq!(batched.cycle, plain.cycle, "limit {limit} batch {batch}");
            assert_eq!(batched.retired(), plain.retired());
            assert_eq!(batched.counters(), plain.counters());
            assert!(!samples.is_empty(), "observer must fire at least once");
            assert!(samples.windows(2).all(|w| w[0] <= w[1]), "{samples:?}");
            assert_eq!(*samples.last().unwrap(), batched.cycle);
        }
    }

    #[test]
    fn counters_harvest_reflects_the_run() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.li(Reg::T0, 0x8010_0000);
            a.li(Reg::T1, 0x1234);
            a.sd(Reg::T1, Reg::T0, 0);
            a.ld(Reg::T2, Reg::T0, 0);
            a.inst(Inst::Ebreak);
        });
        run(&mut core);
        let c = core.counters();
        assert_eq!(c.cycles, core.cycle);
        assert_eq!(c.instructions_retired, core.retired());
        assert_eq!(c.trace_events, core.trace.len() as u64);
        assert_eq!(c.structures.len(), Structure::all().len());
        for sc in &c.structures {
            assert!(
                sc.occupancy_at_exit <= sc.capacity,
                "{:?}: occupancy {} > capacity {}",
                sc.structure,
                sc.occupancy_at_exit,
                sc.capacity
            );
        }
        // The store+load touched the L1D: a fill happened and a line is
        // resident at exit.
        let l1d = c.structure(Structure::L1d).unwrap();
        assert!(l1d.fills > 0, "L1D fill expected");
        assert!(l1d.occupancy_at_exit > 0, "L1D residue expected");
        // The register file saw writebacks.
        assert!(c.structure(Structure::RegFile).unwrap().writes > 0);
        // Trace stats agree with a manual scan of the trace.
        let manual = core
            .trace
            .for_structure(Structure::L1d)
            .filter(|e| matches!(e.kind, TraceEventKind::Fill { .. }))
            .count() as u64;
        assert_eq!(l1d.fills, manual);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.li(Reg::T0, 0x8010_0000);
            a.li(Reg::T1, 0xDEAD_BEEF);
            a.sd(Reg::T1, Reg::T0, 0);
            a.ld(Reg::T2, Reg::T0, 0);
            a.inst(Inst::Ebreak);
        });
        run(&mut core);
        assert_eq!(core.reg(Reg::T2), 0xDEAD_BEEF);
        assert_eq!(core.mem.read_u64(0x8010_0000), 0xDEAD_BEEF);
    }

    #[test]
    fn loop_with_branches() {
        // Sum 1..=10.
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.li(Reg::A0, 0);
            a.li(Reg::T0, 10);
            a.label("loop");
            a.add(Reg::A0, Reg::A0, Reg::T0);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, "loop");
            a.inst(Inst::Ebreak);
        });
        run(&mut core);
        assert_eq!(core.reg(Reg::A0), 55);
    }

    #[test]
    fn branch_prediction_trains_ubtb() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.li(Reg::T0, 20);
            a.label("loop");
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, "loop");
            a.inst(Inst::Ebreak);
        });
        run(&mut core);
        let trained = core.ubtb.entries().iter().any(|e| e.valid);
        assert!(trained, "taken branch must train the uBTB");
        let mispredicts = core.csr.hpm[HpcEvent::BranchMispredict.counter_index()];
        let taken = core.csr.hpm[HpcEvent::BranchTaken.counter_index()];
        assert!(taken >= 19);
        assert!(mispredicts < taken, "prediction must help after training");
    }

    #[test]
    fn jalr_returns() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.call("func");
            a.li(Reg::A1, 7);
            a.inst(Inst::Ebreak);
            a.label("func");
            a.li(Reg::A0, 5);
            a.ret();
        });
        run(&mut core);
        assert_eq!(core.reg(Reg::A0), 5);
        assert_eq!(core.reg(Reg::A1), 7);
    }

    #[test]
    fn ecall_traps_to_mtvec_and_mret_returns() {
        // Handler at `handler` sets a2=99 and returns past the ecall.
        let mut core = core_with(CoreConfig::boom(), |a| {
            // Reset vector (M mode): set mtvec, drop to S-mode code.
            a.la(Reg::T0, "handler");
            a.csrw(csr::MTVEC, Reg::T0);
            a.la(Reg::T1, "smode");
            a.csrw(csr::MEPC, Reg::T1);
            a.li(Reg::T2, 0x800); // MPP = S
            a.csrw(csr::MSTATUS, Reg::T2);
            a.mret();
            a.label("smode");
            a.ecall();
            a.li(Reg::A3, 1); // runs after handler mret
            a.inst(Inst::Ebreak);
            a.label("handler");
            a.li(Reg::A2, 99);
            a.csrr(Reg::T3, csr::MEPC);
            a.addi(Reg::T3, Reg::T3, 4);
            a.csrw(csr::MEPC, Reg::T3);
            a.mret();
        });
        run(&mut core);
        assert_eq!(core.reg(Reg::A2), 99);
        assert_eq!(core.reg(Reg::A3), 1);
        assert_eq!(
            core.csr.mcause,
            Exception::Ecall(PrivLevel::Supervisor).cause()
        );
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.la(Reg::T0, "handler");
            a.csrw(csr::MTVEC, Reg::T0);
            a.word(0xFFFF_FFFF); // illegal
            a.nop();
            a.label("handler");
            a.inst(Inst::Ebreak);
        });
        run(&mut core);
        assert_eq!(core.csr.mcause, 2);
    }

    #[test]
    fn transient_leak_on_faulting_load_visible_in_spec_rf() {
        // The Meltdown-style D4 pattern at the core level: a PMP-protected
        // value is transiently written back before the fault commits.
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.la(Reg::T0, "handler");
            a.csrw(csr::MTVEC, Reg::T0);
            // Protect [0x8040_0000, +4K) from everyone (cfg byte 0x18 =
            // NAPOT, no perms) — entry 0.
            a.li(Reg::T1, (0x8040_0000u64 >> 2) | ((0x1000 >> 3) - 1));
            a.csrw(csr::PMPADDR0, Reg::T1);
            a.li(Reg::T2, 0x18);
            a.csrw(csr::PMPCFG0, Reg::T2);
            // Allow everything else — entry 1 (NAPOT over the whole space).
            a.li(Reg::T1, u64::MAX >> 10);
            a.csrw(csr::PMPADDR0 + 1, Reg::T1);
            a.li(Reg::T2, 0x1F << 8); // entry1: NAPOT, RWX
            a.csrrs(Reg::ZERO, csr::PMPCFG0, Reg::T2);
            // Drop to S mode.
            a.la(Reg::T3, "smode");
            a.csrw(csr::MEPC, Reg::T3);
            a.li(Reg::T4, 0x800);
            a.csrw(csr::MSTATUS, Reg::T4);
            a.mret();
            a.label("smode");
            a.li(Reg::A4, 0x8040_0000);
            a.ld(Reg::A5, Reg::A4, 0); // faulting load
            a.xori(Reg::A6, Reg::A5, 0); // dependent consumer (transient)
            a.label("handler");
            a.inst(Inst::Ebreak);
        });
        // Seed the secret and pre-warm it into caches via memory writes.
        core.mem.write_u64(0x8040_0000, 0x5EC2_E700_0000_0042);
        run(&mut core);
        assert_eq!(core.csr.mcause, Exception::LoadAccessFault(0).cause());
        // The architectural register must NOT hold the secret...
        assert_ne!(core.reg(Reg::A5), 0x5EC2_E700_0000_0042);
        // ...but the trace shows the transient register-file writeback.
        let leaked = core.trace.for_structure(Structure::RegFile).any(|e| {
            matches!(e.kind, TraceEventKind::Write { value, .. } if value == 0x5EC2_E700_0000_0042)
        });
        assert!(leaked, "transient writeback must appear in the trace");
    }

    #[test]
    fn external_interrupt_enters_handler() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.la(Reg::T0, "handler");
            a.csrw(csr::MTVEC, Reg::T0);
            a.li(Reg::T1, 1 << 11); // MEIE
            a.csrw(csr::MIE, Reg::T1);
            a.li(Reg::T2, 0x8); // MIE (global)
            a.csrrs(Reg::ZERO, csr::MSTATUS, Reg::T2);
            a.label("spin");
            a.j("spin");
            a.label("handler");
            a.li(Reg::A0, 0x1A1A);
            a.inst(Inst::Ebreak);
        });
        core.schedule_external_interrupt(200);
        run(&mut core);
        assert_eq!(core.reg(Reg::A0), 0x1A1A);
        assert_eq!(core.csr.mcause, Interrupt::MachineExternal.cause());
    }

    #[test]
    fn mdomain_csr_switches_domain() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.li(Reg::T0, 2); // enclave 0
            a.csrw(MDOMAIN, Reg::T0);
            a.li(Reg::T0, 0); // untrusted
            a.csrw(MDOMAIN, Reg::T0);
            a.inst(Inst::Ebreak);
        });
        run(&mut core);
        let switches: Vec<Domain> = core
            .trace
            .iter_events()
            .filter_map(|e| match e.kind {
                TraceEventKind::DomainSwitch { to } => Some(to),
                _ => None,
            })
            .collect();
        assert_eq!(switches, vec![Domain::Enclave(0), Domain::Untrusted]);
        assert_eq!(core.domain, Domain::Untrusted);
    }

    #[test]
    fn hpm_counters_count_and_survive_domain_switches() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.li(Reg::T0, 2);
            a.csrw(MDOMAIN, Reg::T0); // enter "enclave"
            a.li(Reg::T1, 0x8020_0000);
            a.ld(Reg::T2, Reg::T1, 0); // enclave L1D miss
            a.li(Reg::T0, 0);
            a.csrw(MDOMAIN, Reg::T0); // back to untrusted: no HPC reset
            a.csrr(
                Reg::A0,
                csr::mhpmcounter_csr(HpcEvent::L1dMiss.counter_index()),
            );
            a.inst(Inst::Ebreak);
        });
        run(&mut core);
        assert!(
            core.reg(Reg::A0) >= 1,
            "enclave miss visible to untrusted reader"
        );
        assert!(core.csr.hpc_tainted(HpcEvent::L1dMiss.counter_index()));
    }

    #[test]
    fn clear_hpc_mitigation_resets_on_pmp_reconfig() {
        let mut cfg = CoreConfig::boom();
        cfg.mitigations.clear_hpc_on_domain_switch = true;
        let mut core = core_with(cfg, |a| {
            a.li(Reg::T1, 0x8020_0000);
            a.ld(Reg::T2, Reg::T1, 0); // L1D miss -> counter > 0
                                       // PMP reconfiguration (the domain-switch marker).
            a.li(Reg::T3, 0xFFFF);
            a.csrw(csr::PMPADDR0 + 2, Reg::T3);
            a.csrr(
                Reg::A0,
                csr::mhpmcounter_csr(HpcEvent::L1dMiss.counter_index()),
            );
            a.inst(Inst::Ebreak);
        });
        run(&mut core);
        assert_eq!(core.reg(Reg::A0), 0, "counter cleared at domain switch");
    }

    #[test]
    fn wfi_waits_for_interrupt() {
        let mut core = core_with(CoreConfig::boom(), |a| {
            a.la(Reg::T0, "handler");
            a.csrw(csr::MTVEC, Reg::T0);
            a.li(Reg::T1, 1 << 11);
            a.csrw(csr::MIE, Reg::T1);
            // Global MIE off: WFI resumes without trapping.
            a.wfi();
            a.li(Reg::A0, 0x77);
            a.inst(Inst::Ebreak);
            a.label("handler");
            a.inst(Inst::Ebreak);
        });
        core.schedule_external_interrupt(100);
        run(&mut core);
        assert_eq!(core.reg(Reg::A0), 0x77);
        assert!(core.cycle >= 100, "wfi must have waited for the interrupt");
    }
}
