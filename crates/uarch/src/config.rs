//! Core configuration: structure geometries, latencies and the
//! security-relevant microarchitectural policy knobs.
//!
//! The two presets, [`CoreConfig::boom`] and [`CoreConfig::xiangshan`],
//! encode the *documented structural differences* between the two processors
//! the paper evaluates. The vulnerabilities of paper Table 3 are not
//! hard-coded anywhere — they emerge from these policy choices and are
//! discovered by the TEESec checker from the simulation trace.

use serde::{Deserialize, Serialize};

/// When the PMP permission check completes relative to the data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PmpCheckTiming {
    /// Check runs in parallel with the cache access; data can be returned,
    /// written back and forwarded before the fault squashes the instruction
    /// (the Meltdown-style lazy-exception implementation in both BOOM and
    /// XiangShan).
    ParallelWithAccess,
    /// Check fully serializes before the access is issued; a denied access
    /// never touches the memory hierarchy (paper Table 4, "serialize
    /// permission checks" mitigation).
    BeforeAccess,
}

/// What the L1D returns for a PMP-faulting load that *misses* in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultingMissPolicy {
    /// The miss proceeds to L2 and fills the line-fill buffer with secret
    /// data anyway (BOOM behaviour; paper §7.1.4b).
    ForwardToL2,
    /// The slower miss path gives the L1D time to observe the fault: it
    /// returns a "fake hit" with zero data and issues no L2 fill
    /// (XiangShan behaviour; paper Figure 5).
    FakeHitZero,
}

/// L1 data prefetcher flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No L1D prefetcher (XiangShan).
    None,
    /// Next-line prefetcher: on a demand miss, fetch the following cache
    /// line (BOOM).
    NextLine,
}

/// How hardware page-table-walker memory requests reach the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PtwRequestPath {
    /// PTW requests go through the L1D port and allocate LFB entries on a
    /// miss (BOOM).
    ViaL1d,
    /// PTW requests are sent directly to L2 over a dedicated channel
    /// (XiangShan's TileLink 'A'-channel refills) and never touch the L1D
    /// or its fill buffers.
    DirectToL2,
}

/// The Table 4 mitigation switches. All default to off — the paper's
/// "naive deployment" configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MitigationSet {
    /// Flush the L1 data cache at every PMP reconfiguration (domain switch).
    pub flush_l1d_on_domain_switch: bool,
    /// Drain-and-clear the store buffer at every domain switch.
    pub flush_store_buffer_on_domain_switch: bool,
    /// Zero the data returned by a load whose permission check failed
    /// ("Clear Illegal Data Returns").
    pub clear_illegal_data_returns: bool,
    /// Invalidate all line-fill-buffer entries at every domain switch.
    pub flush_lfb_on_domain_switch: bool,
    /// Clear branch-prediction structures (uBTB/FTB/BHT) at every domain
    /// switch.
    pub flush_bpu_on_domain_switch: bool,
    /// Reset hardware performance counters at every domain switch.
    pub clear_hpc_on_domain_switch: bool,
    /// Serialize PMP checks before memory accesses (overrides
    /// [`CoreConfig::pmp_check`]).
    pub serialize_pmp_check: bool,
    /// PMP-check page-table-walker refill addresses *before* issuing the
    /// request (XiangShan already does this; a mitigation for BOOM).
    pub ptw_pmp_precheck: bool,
    /// Tag branch-prediction entries with the training domain and enforce
    /// the tag on every lookup (the paper's §8 alternative to flushing,
    /// extending Intel eIBRS-style tagged BTBs). Cross-domain entries
    /// become unreachable without being destroyed — cheaper than a flush.
    pub tag_bpu_with_domain: bool,
}

impl MitigationSet {
    /// The paper's "Flush Everything" column: every flush/clear enabled.
    pub fn flush_everything() -> MitigationSet {
        MitigationSet {
            flush_l1d_on_domain_switch: true,
            flush_store_buffer_on_domain_switch: true,
            clear_illegal_data_returns: false,
            flush_lfb_on_domain_switch: true,
            flush_bpu_on_domain_switch: true,
            clear_hpc_on_domain_switch: true,
            serialize_pmp_check: false,
            ptw_pmp_precheck: false,
            tag_bpu_with_domain: false,
        }
    }

    /// Every mitigation in the paper enabled at once.
    pub fn all() -> MitigationSet {
        MitigationSet {
            flush_l1d_on_domain_switch: true,
            flush_store_buffer_on_domain_switch: true,
            clear_illegal_data_returns: true,
            flush_lfb_on_domain_switch: true,
            flush_bpu_on_domain_switch: true,
            clear_hpc_on_domain_switch: true,
            serialize_pmp_check: true,
            ptw_pmp_precheck: true,
            tag_bpu_with_domain: true,
        }
    }

    /// `true` when any domain-switch flush is enabled.
    pub fn any_domain_switch_flush(self) -> bool {
        self.flush_l1d_on_domain_switch
            || self.flush_store_buffer_on_domain_switch
            || self.flush_lfb_on_domain_switch
            || self.flush_bpu_on_domain_switch
            || self.clear_hpc_on_domain_switch
    }
}

/// Full microarchitectural configuration of a core instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Human-readable design name (appears in the verification plan).
    pub name: String,

    // ---- structure geometries ------------------------------------------
    /// Cache line size in bytes (both levels).
    pub line_size: u64,
    /// L1 data cache sets.
    pub l1d_sets: usize,
    /// L1 data cache ways.
    pub l1d_ways: usize,
    /// Unified L2 sets.
    pub l2_sets: usize,
    /// Unified L2 ways.
    pub l2_ways: usize,
    /// Line-fill-buffer (MSHR) entries.
    pub lfb_entries: usize,
    /// Whether a fill-buffer entry is deallocated (its data dropped) as
    /// soon as the refill completes. BOOM's LFB retains residual line data
    /// until the entry is reallocated (enabling case D3); XiangShan's MSHR
    /// data path releases entries on completion.
    pub lfb_deallocate_on_complete: bool,
    /// Store-queue entries (speculative stores).
    pub store_queue_entries: usize,
    /// Store-buffer entries (committed stores awaiting L1D write). Zero
    /// models a design whose committed stores write the cache directly.
    pub store_buffer_entries: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Maximum instructions dispatched and committed per cycle.
    pub width: usize,
    /// Data TLB entries (fully associative).
    pub dtlb_entries: usize,
    /// Instruction TLB entries.
    pub itlb_entries: usize,
    /// Page-table-walker cache entries.
    pub ptw_cache_entries: usize,
    /// Micro branch-target-buffer entries (direct mapped).
    pub ubtb_entries: usize,
    /// Number of PC bits used for the uBTB tag (partial tags enable the
    /// paper's M2 collision attack).
    pub ubtb_tag_bits: u32,
    /// Fetch-target-buffer (main BTB) sets.
    pub ftb_sets: usize,
    /// Fetch-target-buffer ways.
    pub ftb_ways: usize,
    /// Number of programmable HPM counters implemented.
    pub hpm_counters: usize,

    // ---- latencies (cycles) --------------------------------------------
    /// L1D hit latency.
    pub l1_hit_latency: u64,
    /// L1-to-L2 round trip on an L1 miss that hits in L2.
    pub l2_latency: u64,
    /// L2 miss to main memory round trip.
    pub mem_latency: u64,

    // ---- security-relevant policies --------------------------------------
    /// PMP check timing for explicit loads/stores.
    pub pmp_check: PmpCheckTiming,
    /// Behaviour of a PMP-faulting load that misses in L1D.
    pub faulting_miss_policy: FaultingMissPolicy,
    /// PTW request routing.
    pub ptw_request_path: PtwRequestPath,
    /// PMP-check PTW refill addresses before issuing requests (XiangShan).
    pub ptw_pmp_precheck: bool,
    /// L1D prefetcher flavor.
    pub l1d_prefetcher: PrefetcherKind,
    /// Whether prefetch requests undergo PMP checks (neither core does).
    pub prefetcher_pmp_check: bool,
    /// Whether the store buffer forwards data to loads, including loads
    /// whose permission check failed (XiangShan; enables D8).
    pub store_buffer_forwarding: bool,
    /// Whether a privilege-faulting CSR read still transiently writes the
    /// CSR value back to the register file (XiangShan; enables the Figure 6
    /// M1 variant).
    pub csr_read_transient_writeback: bool,
    /// Whether an interrupt context snapshot taken by firmware observes
    /// speculative (not-yet-retired) register writebacks (XiangShan).
    pub interrupt_snapshot_speculative: bool,

    /// Active mitigation switches (paper Table 4).
    pub mitigations: MitigationSet,
}

impl CoreConfig {
    /// A BOOM-like (SonicBOOM) configuration.
    pub fn boom() -> CoreConfig {
        CoreConfig {
            name: "boom".to_string(),
            line_size: 64,
            l1d_sets: 64,
            l1d_ways: 4,
            l2_sets: 256,
            l2_ways: 8,
            lfb_entries: 8,
            lfb_deallocate_on_complete: false,
            store_queue_entries: 16,
            store_buffer_entries: 0,
            rob_entries: 32,
            width: 2,
            dtlb_entries: 32,
            itlb_entries: 32,
            ptw_cache_entries: 8,
            ubtb_entries: 16,
            ubtb_tag_bits: 14,
            ftb_sets: 128,
            ftb_ways: 4,
            hpm_counters: 8,
            l1_hit_latency: 3,
            l2_latency: 14,
            mem_latency: 60,
            pmp_check: PmpCheckTiming::ParallelWithAccess,
            faulting_miss_policy: FaultingMissPolicy::ForwardToL2,
            ptw_request_path: PtwRequestPath::ViaL1d,
            ptw_pmp_precheck: false,
            l1d_prefetcher: PrefetcherKind::NextLine,
            prefetcher_pmp_check: false,
            store_buffer_forwarding: false,
            csr_read_transient_writeback: false,
            interrupt_snapshot_speculative: false,
            mitigations: MitigationSet::default(),
        }
    }

    /// A XiangShan-like configuration.
    pub fn xiangshan() -> CoreConfig {
        CoreConfig {
            name: "xiangshan".to_string(),
            line_size: 64,
            l1d_sets: 128,
            l1d_ways: 8,
            l2_sets: 512,
            l2_ways: 8,
            lfb_entries: 16,
            lfb_deallocate_on_complete: true,
            store_queue_entries: 32,
            store_buffer_entries: 16,
            rob_entries: 64,
            width: 4,
            dtlb_entries: 64,
            itlb_entries: 48,
            ptw_cache_entries: 16,
            ubtb_entries: 1024,
            ubtb_tag_bits: 8,
            ftb_sets: 1024,
            ftb_ways: 4,
            hpm_counters: 8,
            l1_hit_latency: 3,
            l2_latency: 18,
            mem_latency: 80,
            pmp_check: PmpCheckTiming::ParallelWithAccess,
            faulting_miss_policy: FaultingMissPolicy::FakeHitZero,
            ptw_request_path: PtwRequestPath::DirectToL2,
            ptw_pmp_precheck: true,
            l1d_prefetcher: PrefetcherKind::None,
            prefetcher_pmp_check: false,
            store_buffer_forwarding: true,
            csr_read_transient_writeback: true,
            interrupt_snapshot_speculative: true,
            mitigations: MitigationSet::default(),
        }
    }

    /// A hardened reference design: BOOM's microarchitecture with every
    /// countermeasure of paper §8 applied — serialized PMP checks, PTW
    /// pre-checking, a checked prefetcher, full buffer/BPU/HPC hygiene at
    /// domain switches and MSHR data release. The paper's closing claim is
    /// that a design following principles P1/P2 mitigates all known attacks
    /// under its threat model; TEESec verifies this preset clean.
    pub fn hardened_reference() -> CoreConfig {
        let mut cfg = CoreConfig::boom();
        cfg.name = "hardened-reference".to_string();
        cfg.pmp_check = PmpCheckTiming::BeforeAccess;
        cfg.faulting_miss_policy = FaultingMissPolicy::FakeHitZero;
        cfg.ptw_pmp_precheck = true;
        cfg.prefetcher_pmp_check = true;
        cfg.lfb_deallocate_on_complete = true;
        cfg.csr_read_transient_writeback = false;
        cfg.interrupt_snapshot_speculative = false;
        cfg.mitigations = MitigationSet {
            flush_l1d_on_domain_switch: true,
            flush_store_buffer_on_domain_switch: true,
            clear_illegal_data_returns: true,
            flush_lfb_on_domain_switch: true,
            flush_bpu_on_domain_switch: false,
            clear_hpc_on_domain_switch: true,
            serialize_pmp_check: true,
            ptw_pmp_precheck: true,
            tag_bpu_with_domain: true,
        };
        cfg
    }

    /// The effective PMP check timing after mitigations.
    pub fn effective_pmp_check(&self) -> PmpCheckTiming {
        if self.mitigations.serialize_pmp_check {
            PmpCheckTiming::BeforeAccess
        } else {
            self.pmp_check
        }
    }

    /// The effective PTW PMP pre-check policy after mitigations.
    pub fn effective_ptw_precheck(&self) -> bool {
        self.ptw_pmp_precheck || self.mitigations.ptw_pmp_precheck
    }

    /// Returns a copy with the given mitigation set applied.
    pub fn with_mitigations(mut self, m: MitigationSet) -> CoreConfig {
        self.mitigations = m;
        self
    }

    /// Validates internal consistency (power-of-two geometries etc.).
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration; construction sites are
    /// expected to call this once.
    pub fn validate(&self) {
        assert!(
            self.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            self.l1d_sets.is_power_of_two(),
            "l1d sets must be a power of two"
        );
        assert!(
            self.l2_sets.is_power_of_two(),
            "l2 sets must be a power of two"
        );
        assert!(
            self.ubtb_entries.is_power_of_two(),
            "ubtb entries must be a power of two"
        );
        assert!(
            self.ftb_sets.is_power_of_two(),
            "ftb sets must be a power of two"
        );
        assert!(self.width >= 1, "pipeline width must be at least 1");
        assert!(
            self.rob_entries >= self.width,
            "ROB must hold at least one dispatch group"
        );
        assert!(
            self.lfb_entries >= 1,
            "at least one line-fill buffer entry required"
        );
        assert!(self.hpm_counters <= teesec_isa::csr::HPM_COUNTER_COUNT);
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::boom()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        CoreConfig::boom().validate();
        CoreConfig::xiangshan().validate();
    }

    #[test]
    fn presets_differ_in_documented_knobs() {
        let b = CoreConfig::boom();
        let x = CoreConfig::xiangshan();
        assert_eq!(b.l1d_prefetcher, PrefetcherKind::NextLine);
        assert_eq!(x.l1d_prefetcher, PrefetcherKind::None);
        assert_eq!(b.faulting_miss_policy, FaultingMissPolicy::ForwardToL2);
        assert_eq!(x.faulting_miss_policy, FaultingMissPolicy::FakeHitZero);
        assert!(!b.ptw_pmp_precheck && x.ptw_pmp_precheck);
        assert!(!b.store_buffer_forwarding && x.store_buffer_forwarding);
        assert_eq!(b.store_buffer_entries, 0);
        assert!(x.store_buffer_entries > 0);
    }

    #[test]
    fn serialize_mitigation_overrides_timing() {
        let mut c = CoreConfig::boom();
        assert_eq!(c.effective_pmp_check(), PmpCheckTiming::ParallelWithAccess);
        c.mitigations.serialize_pmp_check = true;
        assert_eq!(c.effective_pmp_check(), PmpCheckTiming::BeforeAccess);
    }

    #[test]
    fn flush_everything_excludes_data_zeroing() {
        let m = MitigationSet::flush_everything();
        assert!(m.flush_l1d_on_domain_switch && m.flush_lfb_on_domain_switch);
        assert!(!m.clear_illegal_data_returns);
        assert!(m.any_domain_switch_flush());
        assert!(!MitigationSet::default().any_domain_switch_flush());
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = CoreConfig::xiangshan();
        let json = serde_json::to_string(&c).expect("serialize");
        let back: CoreConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, c);
    }
}
