//! Architectural exceptions and interrupts.

use serde::{Deserialize, Serialize};

use teesec_isa::priv_level::PrivLevel;

/// A synchronous exception, with its trap value payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Exception {
    /// Instruction address misaligned.
    InstMisaligned(u64),
    /// Instruction access fault (PMP denial on fetch).
    InstAccessFault(u64),
    /// Illegal instruction (payload: the instruction word).
    IllegalInstruction(u32),
    /// Breakpoint (`ebreak`).
    Breakpoint(u64),
    /// Load address misaligned.
    LoadMisaligned(u64),
    /// Load access fault (PMP denial).
    LoadAccessFault(u64),
    /// Store address misaligned.
    StoreMisaligned(u64),
    /// Store access fault (PMP denial).
    StoreAccessFault(u64),
    /// Environment call from the given privilege level.
    Ecall(PrivLevel),
    /// Instruction page fault.
    InstPageFault(u64),
    /// Load page fault.
    LoadPageFault(u64),
    /// Store page fault.
    StorePageFault(u64),
}

impl Exception {
    /// The standard `mcause` encoding.
    pub fn cause(self) -> u64 {
        match self {
            Exception::InstMisaligned(_) => 0,
            Exception::InstAccessFault(_) => 1,
            Exception::IllegalInstruction(_) => 2,
            Exception::Breakpoint(_) => 3,
            Exception::LoadMisaligned(_) => 4,
            Exception::LoadAccessFault(_) => 5,
            Exception::StoreMisaligned(_) => 6,
            Exception::StoreAccessFault(_) => 7,
            Exception::Ecall(PrivLevel::User) => 8,
            Exception::Ecall(PrivLevel::Supervisor) => 9,
            Exception::Ecall(PrivLevel::Machine) => 11,
            Exception::InstPageFault(_) => 12,
            Exception::LoadPageFault(_) => 13,
            Exception::StorePageFault(_) => 15,
        }
    }

    /// The `mtval` payload.
    pub fn tval(self) -> u64 {
        match self {
            Exception::InstMisaligned(a)
            | Exception::InstAccessFault(a)
            | Exception::Breakpoint(a)
            | Exception::LoadMisaligned(a)
            | Exception::LoadAccessFault(a)
            | Exception::StoreMisaligned(a)
            | Exception::StoreAccessFault(a)
            | Exception::InstPageFault(a)
            | Exception::LoadPageFault(a)
            | Exception::StorePageFault(a) => a,
            Exception::IllegalInstruction(w) => w as u64,
            Exception::Ecall(_) => 0,
        }
    }

    /// `true` for access faults (the PMP-denial class TEESec provokes).
    pub fn is_access_fault(self) -> bool {
        matches!(
            self,
            Exception::InstAccessFault(_)
                | Exception::LoadAccessFault(_)
                | Exception::StoreAccessFault(_)
        )
    }
}

/// An asynchronous interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interrupt {
    /// Machine software interrupt.
    MachineSoftware,
    /// Machine timer interrupt.
    MachineTimer,
    /// Machine external interrupt.
    MachineExternal,
}

impl Interrupt {
    /// The interrupt number (bit position in `mip`/`mie`).
    pub fn number(self) -> u64 {
        match self {
            Interrupt::MachineSoftware => 3,
            Interrupt::MachineTimer => 7,
            Interrupt::MachineExternal => 11,
        }
    }

    /// The `mcause` encoding (interrupt bit set).
    pub fn cause(self) -> u64 {
        (1 << 63) | self.number()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_encodings_match_spec() {
        assert_eq!(Exception::IllegalInstruction(0).cause(), 2);
        assert_eq!(Exception::LoadAccessFault(0).cause(), 5);
        assert_eq!(Exception::Ecall(PrivLevel::Supervisor).cause(), 9);
        assert_eq!(Exception::Ecall(PrivLevel::User).cause(), 8);
        assert_eq!(Exception::LoadPageFault(0).cause(), 13);
        assert_eq!(Interrupt::MachineExternal.cause(), (1 << 63) | 11);
    }

    #[test]
    fn tval_carries_fault_address() {
        assert_eq!(Exception::LoadAccessFault(0x8000_1234).tval(), 0x8000_1234);
        assert_eq!(Exception::IllegalInstruction(0xDEAD).tval(), 0xDEAD);
        assert_eq!(Exception::Ecall(PrivLevel::Machine).tval(), 0);
    }

    #[test]
    fn access_fault_classification() {
        assert!(Exception::LoadAccessFault(0).is_access_fault());
        assert!(Exception::StoreAccessFault(0).is_access_fault());
        assert!(!Exception::LoadPageFault(0).is_access_fault());
        assert!(!Exception::Ecall(PrivLevel::User).is_access_fault());
    }
}
