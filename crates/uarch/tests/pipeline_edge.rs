//! Pipeline edge cases: squash correctness, fence ordering, TLB staleness
//! semantics, transient non-retirement, and cache behaviour under pressure.

use teesec_isa::asm::Assembler;
use teesec_isa::csr;
use teesec_isa::inst::Inst;
use teesec_isa::reg::Reg;
use teesec_isa::vm::{PhysAddr, Pte};
use teesec_uarch::core::Core;
use teesec_uarch::mem::Memory;
use teesec_uarch::trace::{Structure, TraceEventKind};
use teesec_uarch::{CoreConfig, RunExit};

const BASE: u64 = 0x8000_0000;

fn build(cfg: CoreConfig, f: impl FnOnce(&mut Assembler)) -> Core {
    let mut asm = Assembler::new(BASE);
    f(&mut asm);
    let mut mem = Memory::new();
    mem.load_words(BASE, &asm.assemble().expect("assemble"));
    Core::new(cfg, mem, BASE)
}

#[test]
fn data_dependent_branches_squash_cleanly() {
    // Collatz-style loop: heavy data-dependent branching exercises squash
    // paths; result must be exact.
    for cfg in [CoreConfig::boom(), CoreConfig::xiangshan()] {
        let mut core = build(cfg, |a| {
            a.li(Reg::A0, 27); // n
            a.li(Reg::A1, 0); // steps
            a.li(Reg::T2, 1);
            a.label("loop");
            a.beq(Reg::A0, Reg::T2, "done");
            a.andi(Reg::T0, Reg::A0, 1);
            a.bnez(Reg::T0, "odd");
            a.srli(Reg::A0, Reg::A0, 1);
            a.j("next");
            a.label("odd");
            a.slli(Reg::T1, Reg::A0, 1);
            a.add(Reg::A0, Reg::A0, Reg::T1);
            a.addi(Reg::A0, Reg::A0, 1);
            a.label("next");
            a.addi(Reg::A1, Reg::A1, 1);
            a.j("loop");
            a.label("done");
            a.inst(Inst::Ebreak);
        });
        assert_eq!(core.run(1_000_000), RunExit::Halted);
        assert_eq!(core.reg(Reg::A1), 111, "27 reaches 1 in 111 Collatz steps");
    }
}

#[test]
fn wrong_path_loads_fill_caches_but_never_retire() {
    // A load guarded by a never-taken branch: the predictor may fetch it
    // speculatively; its architectural effect must be nil, while its cache
    // footprint is allowed (that asymmetry is the whole paper).
    let mut core = build(CoreConfig::boom(), |a| {
        a.li(Reg::T0, 0x8010_0000);
        a.li(Reg::S2, 0);
        a.li(Reg::T2, 10);
        a.label("loop");
        // The branch is always taken (skipping the load) but the BHT needs
        // training; early iterations execute the shadow path transiently.
        a.bnez(Reg::T2, "skip");
        a.ld(Reg::S2, Reg::T0, 0); // architecturally never executes
        a.label("skip");
        a.addi(Reg::T2, Reg::T2, -1);
        a.bnez(Reg::T2, "loop");
        a.inst(Inst::Ebreak);
    });
    core.mem.write_u64(0x8010_0000, 0xFEED);
    assert_eq!(core.run(1_000_000), RunExit::Halted);
    assert_eq!(core.reg(Reg::S2), 0, "wrong-path load must not retire");
}

#[test]
fn fence_drains_stores_before_commit_completes() {
    // With a fence, memory is up to date the moment the program halts,
    // before any post-halt drain.
    let mut core = build(CoreConfig::xiangshan(), |a| {
        a.li(Reg::T0, 0x8010_0000);
        a.li(Reg::T1, 0xAB);
        a.sd(Reg::T1, Reg::T0, 0);
        a.fence();
        a.inst(Inst::Ebreak);
    });
    while !core.halted && core.cycle < 100_000 {
        core.step();
    }
    assert!(core.halted);
    // No drain() call: the fence already pushed the store out.
    assert_eq!(core.mem.read_u64(0x8010_0000), 0xAB);
    assert!(core.lsu.stores_drained());
}

#[test]
fn without_fence_stores_may_lag_behind_halt() {
    let mut core = build(CoreConfig::xiangshan(), |a| {
        a.li(Reg::T0, 0x8010_0000);
        a.li(Reg::T1, 0xAB);
        a.sd(Reg::T1, Reg::T0, 0);
        a.inst(Inst::Ebreak);
    });
    while !core.halted && core.cycle < 100_000 {
        core.step();
    }
    assert!(core.halted);
    // The store sits in the buffer (this lag is what D8/D3 exploit)...
    assert!(
        !core.lsu.stores_drained(),
        "store should still be buffered at halt"
    );
    // ...and the drain completes it.
    core.drain();
    assert_eq!(core.mem.read_u64(0x8010_0000), 0xAB);
}

#[test]
fn stale_tlb_translations_persist_until_sfence() {
    // Hardware behaviour the attacker of D2 depends on: changing a PTE
    // without sfence.vma leaves the old translation live in the TLB.
    let pt_root = 0x8100_0000u64;
    let l1 = 0x8100_1000u64;
    let l0 = 0x8100_2000u64;
    let va = 0x0000_0000_4000_0000u64;
    let pa1 = 0x8020_0000u64;
    let pa2 = 0x8020_1000u64;

    let mut core = build(CoreConfig::boom(), |a| {
        // M-mode sets up satp for S-mode, then drops privilege.
        a.li(Reg::T0, teesec_isa::csr::Satp::sv39(pt_root).0);
        a.csrw(csr::SATP, Reg::T0);
        a.la(Reg::T1, "smode");
        a.csrw(csr::MEPC, Reg::T1);
        a.li(Reg::T2, 0x800);
        a.csrw(csr::MSTATUS, Reg::T2);
        a.la(Reg::T3, "handler");
        a.csrw(csr::MTVEC, Reg::T3);
        a.mret();
        a.label("smode");
        a.li(Reg::S10, va);
        a.ld(Reg::S2, Reg::S10, 0); // walk -> TLB caches va -> pa1
                                    // Rewrite the leaf PTE to pa2 (the page table itself is mapped).
        a.li(Reg::T0, l0); // identity: S-mode touches PT via physical alias
        a.li(Reg::T1, Pte::leaf(PhysAddr(pa2), Pte::R | Pte::W).0);
        a.sd(Reg::T1, Reg::T0, 0);
        a.fence();
        a.ld(Reg::S3, Reg::S10, 0); // stale TLB: still pa1
        a.sfence_vma();
        a.ld(Reg::S4, Reg::S10, 0); // fresh walk: pa2
        a.label("handler");
        a.inst(Inst::Ebreak);
    });
    // Build the page tables by hand: the probed VA plus identity maps for
    // the S-mode code pages and the L0 table page it rewrites.
    let l1b = 0x8100_3000u64;
    let l0b = 0x8100_4000u64;
    let l0c = 0x8100_5000u64;
    let vaddr = teesec_isa::vm::VirtAddr(va);
    core.mem
        .write_u64(pt_root + vaddr.vpn(2) * 8, Pte::table(PhysAddr(l1)).0);
    core.mem
        .write_u64(l1 + vaddr.vpn(1) * 8, Pte::table(PhysAddr(l0)).0);
    core.mem.write_u64(
        l0 + vaddr.vpn(0) * 8,
        Pte::leaf(PhysAddr(pa1), Pte::R | Pte::W).0,
    );
    // Identity maps under vpn2 = 2 (the 0x8000_0000 gigapage).
    let code = teesec_isa::vm::VirtAddr(BASE);
    core.mem
        .write_u64(pt_root + code.vpn(2) * 8, Pte::table(PhysAddr(l1b)).0);
    core.mem
        .write_u64(l1b + code.vpn(1) * 8, Pte::table(PhysAddr(l0b)).0);
    for k in 0..4u64 {
        let page = BASE + k * 0x1000;
        core.mem.write_u64(
            l0b + teesec_isa::vm::VirtAddr(page).vpn(0) * 8,
            Pte::leaf(PhysAddr(page), Pte::R | Pte::X).0,
        );
    }
    let l0va = teesec_isa::vm::VirtAddr(l0);
    core.mem
        .write_u64(l1b + l0va.vpn(1) * 8, Pte::table(PhysAddr(l0c)).0);
    core.mem.write_u64(
        l0c + l0va.vpn(0) * 8,
        Pte::leaf(PhysAddr(l0), Pte::R | Pte::W).0,
    );
    core.mem.write_u64(pa1, 0x1111);
    core.mem.write_u64(pa2, 0x2222);
    assert_eq!(core.run(1_000_000), RunExit::Halted);
    assert_eq!(core.reg(Reg::S2), 0x1111, "initial translation");
    assert_eq!(
        core.reg(Reg::S3),
        0x1111,
        "stale TLB survives the PTE rewrite"
    );
    assert_eq!(
        core.reg(Reg::S4),
        0x2222,
        "sfence.vma picks up the new mapping"
    );
}

#[test]
fn cache_pressure_evicts_lru_lines() {
    // Touch ways+1 lines of one L1D set; the first line must be evicted
    // and re-miss (visible via the L1D-miss counter).
    let cfg = CoreConfig::boom(); // 64 sets x 4 ways
    let stride = cfg.l1d_sets as u64 * cfg.line_size;
    let mut core = build(cfg, |a| {
        a.li(Reg::S10, 0x8020_0000);
        for k in 0..5u64 {
            a.li(Reg::T0, 0x8020_0000 + k * stride);
            a.ld(Reg::T1, Reg::T0, 0);
        }
        // Re-touch the first line: must miss again (LRU evicted it).
        a.csrr(Reg::S2, csr::mhpmcounter_csr(1)); // L1D-miss counter
        a.ld(Reg::T1, Reg::S10, 0);
        a.csrr(Reg::S3, csr::mhpmcounter_csr(1));
        a.inst(Inst::Ebreak);
    });
    assert_eq!(core.run(1_000_000), RunExit::Halted);
    assert!(
        core.reg(Reg::S3) > core.reg(Reg::S2),
        "re-access of the evicted line must miss (misses {} -> {})",
        core.reg(Reg::S2),
        core.reg(Reg::S3)
    );
}

#[test]
fn trained_prefetcher_hides_sequential_miss_latency() {
    // Sequential scan on BOOM: the next-line prefetcher turns most misses
    // into hits; the same scan on XiangShan (no prefetcher) misses every
    // line.
    let run = |cfg: CoreConfig| {
        let mut core = build(cfg, |a| {
            a.li(Reg::S10, 0x8020_0000);
            for k in 0..8i32 {
                a.ld(Reg::T1, Reg::S10, k * 64);
                // Spacing beyond the memory round trip so the prefetch has
                // landed before the next demand access.
                for _ in 0..120 {
                    a.nop();
                }
            }
            a.csrr(Reg::S2, csr::mhpmcounter_csr(1));
            a.inst(Inst::Ebreak);
        });
        assert_eq!(core.run(1_000_000), RunExit::Halted);
        core.reg(Reg::S2)
    };
    let boom_misses = run(CoreConfig::boom());
    let xs_misses = run(CoreConfig::xiangshan());
    assert!(
        boom_misses < xs_misses,
        "prefetcher must reduce demand misses (boom {boom_misses} vs xs {xs_misses})"
    );
}

#[test]
fn transient_writeback_trace_has_pc_attribution() {
    // Every register-file trace event carries the PC of the writing
    // instruction — the checker's CheckerLog relies on it.
    let mut core = build(CoreConfig::boom(), |a| {
        a.li(Reg::A0, 7);
        a.addi(Reg::A1, Reg::A0, 1);
        a.inst(Inst::Ebreak);
    });
    assert_eq!(core.run(100_000), RunExit::Halted);
    for e in core.trace.for_structure(Structure::RegFile) {
        if let TraceEventKind::Write { .. } = e.kind {
            let pc = e.pc.expect("RF writes carry a PC");
            assert!(
                (BASE..BASE + 0x100).contains(&pc),
                "pc {pc:#x} inside the program"
            );
        }
    }
}

#[test]
fn cycle_limit_reported_for_runaway_programs() {
    let mut core = build(CoreConfig::boom(), |a| {
        a.label("spin");
        a.j("spin");
    });
    assert_eq!(core.run(5_000), RunExit::CycleLimit);
    assert!(!core.halted);
}

#[test]
fn division_in_pipeline_matches_alu_semantics() {
    let mut core = build(CoreConfig::xiangshan(), |a| {
        a.li(Reg::A0, (-100i64) as u64);
        a.li(Reg::A1, 7);
        a.inst(Inst::AluReg {
            op: teesec_isa::inst::AluOp::Div,
            rd: Reg::S2,
            rs1: Reg::A0,
            rs2: Reg::A1,
            word: false,
        });
        a.inst(Inst::AluReg {
            op: teesec_isa::inst::AluOp::Rem,
            rd: Reg::S3,
            rs1: Reg::A0,
            rs2: Reg::A1,
            word: false,
        });
        a.inst(Inst::AluReg {
            op: teesec_isa::inst::AluOp::Divu,
            rd: Reg::S4,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
            word: false,
        });
        a.inst(Inst::Ebreak);
    });
    assert_eq!(core.run(100_000), RunExit::Halted);
    assert_eq!(core.reg(Reg::S2) as i64, -14);
    assert_eq!(core.reg(Reg::S3) as i64, -2);
    assert_eq!(core.reg(Reg::S4), u64::MAX, "divide by zero");
}

#[test]
fn store_queue_forwards_to_younger_loads() {
    // A load immediately after a store to the same address must receive the
    // value from the store queue (and the forward counter must tick) even
    // though the store has not drained.
    let mut core = build(CoreConfig::xiangshan(), |a| {
        a.li(Reg::T0, 0x8010_0000);
        a.li(Reg::T1, 0x5A5A);
        a.sd(Reg::T1, Reg::T0, 0);
        a.ld(Reg::S2, Reg::T0, 0);
        a.csrr(Reg::S3, csr::mhpmcounter_csr(5)); // store-to-load forwards
        a.inst(Inst::Ebreak);
    });
    assert_eq!(core.run(100_000), RunExit::Halted);
    assert_eq!(core.reg(Reg::S2), 0x5A5A);
    assert!(core.reg(Reg::S3) >= 1, "SQ forward must be counted");
}

#[test]
fn partial_overlap_stalls_instead_of_forwarding() {
    // A byte store followed by a doubleword load of the same line must see
    // the merged memory value, not a bogus forward.
    let mut core = build(CoreConfig::xiangshan(), |a| {
        a.li(Reg::T0, 0x8010_0000);
        a.li(Reg::T1, 0x1111_2222_3333_4444u64);
        a.sd(Reg::T1, Reg::T0, 0);
        a.fence();
        a.li(Reg::T2, 0xAB);
        a.sb(Reg::T2, Reg::T0, 0);
        a.ld(Reg::S2, Reg::T0, 0); // partial overlap: must wait for drain
        a.inst(Inst::Ebreak);
    });
    assert_eq!(core.run(200_000), RunExit::Halted);
    assert_eq!(core.reg(Reg::S2), 0x1111_2222_3333_44AB);
}
