//! Property-based tests of the microarchitectural storage structures:
//! caches, fill buffers, TLBs and branch predictors maintain their
//! invariants under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::HashMap;

use teesec_uarch::btb::Ubtb;
use teesec_uarch::cache::{Cache, Lfb};
use teesec_uarch::mem::Memory;
use teesec_uarch::tlb::Tlb;
use teesec_uarch::trace::{Domain, FillPurpose};

proptest! {
    /// A cache behaves like a (partial) map: after a fill, reads return the
    /// filled bytes until the line is displaced; a displaced line reports a
    /// miss. A model HashMap tracks expected contents.
    #[test]
    fn cache_read_after_fill_is_consistent(
        ops in prop::collection::vec((0u64..64, any::<u8>()), 1..80)
    ) {
        let mut cache = Cache::new(4, 2, 64);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (line_idx, byte) in ops {
            let line_addr = line_idx * 64;
            cache.fill(line_addr, vec![byte; 64], Domain::Untrusted);
            model.insert(line_addr, byte);
            // Whatever is still resident must match the model.
            for (&la, &b) in &model {
                if cache.contains(la) {
                    prop_assert_eq!(cache.read(la, 1), Some(b as u64));
                }
            }
            // Structural invariant: at most sets×ways lines resident.
            prop_assert!(cache.valid_lines().count() <= 8);
        }
    }

    /// Cache writes modify exactly the targeted bytes of a resident line.
    #[test]
    fn cache_write_is_byte_precise(
        off in 0u64..56,
        value in any::<u64>(),
        len in prop::sample::select(vec![1u64, 2, 4, 8]),
    ) {
        let mut cache = Cache::new(2, 2, 64);
        cache.fill(0x1000, vec![0xAA; 64], Domain::Untrusted);
        let off = off / len * len; // align to the width
        prop_assert!(cache.write(0x1000 + off, value, len));
        let mask = if len == 8 { u64::MAX } else { (1 << (len * 8)) - 1 };
        prop_assert_eq!(cache.read(0x1000 + off, len), Some(value & mask));
        // A disjoint byte elsewhere in the line is untouched.
        let other = if off >= 8 { 0 } else { 56 };
        prop_assert_eq!(cache.read(0x1000 + other, 1), Some(0xAA));
    }

    /// The LFB never loses a pending request except through `flush_all`,
    /// and residual (filled) entries persist until reallocated.
    #[test]
    fn lfb_pending_requests_are_stable(
        lines in prop::collection::vec(1u64..1000, 1..30)
    ) {
        let mut lfb = Lfb::new(4, 64);
        let mut pending: Vec<(usize, u64)> = Vec::new();
        for line in lines {
            let line_addr = line * 64;
            if pending.iter().any(|&(_, la)| la == line_addr) {
                // Request merging: hardware never double-allocates a line.
                prop_assert!(lfb.pending_for(line_addr).is_some());
                continue;
            }
            if let Some(idx) = lfb.allocate(line_addr, FillPurpose::Demand) {
                pending.push((idx, line_addr));
                // Every pending request is still discoverable.
                for &(_, la) in &pending {
                    prop_assert!(lfb.pending_for(la).is_some(), "lost pending {:#x}", la);
                }
            } else {
                // Saturated: complete the oldest to make room.
                let (idx, la) = pending.remove(0);
                lfb.complete(idx, vec![0x5A; 64], Domain::Enclave(0), 1);
                prop_assert!(lfb.pending_for(la).is_none());
                // Residual data persists after completion.
                prop_assert!(lfb.entry(idx).valid);
                prop_assert_eq!(lfb.entry(idx).data[0], 0x5A);
            }
        }
    }

    /// TLB: the most recently inserted translation for a page always wins,
    /// and capacity is respected.
    #[test]
    fn tlb_latest_translation_wins(
        inserts in prop::collection::vec((0u64..32, 1u64..500), 1..64)
    ) {
        use teesec_isa::vm::{PhysAddr, Pte, VirtAddr};
        let mut tlb = Tlb::new(8);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (page, ppn) in inserts {
            let va = VirtAddr(page << 12);
            let pte = Pte::leaf(PhysAddr(ppn << 12), Pte::R | Pte::W);
            tlb.insert(va, pte, Domain::Untrusted);
            model.insert(page, ppn);
            prop_assert!(tlb.valid_count() <= 8);
            if let Some(hit) = tlb.lookup(va) {
                prop_assert_eq!(hit.ppn(), model[&page]);
            } else {
                prop_assert!(false, "entry just inserted must hit");
            }
        }
    }

    /// uBTB collisions are exactly PC pairs equal in the indexed+tagged
    /// low bits and different somewhere above.
    #[test]
    fn ubtb_collision_predicate(pc in any::<u64>(), flip_bit in 2u32..63) {
        let entries = 64usize; // 6 index bits
        let tag_bits = 10u32;
        let ubtb = Ubtb::new(entries, tag_bits);
        let pc = pc & !3; // instruction aligned
        let other = pc ^ (1 << flip_bit);
        let used_bits = 2 + entries.trailing_zeros() + tag_bits; // bits [2, 18)
        let expected = flip_bit >= used_bits;
        prop_assert_eq!(
            ubtb.collides(pc, other),
            expected,
            "pc {:#x} flip bit {} (used bits < {})",
            pc,
            flip_bit,
            used_bits
        );
    }

    /// Memory reads always reflect the latest write, across widths and
    /// page boundaries.
    #[test]
    fn memory_read_your_writes(
        writes in prop::collection::vec((0u64..0x3000, any::<u64>(), prop::sample::select(vec![1u64, 2, 4, 8])), 1..50)
    ) {
        let mut mem = Memory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (addr, value, len) in writes {
            mem.write_uint(addr, value, len);
            for i in 0..len {
                model.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for (&a, &b) in &model {
            prop_assert_eq!(mem.read_u8(a), b);
        }
    }
}
