//! Differential testing: on randomly generated programs, the out-of-order
//! core's *architectural* results must match the reference ISS exactly —
//! speculation, transient writebacks, lazy exceptions, prefetching and
//! store buffering must all be architecturally invisible. This is the
//! guard-rail that keeps the leakage behaviours microarchitectural.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use teesec_isa::asm::Assembler;
use teesec_isa::csr;
use teesec_isa::inst::{AluOp, Inst, MemWidth};
use teesec_isa::reg::Reg;
use teesec_uarch::core::Core;
use teesec_uarch::iss::{Iss, IssExit};
use teesec_uarch::mem::Memory;
use teesec_uarch::{CoreConfig, RunExit};

const BASE: u64 = 0x8000_0000;
const DATA: u64 = 0x8020_0000;
const DATA_SIZE: u64 = 0x1000;

/// Registers the generator plays with (x0 and the address base register
/// included deliberately).
const POOL: [Reg; 10] = [
    Reg::ZERO,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::S2,
    Reg::S3,
];

fn reg(rng: &mut StdRng) -> Reg {
    POOL[rng.gen_range(0..POOL.len())]
}

/// Emits a random, always-terminating program: straight-line ALU/memory
/// work, bounded countdown loops, forward branches, and occasional
/// deliberate faults (the trap vector halts the program).
fn random_program(seed: u64, len: usize) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Assembler::new(BASE);
    // Any fault ends the program at the handler (deterministically for
    // both engines).
    a.la(Reg::T5, "handler");
    a.csrw(csr::MTVEC, Reg::T5);
    a.li(Reg::S10, DATA); // memory base pointer, never overwritten
    let mut label = 0usize;
    for i in 0..len {
        match rng.gen_range(0..100) {
            0..=39 => {
                // ALU immediate / register ops.
                let op = [
                    AluOp::Add,
                    AluOp::Xor,
                    AluOp::Or,
                    AluOp::And,
                    AluOp::Sll,
                    AluOp::Srl,
                ][rng.gen_range(0..6)];
                if rng.gen_bool(0.5) {
                    let imm = rng.gen_range(-512..512);
                    let imm = if matches!(op, AluOp::Sll | AluOp::Srl) {
                        imm & 0x3F
                    } else {
                        imm
                    };
                    a.inst(Inst::AluImm {
                        op,
                        rd: reg(&mut rng),
                        rs1: reg(&mut rng),
                        imm,
                        word: rng.gen_bool(0.2),
                    });
                } else {
                    a.inst(Inst::AluReg {
                        op: [
                            op,
                            AluOp::Sub,
                            AluOp::Mul,
                            AluOp::Div,
                            AluOp::Divu,
                            AluOp::Rem,
                            AluOp::Remu,
                        ][rng.gen_range(0..7)],
                        rd: reg(&mut rng),
                        rs1: reg(&mut rng),
                        rs2: reg(&mut rng),
                        word: rng.gen_bool(0.2),
                    });
                }
            }
            40..=59 => {
                // Aligned memory op within the data window.
                let width =
                    [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D][rng.gen_range(0..4)];
                let off = (rng.gen_range(0..DATA_SIZE / 8) * 8) as i32 % 2040;
                if rng.gen_bool(0.5) {
                    a.store(width, reg(&mut rng), Reg::S10, off);
                } else {
                    a.load(width, reg(&mut rng), Reg::S10, off);
                }
            }
            60..=74 => {
                // Forward branch over a small block (always terminates).
                let l = format!("fwd_{label}");
                label += 1;
                a.branch(
                    [
                        teesec_isa::inst::BranchCond::Eq,
                        teesec_isa::inst::BranchCond::Ne,
                        teesec_isa::inst::BranchCond::Ltu,
                        teesec_isa::inst::BranchCond::Ge,
                    ][rng.gen_range(0..4)],
                    reg(&mut rng),
                    reg(&mut rng),
                    &l,
                );
                for _ in 0..rng.gen_range(1..4) {
                    a.addi(reg(&mut rng), reg(&mut rng), rng.gen_range(-64..64));
                }
                a.label(l);
            }
            75..=84 => {
                // Bounded countdown loop.
                let l = format!("loop_{label}");
                label += 1;
                a.li(Reg::T4, rng.gen_range(1..6));
                a.label(&l);
                a.add(reg(&mut rng), reg(&mut rng), reg(&mut rng));
                a.addi(Reg::T4, Reg::T4, -1);
                a.bnez(Reg::T4, &l);
            }
            85..=92 => {
                // Constant materialization.
                a.li(reg(&mut rng), rng.gen::<u64>());
            }
            93..=96 => {
                // Dependent chain (forwarding stress).
                let r = reg(&mut rng);
                a.addi(r, r, 1);
                a.slli(r, r, 1);
                a.xori(r, r, 0x55);
            }
            _ => {
                // Occasional misaligned access: traps to the handler and
                // ends the program on both engines identically.
                if i > len / 2 {
                    a.load(MemWidth::D, reg(&mut rng), Reg::S10, 3);
                } else {
                    a.nop();
                }
            }
        }
    }
    a.j("handler");
    a.label("handler");
    a.inst(Inst::Ebreak);
    a.assemble().expect("random program must assemble")
}

fn fill_data(mem: &mut Memory, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A);
    for off in (0..DATA_SIZE).step_by(8) {
        mem.write_u64(DATA + off, rng.gen());
    }
}

fn run_differential(seed: u64, cfg: &CoreConfig) {
    let words = random_program(seed, 120);
    let mut mem_core = Memory::new();
    mem_core.load_words(BASE, &words);
    fill_data(&mut mem_core, seed);
    let mut mem_iss = Memory::new();
    mem_iss.load_words(BASE, &words);
    fill_data(&mut mem_iss, seed);

    let mut core = Core::new(cfg.clone(), mem_core, BASE);
    core.trace.set_enabled(false);
    let core_exit = core.run(2_000_000);
    let mut iss = Iss::new(mem_iss, BASE);
    let iss_exit = iss.run(1_000_000);

    assert_eq!(
        core_exit,
        RunExit::Halted,
        "seed {seed}: core must halt on {}",
        cfg.name
    );
    assert_eq!(iss_exit, IssExit::Halted, "seed {seed}: ISS must halt");
    for r in Reg::all() {
        assert_eq!(
            core.reg(r),
            iss.reg(r),
            "seed {seed}: register {r} diverged on {} (core {:#x} vs iss {:#x})",
            cfg.name,
            core.reg(r),
            iss.reg(r)
        );
    }
    for off in (0..DATA_SIZE).step_by(8) {
        let a = core.mem.read_u64(DATA + off);
        let b = iss.mem.read_u64(DATA + off);
        assert_eq!(
            a, b,
            "seed {seed}: memory at +{off:#x} diverged on {}",
            cfg.name
        );
    }
    assert_eq!(
        core.csr.mcause, iss.csr.mcause,
        "seed {seed}: mcause diverged on {}",
        cfg.name
    );
    assert_eq!(
        core.csr.mtval, iss.csr.mtval,
        "seed {seed}: mtval diverged on {}",
        cfg.name
    );
}

#[test]
fn boom_matches_iss_on_random_programs() {
    for seed in 0..60 {
        run_differential(seed, &CoreConfig::boom());
    }
}

#[test]
fn xiangshan_matches_iss_on_random_programs() {
    for seed in 0..60 {
        run_differential(seed, &CoreConfig::xiangshan());
    }
}

#[test]
fn mitigated_cores_match_iss_too() {
    use teesec_uarch::config::MitigationSet;
    let hardened = CoreConfig::boom().with_mitigations(MitigationSet::all());
    for seed in 100..130 {
        run_differential(seed, &hardened);
    }
    let hardened_xs = CoreConfig::xiangshan().with_mitigations(MitigationSet::all());
    for seed in 100..130 {
        run_differential(seed, &hardened_xs);
    }
}
