//! In-process trace analysis: where did the campaign's wall-clock go?
//!
//! The analysis keys on the engine's span vocabulary: every executed case
//! is one `case` span whose children are the pipeline phases
//! ([`PHASE_ORDER`]). From those it derives:
//!
//! * **per-phase attribution** — a [`teesec_obs::Histogram`] of span
//!   durations per phase, digested to p50/p90/p99 ([`PhaseStat`]);
//! * **worker utilization** — busy/idle split and queue-starvation
//!   intervals (gaps ≥ 1 ms between consecutive cases) per worker
//!   ([`WorkerStat`]);
//! * **the critical path** — the case/idle hop chain of the worker that
//!   finished last; shortening any hop on it shortens the campaign
//!   ([`CriticalHop`]);
//! * **stragglers** — the top-N longest cases with per-phase breakdowns
//!   ([`Straggler`]), the table a perf hunt starts from.
//!
//! All report types are integer-valued (ratios in parts-per-million), so
//! they stay `Eq` and round-trip losslessly through the serde shim.

use serde::{Deserialize, Serialize};
use teesec_obs::{Histogram, Summary};

use crate::{Span, Trace};

/// Pipeline phase names in execution order (children of a `case` span).
pub const PHASE_ORDER: [&str; 5] = ["queue_wait", "build", "simulate", "scan", "diff"];

/// Span names that are containers rather than pipeline phases.
const CONTAINER_SPANS: [&str; 3] = ["campaign", "worker", "case"];

/// A worker gap shorter than this is scheduling jitter, not starvation.
const STARVE_MIN_US: u64 = 1_000;

/// Wall-time attribution for one pipeline phase across all cases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Phase (span) name.
    pub phase: String,
    /// Total µs spent in this phase across all workers.
    pub total_us: u64,
    /// Per-span duration digest (count/sum/min/max/p50/p90/p99).
    pub summary: Summary,
}

/// Utilization of one worker over the traced window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStat {
    /// Worker index.
    pub worker: usize,
    /// Cases this worker executed.
    pub cases: u64,
    /// µs inside `case` spans.
    pub busy_us: u64,
    /// µs of the traced window outside `case` spans.
    pub idle_us: u64,
    /// `busy_us / window` in parts-per-million (integer, so reports stay
    /// `Eq`; divide by 10⁴ for percent).
    pub busy_ratio_ppm: u64,
    /// Queue-starvation intervals: gaps ≥ 1 ms between consecutive cases
    /// (or before the first / after the last one).
    pub starved_intervals: u64,
    /// Total starved µs.
    pub starved_us: u64,
}

/// What one critical-path hop is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopKind {
    /// The worker was executing a case.
    Case,
    /// The worker sat idle (queue starvation or tail imbalance).
    Idle,
}

/// One hop on the campaign critical path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalHop {
    /// Case or idle gap.
    pub kind: HopKind,
    /// Case name (empty for idle hops).
    pub name: String,
    /// Hop start, µs since the trace origin.
    pub start_us: u64,
    /// Hop duration, µs.
    pub dur_us: u64,
    /// The phase that dominated the hop (empty for idle hops and cases
    /// without phase children).
    pub dominant_phase: String,
}

/// One of the top-N longest cases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Straggler {
    /// Case name.
    pub case: String,
    /// Corpus index.
    pub seq: u64,
    /// Worker that executed it.
    pub worker: usize,
    /// Case wall time, µs.
    pub dur_us: u64,
    /// Per-phase breakdown, `(phase, µs)` in [`PHASE_ORDER`] order.
    pub phase_us: Vec<(String, u64)>,
}

/// The product of [`Trace::analyze`]: the campaign's wall-time story.
///
/// Attached to `EngineMetrics` (and thus `CampaignResult`) by a traced
/// engine run, printed by `teesec trace-report`, and exported as
/// `teesec_phase_wall_seconds_*` / `teesec_worker_busy_ratio` metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Traced window: first span start to last span end, µs.
    pub wall_us: u64,
    /// Number of `case` spans.
    pub cases: u64,
    /// Worker the critical path runs on (the one that finished last).
    pub critical_worker: usize,
    /// Sum of critical-path hop durations, µs.
    pub critical_path_us: u64,
    /// The critical path itself, in time order.
    pub critical_path: Vec<CriticalHop>,
    /// Per-phase attribution, [`PHASE_ORDER`] first then extras.
    pub phases: Vec<PhaseStat>,
    /// Per-worker utilization, by worker index.
    pub workers: Vec<WorkerStat>,
    /// The top-N longest cases, longest first.
    pub stragglers: Vec<Straggler>,
}

/// Orders phase names: [`PHASE_ORDER`] position first, extras after,
/// alphabetically.
fn phase_rank(name: &str) -> (usize, &str) {
    let pos = PHASE_ORDER
        .iter()
        .position(|p| *p == name)
        .unwrap_or(PHASE_ORDER.len());
    (pos, name)
}

fn case_name(span: &Span) -> String {
    span.arg_text("case").unwrap_or(&span.name).to_string()
}

pub(crate) fn analyze(trace: &Trace, top_n: usize) -> TraceReport {
    let spans = &trace.spans;
    if spans.is_empty() {
        return TraceReport::default();
    }
    let t0 = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    let t1 = spans.iter().map(Span::end_us).max().unwrap_or(0);
    let wall_us = t1.saturating_sub(t0);

    let cases: Vec<&Span> = spans.iter().filter(|s| s.name == "case").collect();
    let children_of = |id: u64| -> Vec<&Span> {
        if id == 0 {
            return Vec::new();
        }
        spans.iter().filter(|s| s.parent == id).collect()
    };

    // Per-phase attribution: every span that is not a container is a
    // phase sample.
    let mut phase_hists: Vec<(String, Histogram)> = Vec::new();
    for s in spans {
        if CONTAINER_SPANS.contains(&s.name.as_str()) {
            continue;
        }
        match phase_hists.iter_mut().find(|(n, _)| *n == s.name) {
            Some((_, h)) => h.record(s.dur_us),
            None => {
                let mut h = Histogram::new();
                h.record(s.dur_us);
                phase_hists.push((s.name.clone(), h));
            }
        }
    }
    phase_hists.sort_by(|(a, _), (b, _)| phase_rank(a).cmp(&phase_rank(b)));
    let phases: Vec<PhaseStat> = phase_hists
        .into_iter()
        .map(|(phase, h)| PhaseStat {
            phase,
            total_us: h.sum().min(u128::from(u64::MAX)) as u64,
            summary: h.summary(),
        })
        .collect();

    // Worker utilization and starvation over the traced window.
    let mut worker_ids: Vec<usize> = cases.iter().map(|s| s.worker).collect();
    worker_ids.sort_unstable();
    worker_ids.dedup();
    let mut workers = Vec::new();
    for w in worker_ids {
        let mut mine: Vec<&&Span> = cases.iter().filter(|s| s.worker == w).collect();
        mine.sort_by_key(|s| s.start_us);
        let busy_us: u64 = mine.iter().map(|s| s.dur_us).sum();
        let mut gaps: Vec<u64> = Vec::new();
        let mut at = t0;
        for s in &mine {
            gaps.push(s.start_us.saturating_sub(at));
            at = at.max(s.end_us());
        }
        gaps.push(t1.saturating_sub(at));
        let starved: Vec<u64> = gaps.into_iter().filter(|g| *g >= STARVE_MIN_US).collect();
        workers.push(WorkerStat {
            worker: w,
            cases: mine.len() as u64,
            busy_us,
            idle_us: wall_us.saturating_sub(busy_us),
            busy_ratio_ppm: busy_us
                .saturating_mul(1_000_000)
                .checked_div(wall_us)
                .unwrap_or(0),
            starved_intervals: starved.len() as u64,
            starved_us: starved.iter().sum(),
        });
    }

    // Critical path: the hop chain (cases + idle gaps) of the worker whose
    // last case ends latest — the campaign cannot finish before it does.
    let critical_worker = cases
        .iter()
        .max_by_key(|s| (s.end_us(), s.worker))
        .map_or(0, |s| s.worker);
    let mut on_path: Vec<&&Span> = cases
        .iter()
        .filter(|s| s.worker == critical_worker)
        .collect();
    on_path.sort_by_key(|s| s.start_us);
    let mut critical_path = Vec::new();
    let mut at = t0;
    for s in &on_path {
        let gap = s.start_us.saturating_sub(at);
        if gap >= STARVE_MIN_US {
            critical_path.push(CriticalHop {
                kind: HopKind::Idle,
                name: String::new(),
                start_us: at,
                dur_us: gap,
                dominant_phase: String::new(),
            });
        }
        let dominant_phase = children_of(s.id)
            .into_iter()
            .max_by_key(|c| c.dur_us)
            .map(|c| c.name.clone())
            .unwrap_or_default();
        critical_path.push(CriticalHop {
            kind: HopKind::Case,
            name: case_name(s),
            start_us: s.start_us,
            dur_us: s.dur_us,
            dominant_phase,
        });
        at = at.max(s.end_us());
    }
    let critical_path_us = critical_path.iter().map(|h| h.dur_us).sum();

    // Stragglers: the longest cases, with per-phase breakdowns.
    let mut by_dur: Vec<&&Span> = cases.iter().collect();
    by_dur.sort_by_key(|s| (std::cmp::Reverse(s.dur_us), s.start_us));
    let stragglers = by_dur
        .into_iter()
        .take(top_n)
        .map(|s| {
            let mut phase_us: Vec<(String, u64)> = Vec::new();
            for c in children_of(s.id) {
                match phase_us.iter_mut().find(|(n, _)| *n == c.name) {
                    Some((_, us)) => *us += c.dur_us,
                    None => phase_us.push((c.name.clone(), c.dur_us)),
                }
            }
            phase_us.sort_by(|(a, _), (b, _)| phase_rank(a).cmp(&phase_rank(b)));
            Straggler {
                case: case_name(s),
                seq: s.arg_u64("seq").unwrap_or(0),
                worker: s.worker,
                dur_us: s.dur_us,
                phase_us,
            }
        })
        .collect();

    TraceReport {
        wall_us,
        cases: cases.len() as u64,
        critical_worker,
        critical_path_us,
        critical_path,
        phases,
        workers,
        stragglers,
    }
}

/// `1234567` µs → `"1.234s"`, `12345` → `"12.3ms"`, `123` → `"123us"`.
pub(crate) fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{}.{:03}s", us / 1_000_000, (us % 1_000_000) / 1_000)
    } else if us >= 1_000 {
        format!("{}.{}ms", us / 1_000, (us % 1_000) / 100)
    } else {
        format!("{us}us")
    }
}

impl TraceReport {
    /// Renders the report as the human-readable table `teesec
    /// trace-report` prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace report: {} cases over {} workers, wall {}",
            self.cases,
            self.workers.len(),
            fmt_us(self.wall_us)
        );
        let pct = |part: u64, whole: u64| -> String {
            match (
                (part * 100).checked_div(whole),
                (part * 1000).checked_div(whole),
            ) {
                (Some(whole_pct), Some(tenths)) => format!("{}.{}%", whole_pct, tenths % 10),
                _ => "-".to_string(),
            }
        };
        let _ = writeln!(
            out,
            "critical path: worker {}, {} across {} hops ({} of wall)",
            self.critical_worker,
            fmt_us(self.critical_path_us),
            self.critical_path.len(),
            pct(self.critical_path_us, self.wall_us),
        );

        let _ = writeln!(out, "\nphase attribution:");
        let _ = writeln!(
            out,
            "  {:<12} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "phase", "count", "total", "p50", "p90", "p99"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:<12} {:>6} {:>10} {:>10} {:>10} {:>10}",
                p.phase,
                p.summary.count,
                fmt_us(p.total_us),
                fmt_us(p.summary.p50),
                fmt_us(p.summary.p90),
                fmt_us(p.summary.p99)
            );
        }

        let _ = writeln!(out, "\nworker utilization:");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "  w{:<3} busy {:>6} ({} cases, busy {}, idle {}, {} starvation intervals totalling {})",
                w.worker,
                pct(w.busy_ratio_ppm, 1_000_000),
                w.cases,
                fmt_us(w.busy_us),
                fmt_us(w.idle_us),
                w.starved_intervals,
                fmt_us(w.starved_us)
            );
        }

        const MAX_HOPS: usize = 12;
        let _ = writeln!(out, "\ncritical path (worker {}):", self.critical_worker);
        for h in self.critical_path.iter().take(MAX_HOPS) {
            match h.kind {
                HopKind::Idle => {
                    let _ = writeln!(
                        out,
                        "  +{:<10} {:>10}  (idle)",
                        fmt_us(h.start_us),
                        fmt_us(h.dur_us)
                    );
                }
                HopKind::Case => {
                    let dom = if h.dominant_phase.is_empty() {
                        String::new()
                    } else {
                        format!("  [{}]", h.dominant_phase)
                    };
                    let _ = writeln!(
                        out,
                        "  +{:<10} {:>10}  {}{}",
                        fmt_us(h.start_us),
                        fmt_us(h.dur_us),
                        h.name,
                        dom
                    );
                }
            }
        }
        if self.critical_path.len() > MAX_HOPS {
            let _ = writeln!(
                out,
                "  ... {} more hops",
                self.critical_path.len() - MAX_HOPS
            );
        }

        let _ = writeln!(out, "\ntop stragglers:");
        for (i, s) in self.stragglers.iter().enumerate() {
            let phases: Vec<String> = s
                .phase_us
                .iter()
                .map(|(n, us)| format!("{n} {}", fmt_us(*us)))
                .collect();
            let _ = writeln!(
                out,
                "  {}. {} (seq {}, worker {}) {} — {}",
                i + 1,
                s.case,
                s.seq,
                s.worker,
                fmt_us(s.dur_us),
                phases.join(", ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArgValue;

    /// Two workers: w0 runs two fast cases with a starvation gap, w1 runs
    /// one long case that ends last (the critical path).
    fn sample_trace() -> Trace {
        let case = |id, worker, name: &str, seq, start, dur| Span {
            id,
            parent: 0,
            worker,
            name: "case".into(),
            start_us: start,
            dur_us: dur,
            args: vec![
                ("case".into(), ArgValue::Text(name.into())),
                ("seq".into(), ArgValue::U64(seq)),
            ],
        };
        let phase = |id, parent, worker, name: &str, start, dur| Span {
            id,
            parent,
            worker,
            name: name.into(),
            start_us: start,
            dur_us: dur,
            args: vec![],
        };
        Trace {
            spans: vec![
                case(1, 0, "fast_a", 0, 0, 10_000),
                phase(2, 1, 0, "build", 0, 2_000),
                phase(3, 1, 0, "simulate", 2_000, 7_000),
                phase(4, 1, 0, "scan", 9_000, 1_000),
                // 5 ms starvation gap on w0.
                case(5, 0, "fast_b", 2, 15_000, 10_000),
                phase(6, 5, 0, "simulate", 15_000, 9_000),
                case(7, 1, "slow", 1, 0, 40_000),
                phase(8, 7, 1, "build", 0, 1_000),
                phase(9, 7, 1, "simulate", 1_000, 38_000),
            ],
            marks: vec![],
        }
    }

    #[test]
    fn report_attributes_phases_and_finds_the_critical_worker() {
        let r = sample_trace().analyze(2);
        assert_eq!(r.cases, 3);
        assert_eq!(r.wall_us, 40_000);
        assert_eq!(r.critical_worker, 1);
        assert_eq!(r.critical_path.len(), 1, "one case, no gaps");
        assert_eq!(r.critical_path_us, 40_000);
        assert_eq!(r.critical_path[0].name, "slow");
        assert_eq!(r.critical_path[0].dominant_phase, "simulate");

        // Phases in PHASE_ORDER; simulate total = 7k + 9k + 38k.
        let names: Vec<&str> = r.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(names, ["build", "simulate", "scan"]);
        let sim = &r.phases[1];
        assert_eq!(sim.total_us, 54_000);
        assert_eq!(sim.summary.count, 3);
        assert_eq!(sim.summary.max, 38_000);
    }

    #[test]
    fn report_measures_starvation_and_utilization() {
        let r = sample_trace().analyze(2);
        let w0 = &r.workers[0];
        assert_eq!(w0.cases, 2);
        assert_eq!(w0.busy_us, 20_000);
        assert_eq!(w0.idle_us, 20_000);
        assert_eq!(w0.busy_ratio_ppm, 500_000);
        // The 5 ms mid gap and the 15 ms tail gap both count.
        assert_eq!(w0.starved_intervals, 2);
        assert_eq!(w0.starved_us, 20_000);
        let w1 = &r.workers[1];
        assert_eq!(w1.busy_ratio_ppm, 1_000_000);
        assert_eq!(w1.starved_intervals, 0);
    }

    #[test]
    fn stragglers_are_longest_first_with_phase_breakdowns() {
        let r = sample_trace().analyze(2);
        assert_eq!(r.stragglers.len(), 2);
        assert_eq!(r.stragglers[0].case, "slow");
        assert_eq!(r.stragglers[0].seq, 1);
        assert_eq!(
            r.stragglers[0].phase_us,
            vec![
                ("build".to_string(), 1_000),
                ("simulate".to_string(), 38_000)
            ]
        );
        assert_eq!(r.stragglers[1].dur_us, 10_000);
    }

    #[test]
    fn empty_trace_analyzes_to_the_default_report() {
        assert_eq!(Trace::default().analyze(5), TraceReport::default());
    }

    #[test]
    fn report_renders_every_section() {
        let text = sample_trace().analyze(5).render();
        for needle in [
            "trace report:",
            "critical path: worker 1",
            "phase attribution:",
            "simulate",
            "worker utilization:",
            "starvation intervals",
            "top stragglers:",
            "1. slow",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn fmt_us_picks_sensible_units() {
        assert_eq!(fmt_us(0), "0us");
        assert_eq!(fmt_us(999), "999us");
        assert_eq!(fmt_us(12_345), "12.3ms");
        assert_eq!(fmt_us(1_234_567), "1.234s");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = sample_trace().analyze(3);
        let json = serde_json::to_string(&r).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
