//! Span-based wall-clock tracing for the TEESec campaign pipeline.
//!
//! Three pieces, all free of external dependencies (shim-crate style, like
//! `teesec-obs`):
//!
//! * [`Tracer`] / [`SpanGuard`] — a thread-safe span recorder. Workers
//!   record into per-worker shards (each worker locks only its own shard,
//!   so recording is contention-free by construction) against one
//!   monotonic clock. A disabled tracer ([`Tracer::disabled`]) is a
//!   zero-allocation no-op, so instrumentation can stay unconditionally
//!   in place.
//! * Chrome/Perfetto export — [`Trace::to_chrome_json`] renders the
//!   recorded spans in the Chrome Trace Event format (one pid per worker)
//!   that <https://ui.perfetto.dev> and `chrome://tracing` load directly;
//!   [`Trace::from_chrome_json`] parses it back for offline analysis.
//! * [`Trace::analyze`] — an in-process analysis pass computing the
//!   campaign critical path, per-phase wall-time attribution
//!   (p50/p90/p99 via [`teesec_obs::Summary`]), worker utilization and
//!   queue-starvation intervals, and a top-N straggler-case table
//!   ([`TraceReport`]).
//!
//! The span vocabulary the engine emits (children of each `case` span):
//! `queue_wait` → `build` → `simulate` → `scan` → `diff`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod chrome;

pub use analyze::{
    CriticalHop, HopKind, PhaseStat, Straggler, TraceReport, WorkerStat, PHASE_ORDER,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// One argument value attached to a [`Span`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArgValue {
    /// An unsigned integer argument.
    U64(u64),
    /// A text argument.
    Text(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Text(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Text(v)
    }
}

/// One recorded interval: a named piece of work on one worker, with its
/// position in the span tree (`parent` is 0 for roots) and free-form args.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Unique id (tracer-wide, never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Worker index the span ran on (one Perfetto pid per worker).
    pub worker: usize,
    /// Span name (`case`, `build`, `simulate`, ...).
    pub name: String,
    /// Start, µs since the tracer's origin.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Attached arguments (case name, cache outcome, cycle counts, ...).
    pub args: Vec<(String, ArgValue)>,
}

impl Span {
    /// End timestamp, µs since the tracer's origin.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// The first `u64` argument named `key`.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::U64(n) if k == key => Some(*n),
            _ => None,
        })
    }

    /// The first text argument named `key`.
    pub fn arg_text(&self, key: &str) -> Option<&str> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::Text(t) if k == key => Some(t.as_str()),
            _ => None,
        })
    }
}

/// One point event: an instant (watchdog fire, snapshot capture) or a
/// counter sample (`value: Some`), attributed to a worker's timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mark {
    /// Worker index.
    pub worker: usize,
    /// Mark name.
    pub name: String,
    /// Timestamp, µs since the tracer's origin.
    pub at_us: u64,
    /// Id of the enclosing span, or 0.
    pub parent: u64,
    /// `Some` makes this a counter sample rendered as a Perfetto counter
    /// track; `None` an instant marker.
    pub value: Option<u64>,
}

#[derive(Debug, Default)]
struct Shard {
    spans: Vec<Span>,
    marks: Vec<Mark>,
}

#[derive(Debug)]
struct TracerInner {
    origin: Instant,
    next_id: AtomicU64,
    shards: Vec<Mutex<Shard>>,
}

impl TracerInner {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    fn shard(&self, worker: usize) -> &Mutex<Shard> {
        &self.shards[worker % self.shards.len()]
    }
}

/// A thread-safe span recorder with a monotonic µs clock.
///
/// Cloning shares the recorder (workers clone one tracer). The default
/// tracer is disabled: every operation is a no-op and [`SpanGuard`]s are
/// inert, so call sites never need an `if traced` branch.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Tracer(on, {} shards)", inner.shards.len()),
            None => f.write_str("Tracer(off)"),
        }
    }
}

impl Tracer {
    /// An enabled tracer with one buffer shard per worker. The clock's
    /// origin is the moment of this call.
    pub fn new(workers: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                origin: Instant::now(),
                next_id: AtomicU64::new(1),
                shards: (0..workers.max(1)).map(|_| Mutex::default()).collect(),
            })),
        }
    }

    /// The no-op tracer (same as `Tracer::default()`).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// µs since the tracer's origin (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.now_us())
    }

    /// Opens a span on `worker` under `parent` (0 = root). The span is
    /// recorded when the returned guard drops — including during panic
    /// unwinding, so quarantined cases still leave their partial timeline.
    pub fn span(&self, worker: usize, name: &str, parent: u64) -> SpanGuard<'_> {
        let Some(inner) = &self.inner else {
            return SpanGuard { live: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            live: Some(Live {
                inner,
                span: Span {
                    id,
                    parent,
                    worker,
                    name: name.to_string(),
                    start_us: inner.now_us(),
                    dur_us: 0,
                    args: Vec::new(),
                },
            }),
        }
    }

    /// Records an instant marker (watchdog fire, snapshot capture, ...).
    pub fn mark(&self, worker: usize, name: &str, parent: u64) {
        let Some(inner) = &self.inner else { return };
        let mark = Mark {
            worker,
            name: name.to_string(),
            at_us: inner.now_us(),
            parent,
            value: None,
        };
        inner
            .shard(worker)
            .lock()
            .expect("trace shard poisoned")
            .marks
            .push(mark);
    }

    /// Records one sample of a per-worker counter track (e.g. simulated
    /// cycles during a long `simulate` span).
    pub fn counter_sample(&self, worker: usize, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mark = Mark {
            worker,
            name: name.to_string(),
            at_us: inner.now_us(),
            parent: 0,
            value: Some(value),
        };
        inner
            .shard(worker)
            .lock()
            .expect("trace shard poisoned")
            .marks
            .push(mark);
    }

    /// Copies everything recorded so far into an analyzable [`Trace`]
    /// (spans sorted by start time, then id).
    pub fn snapshot(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace::default();
        };
        let mut trace = Trace::default();
        for shard in &inner.shards {
            let s = shard.lock().expect("trace shard poisoned");
            trace.spans.extend(s.spans.iter().cloned());
            trace.marks.extend(s.marks.iter().cloned());
        }
        trace.spans.sort_by_key(|s| (s.start_us, s.id));
        trace.marks.sort_by_key(|m| (m.at_us, m.worker));
        trace
    }
}

struct Live<'t> {
    inner: &'t TracerInner,
    span: Span,
}

/// An open span; records itself into the tracer when dropped.
///
/// Guards from a disabled tracer are inert: `id()` is 0 and `arg` is a
/// no-op, so instrumented code needs no enabled-check.
pub struct SpanGuard<'t> {
    live: Option<Live<'t>>,
}

impl<'t> SpanGuard<'t> {
    /// A guard that records nothing — what a disabled tracer hands out,
    /// constructible directly for code paths without a tracer in reach.
    pub fn inert() -> SpanGuard<'t> {
        SpanGuard { live: None }
    }

    /// The span's id (0 when the tracer is disabled) — the `parent` for
    /// child spans and the `span_id` threaded into JSONL events.
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.span.id)
    }

    /// Attaches an argument (visible in Perfetto's span details pane).
    /// Callable any time before the guard drops, so results computed by
    /// the traced work itself (cycles, findings) can be attached too.
    pub fn arg(&mut self, key: &str, value: impl Into<ArgValue>) {
        if let Some(live) = &mut self.live {
            live.span.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let Live { inner, mut span } = live;
            span.dur_us = inner.now_us().saturating_sub(span.start_us);
            inner
                .shard(span.worker)
                .lock()
                .expect("trace shard poisoned")
                .spans
                .push(span);
        }
    }
}

/// A tracing context threaded into lower pipeline layers: the tracer (if
/// any) plus the worker index and parent span the layer's spans attach
/// under. `Copy`, and inert when `tracer` is `None`, so plumbing it
/// through option structs costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceCtx<'t> {
    /// The recorder, or `None` for untraced runs.
    pub tracer: Option<&'t Tracer>,
    /// Worker index spans are attributed to.
    pub worker: usize,
    /// Parent span id (0 = root).
    pub parent: u64,
}

impl<'t> TraceCtx<'t> {
    /// Whether spans will actually be recorded.
    pub fn active(&self) -> bool {
        self.tracer.is_some_and(Tracer::enabled)
    }

    /// Opens a span under this context's worker and parent.
    pub fn span(&self, name: &str) -> SpanGuard<'t> {
        match self.tracer {
            Some(t) => t.span(self.worker, name, self.parent),
            None => SpanGuard::inert(),
        }
    }

    /// Records an instant marker under this context's parent.
    pub fn mark(&self, name: &str) {
        if let Some(t) = self.tracer {
            t.mark(self.worker, name, self.parent);
        }
    }

    /// Records a counter sample on this context's worker.
    pub fn counter_sample(&self, name: &str, value: u64) {
        if let Some(t) = self.tracer {
            t.counter_sample(self.worker, name, value);
        }
    }
}

/// Everything one tracer recorded: the input to both export formats and
/// the analysis pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Recorded spans, sorted by `(start_us, id)`.
    pub spans: Vec<Span>,
    /// Recorded instants and counter samples, sorted by `(at_us, worker)`.
    pub marks: Vec<Mark>,
}

impl Trace {
    /// Renders the trace in the Chrome Trace Event JSON format: one pid
    /// per worker, complete (`"ph":"X"`) events carrying `span_id` /
    /// `parent_id` and the span args, counter (`"C"`) and instant (`"i"`)
    /// events for marks. Loadable at <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }

    /// Parses a trace previously rendered by [`Trace::to_chrome_json`]
    /// (unknown event kinds are skipped, so traces touched by other tools
    /// still load).
    ///
    /// # Errors
    ///
    /// Fails when `s` is not JSON or has no `traceEvents` array.
    pub fn from_chrome_json(s: &str) -> Result<Trace, serde::Error> {
        chrome::from_chrome_json(s)
    }

    /// Computes the campaign [`TraceReport`]: critical path, per-phase
    /// wall-time attribution, worker utilization / starvation, and the
    /// `top_n` longest straggler cases.
    pub fn analyze(&self, top_n: usize) -> TraceReport {
        analyze::analyze(self, top_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.now_us(), 0);
        let mut g = t.span(0, "case", 0);
        assert_eq!(g.id(), 0);
        g.arg("k", 1u64);
        drop(g);
        t.mark(0, "m", 0);
        t.counter_sample(0, "c", 7);
        let trace = t.snapshot();
        assert!(trace.spans.is_empty() && trace.marks.is_empty());
    }

    #[test]
    fn spans_record_on_drop_with_unique_ids() {
        let t = Tracer::new(2);
        let root = t.span(0, "case", 0);
        let root_id = root.id();
        assert!(root_id > 0);
        {
            let mut child = t.span(0, "build", root_id);
            assert_ne!(child.id(), root_id);
            child.arg("cache", "hit");
        }
        drop(root);
        let trace = t.snapshot();
        assert_eq!(trace.spans.len(), 2);
        let child = trace.spans.iter().find(|s| s.name == "build").unwrap();
        let root = trace.spans.iter().find(|s| s.name == "case").unwrap();
        assert_eq!(child.parent, root.id);
        assert_eq!(child.arg_text("cache"), Some("hit"));
        // Child interval nested in parent interval.
        assert!(child.start_us >= root.start_us);
        assert!(child.end_us() <= root.end_us());
    }

    #[test]
    fn spans_survive_panic_unwinding() {
        let t = Tracer::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = t.span(0, "doomed", 0);
            panic!("boom");
        }));
        assert!(result.is_err());
        let trace = t.snapshot();
        assert_eq!(trace.spans.len(), 1, "span recorded during unwind");
        assert_eq!(trace.spans[0].name, "doomed");
    }

    #[test]
    fn concurrent_workers_do_not_lose_spans() {
        let t = Tracer::new(4);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let mut g = t.span(w, "case", 0);
                        g.arg("i", i);
                    }
                    t.counter_sample(w, "ticks", 1);
                });
            }
        });
        let trace = t.snapshot();
        assert_eq!(trace.spans.len(), 200);
        assert_eq!(trace.marks.len(), 4);
        // Ids unique across workers.
        let mut ids: Vec<u64> = trace.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
        // Snapshot ordering contract.
        for pair in trace.spans.windows(2) {
            assert!((pair[0].start_us, pair[0].id) <= (pair[1].start_us, pair[1].id));
        }
    }

    #[test]
    fn snapshot_is_reusable_midway() {
        let t = Tracer::new(1);
        drop(t.span(0, "a", 0));
        let early = t.snapshot();
        drop(t.span(0, "b", 0));
        let late = t.snapshot();
        assert_eq!(early.spans.len(), 1);
        assert_eq!(late.spans.len(), 2);
    }
}
