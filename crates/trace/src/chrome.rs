//! Chrome Trace Event (Perfetto-loadable) JSON export and import.
//!
//! The export writes the object form `{"traceEvents": [...]}` with:
//!
//! * one `"M"` (metadata) event naming each worker's pid;
//! * one `"X"` (complete) event per [`Span`], `ts`/`dur` in µs as the
//!   format requires, with `span_id`/`parent_id` embedded in `args` so
//!   external tools (and [`from_chrome_json`]) can rebuild the span tree;
//! * `"C"` (counter) and `"i"` (instant) events for [`Mark`]s.
//!
//! pid = worker + 1 (pid 0 renders oddly in some viewers), tid = 1.

use serde::Value;

use crate::{ArgValue, Mark, Span, Trace};

fn kv(key: &str, value: Value) -> (String, Value) {
    (key.to_string(), value)
}

fn vu(n: u64) -> Value {
    Value::UInt(u128::from(n))
}

fn vs(s: &str) -> Value {
    Value::String(s.to_string())
}

pub(crate) fn to_chrome_json(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::new();

    let mut workers: Vec<usize> = trace
        .spans
        .iter()
        .map(|s| s.worker)
        .chain(trace.marks.iter().map(|m| m.worker))
        .collect();
    workers.sort_unstable();
    workers.dedup();
    for w in workers {
        events.push(Value::Object(vec![
            kv("name", vs("process_name")),
            kv("ph", vs("M")),
            kv("pid", vu(w as u64 + 1)),
            kv("tid", vu(1)),
            kv(
                "args",
                Value::Object(vec![kv("name", vs(&format!("teesec worker {w}")))]),
            ),
        ]));
    }

    for s in &trace.spans {
        let mut args = vec![kv("span_id", vu(s.id)), kv("parent_id", vu(s.parent))];
        for (k, v) in &s.args {
            let rendered = match v {
                ArgValue::U64(n) => vu(*n),
                ArgValue::Text(t) => vs(t),
            };
            args.push((k.clone(), rendered));
        }
        events.push(Value::Object(vec![
            kv("name", vs(&s.name)),
            kv("cat", vs("teesec")),
            kv("ph", vs("X")),
            kv("ts", vu(s.start_us)),
            kv("dur", vu(s.dur_us)),
            kv("pid", vu(s.worker as u64 + 1)),
            kv("tid", vu(1)),
            kv("args", Value::Object(args)),
        ]));
    }

    for m in &trace.marks {
        match m.value {
            Some(value) => events.push(Value::Object(vec![
                kv("name", vs(&m.name)),
                kv("cat", vs("teesec")),
                kv("ph", vs("C")),
                kv("ts", vu(m.at_us)),
                kv("pid", vu(m.worker as u64 + 1)),
                kv("tid", vu(1)),
                kv("args", Value::Object(vec![kv("value", vu(value))])),
            ])),
            None => events.push(Value::Object(vec![
                kv("name", vs(&m.name)),
                kv("cat", vs("teesec")),
                kv("ph", vs("i")),
                kv("s", vs("t")),
                kv("ts", vu(m.at_us)),
                kv("pid", vu(m.worker as u64 + 1)),
                kv("tid", vu(1)),
                kv("args", Value::Object(vec![kv("parent_id", vu(m.parent))])),
            ])),
        }
    }

    let doc = Value::Object(vec![
        kv("traceEvents", Value::Array(events)),
        kv("displayTimeUnit", vs("ms")),
    ]);
    serde_json::to_string(&doc).expect("render chrome trace")
}

/// A numeric value as `u64` (accepting the float form other tools write).
fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => u64::try_from(*n).ok(),
        Value::Int(n) => u64::try_from(*n).ok(),
        Value::Float(f) if *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    value_u64(v.get(key)?)
}

fn field_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get(key)? {
        Value::String(s) => Some(s),
        _ => None,
    }
}

pub(crate) fn from_chrome_json(s: &str) -> Result<Trace, serde::Error> {
    let doc = serde_json::parse_value(s)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| serde::Error::custom("trace has no traceEvents array"))?;

    let mut trace = Trace::default();
    for ev in events {
        let worker = field_u64(ev, "pid").unwrap_or(1).saturating_sub(1) as usize;
        let name = field_str(ev, "name").unwrap_or("").to_string();
        match field_str(ev, "ph") {
            Some("X") => {
                let mut id = 0;
                let mut parent = 0;
                let mut args = Vec::new();
                if let Some(a) = ev.get("args").and_then(Value::as_object) {
                    for (k, v) in a {
                        match (k.as_str(), v) {
                            ("span_id", v) => id = value_u64(v).unwrap_or(0),
                            ("parent_id", v) => parent = value_u64(v).unwrap_or(0),
                            (_, Value::String(t)) => {
                                args.push((k.clone(), ArgValue::Text(t.clone())))
                            }
                            (_, v) => {
                                if let Some(n) = value_u64(v) {
                                    args.push((k.clone(), ArgValue::U64(n)));
                                }
                            }
                        }
                    }
                }
                trace.spans.push(Span {
                    id,
                    parent,
                    worker,
                    name,
                    start_us: field_u64(ev, "ts").unwrap_or(0),
                    dur_us: field_u64(ev, "dur").unwrap_or(0),
                    args,
                });
            }
            Some("i") | Some("I") => trace.marks.push(Mark {
                worker,
                name,
                at_us: field_u64(ev, "ts").unwrap_or(0),
                parent: ev
                    .get("args")
                    .and_then(|a| field_u64(a, "parent_id"))
                    .unwrap_or(0),
                value: None,
            }),
            Some("C") => trace.marks.push(Mark {
                worker,
                name,
                at_us: field_u64(ev, "ts").unwrap_or(0),
                parent: 0,
                value: Some(
                    ev.get("args")
                        .and_then(|a| field_u64(a, "value"))
                        .unwrap_or(0),
                ),
            }),
            _ => {}
        }
    }
    trace.spans.sort_by_key(|s| (s.start_us, s.id));
    trace.marks.sort_by_key(|m| (m.at_us, m.worker));
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            spans: vec![
                Span {
                    id: 1,
                    parent: 0,
                    worker: 0,
                    name: "case".into(),
                    start_us: 10,
                    dur_us: 100,
                    args: vec![
                        ("case".into(), ArgValue::Text("exp_l1d".into())),
                        ("seq".into(), ArgValue::U64(3)),
                    ],
                },
                Span {
                    id: 2,
                    parent: 1,
                    worker: 0,
                    name: "simulate".into(),
                    start_us: 20,
                    dur_us: 80,
                    args: vec![],
                },
            ],
            marks: vec![
                Mark {
                    worker: 0,
                    name: "watchdog".into(),
                    at_us: 50,
                    parent: 1,
                    value: None,
                },
                Mark {
                    worker: 0,
                    name: "sim_cycles".into(),
                    at_us: 60,
                    parent: 0,
                    value: Some(4096),
                },
            ],
        }
    }

    #[test]
    fn chrome_json_has_the_event_format_shape() {
        let json = sample_trace().to_chrome_json();
        let doc = serde_json::parse_value(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        // 1 process_name metadata + 2 spans + 1 instant + 1 counter.
        assert_eq!(events.len(), 5);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| field_str(e, "ph") == Some("M"))
            .collect();
        assert_eq!(metas.len(), 1);
        assert_eq!(field_u64(metas[0], "pid"), Some(1), "pid = worker + 1");
        let xs: Vec<_> = events
            .iter()
            .filter(|e| field_str(e, "ph") == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        let case = xs
            .iter()
            .find(|e| field_str(e, "name") == Some("case"))
            .unwrap();
        assert_eq!(field_u64(case, "ts"), Some(10));
        assert_eq!(field_u64(case, "dur"), Some(100));
        let args = case.get("args").unwrap();
        assert_eq!(field_u64(args, "span_id"), Some(1));
        assert_eq!(field_str(args, "case"), Some("exp_l1d"));
    }

    #[test]
    fn chrome_json_round_trips() {
        let trace = sample_trace();
        let back = Trace::from_chrome_json(&trace.to_chrome_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn unknown_event_kinds_are_skipped() {
        let json = r#"{"traceEvents":[
            {"name":"flow","ph":"s","ts":1,"pid":1,"tid":1},
            {"name":"b","cat":"teesec","ph":"X","ts":5,"dur":2,"pid":2,"tid":1,
             "args":{"span_id":9,"parent_id":0}}
        ]}"#;
        let trace = Trace::from_chrome_json(json).unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].id, 9);
        assert_eq!(trace.spans[0].worker, 1);
        assert!(trace.marks.is_empty());
    }

    #[test]
    fn missing_trace_events_is_an_error() {
        assert!(Trace::from_chrome_json("{}").is_err());
        assert!(Trace::from_chrome_json("not json").is_err());
    }
}
