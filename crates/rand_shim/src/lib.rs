//! A deterministic, dependency-free stand-in for the `rand` crate surface
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_range, gen_bool}`.
//!
//! The generator is xoshiro256** seeded through splitmix64. It is *not* the
//! real `StdRng` stream — corpora differ from upstream-rand runs — but the
//! repo's tests only rely on determinism for a fixed seed and divergence
//! across seeds, which any sound PRNG provides.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges (and other shapes) samplable from an RNG, yielding `T`.
///
/// `T` is a trait parameter (not an associated type) so that call sites
/// like `pool[rng.gen_range(0..len)]` let the indexing context infer
/// `T = usize`, exactly as with the real rand crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Numeric types uniformly samplable over a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `start..end` (`start < end`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

// One blanket impl (rather than per-type impls) so that a call like
// `pool[rng.gen_range(0..len)]` unifies the return type with the literal's
// integer variable, letting the indexing context infer `usize`.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end - start) as u64;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                (start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// Types drawable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, exactly like rand's float conversion.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-512i32..512);
            assert!((-512..512).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
