//! The campaign driver: generate → simulate → check over a whole corpus,
//! aggregating which of the paper's ten leakage classes each design
//! exhibits (the Table 3 matrix) and per-phase timing (the Table 2 costs).

use std::collections::BTreeSet;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use teesec_uarch::config::CoreConfig;

use crate::checker::check_case;
use crate::fuzz::Fuzzer;
use crate::paths::AccessPath;
use crate::plan::VerificationPlan;
use crate::report::{CheckReport, LeakClass};
use crate::runner::run_case;

/// Summary of one executed + checked case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Case name.
    pub name: String,
    /// Access path exercised.
    pub path: AccessPath,
    /// Simulated cycles.
    pub cycles: u64,
    /// Whether the case halted inside its budget.
    pub halted: bool,
    /// Classes detected.
    pub classes: BTreeSet<LeakClass>,
    /// Total findings (including unclassified principle violations).
    pub finding_count: usize,
}

/// Wall-clock cost of each campaign phase (the Table 2 shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Verification-plan profiling (automated here; 40 person-hours of
    /// one-time manual effort in the paper).
    pub plan_us: u128,
    /// Test-case generation (constructor + fuzzer).
    pub construct_us: u128,
    /// RTL-analog simulation.
    pub simulate_us: u128,
    /// Log analysis.
    pub check_us: u128,
}

/// The outcome of a full campaign on one design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Design name.
    pub design: String,
    /// Number of test cases executed.
    pub case_count: usize,
    /// Per-case summaries.
    pub cases: Vec<CaseResult>,
    /// Union of detected classes — one row of the Table 3 matrix.
    pub classes_found: BTreeSet<LeakClass>,
    /// Phase costs.
    pub timing: PhaseTiming,
}

impl CampaignResult {
    /// `true` if `class` was detected anywhere in the corpus.
    pub fn found(&self, class: LeakClass) -> bool {
        self.classes_found.contains(&class)
    }

    /// Cases that uncovered at least one classified leak.
    pub fn leaking_cases(&self) -> impl Iterator<Item = &CaseResult> {
        self.cases.iter().filter(|c| !c.classes.is_empty())
    }

    /// Average simulated cycles per case.
    pub fn avg_cycles(&self) -> u64 {
        if self.cases.is_empty() {
            0
        } else {
            self.cases.iter().map(|c| c.cycles).sum::<u64>() / self.cases.len() as u64
        }
    }
}

/// A campaign: a design under test plus a fuzzer.
///
/// ```
/// use teesec::campaign::Campaign;
/// use teesec::fuzz::Fuzzer;
/// use teesec_uarch::CoreConfig;
///
/// let (result, _) = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(5)).run();
/// assert_eq!(result.case_count, 5);
/// assert!(result.cases.iter().all(|c| c.halted));
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: CoreConfig,
    fuzzer: Fuzzer,
    keep_reports: bool,
}

impl Campaign {
    /// A campaign over `cfg` with the given fuzzer.
    pub fn new(cfg: CoreConfig, fuzzer: Fuzzer) -> Campaign {
        Campaign { cfg, fuzzer, keep_reports: false }
    }

    /// Also retain full per-case reports (memory-heavier).
    pub fn keep_reports(mut self) -> Campaign {
        self.keep_reports = true;
        self
    }

    /// The design configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs the campaign across `threads` worker threads. Cases are
    /// independent (each builds its own platform), so results are identical
    /// to [`Campaign::run`] — only wall-clock changes. Per-phase timing is
    /// summed across workers (CPU time, not wall time).
    pub fn run_parallel(&self, threads: usize) -> (CampaignResult, Vec<CheckReport>) {
        let threads = threads.max(1);
        let t0 = Instant::now();
        let _plan = VerificationPlan::profile(&self.cfg);
        let plan_us = t0.elapsed().as_micros();
        let t1 = Instant::now();
        let corpus = self.fuzzer.generate(&self.cfg);
        let construct_us = t1.elapsed().as_micros();

        let chunk = corpus.len().div_ceil(threads);
        let mut slots: Vec<Vec<(usize, CaseResult, Option<CheckReport>, u128, u128)>> =
            Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, part) in corpus.chunks(chunk.max(1)).enumerate() {
                let cfg = &self.cfg;
                let keep = self.keep_reports;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::with_capacity(part.len());
                    for (k, tc) in part.iter().enumerate() {
                        let t2 = Instant::now();
                        let outcome = run_case(tc, cfg)
                            .unwrap_or_else(|e| panic!("case {} failed to build: {e}", tc.name));
                        let sim = t2.elapsed().as_micros();
                        let t3 = Instant::now();
                        let report = check_case(tc, &outcome, cfg);
                        let chk = t3.elapsed().as_micros();
                        let classes = report.classes();
                        out.push((
                            w * chunk + k,
                            CaseResult {
                                name: tc.name.clone(),
                                path: tc.path,
                                cycles: outcome.cycles,
                                halted: outcome.exit == teesec_uarch::RunExit::Halted,
                                classes,
                                finding_count: report.findings.len(),
                            },
                            keep.then_some(report),
                            sim,
                            chk,
                        ));
                    }
                    out
                }));
            }
            for h in handles {
                slots.push(h.join().expect("campaign worker panicked"));
            }
        });
        let mut flat: Vec<_> = slots.into_iter().flatten().collect();
        flat.sort_by_key(|(i, ..)| *i);
        let mut classes_found = BTreeSet::new();
        let mut cases = Vec::with_capacity(flat.len());
        let mut reports = Vec::new();
        let (mut simulate_us, mut check_us) = (0u128, 0u128);
        for (_, cr, rep, sim, chk) in flat {
            classes_found.extend(cr.classes.iter().copied());
            cases.push(cr);
            if let Some(r) = rep {
                reports.push(r);
            }
            simulate_us += sim;
            check_us += chk;
        }
        (
            CampaignResult {
                design: self.cfg.name.clone(),
                case_count: cases.len(),
                cases,
                classes_found,
                timing: PhaseTiming { plan_us, construct_us, simulate_us, check_us },
            },
            reports,
        )
    }

    /// Runs the whole campaign. Returns the aggregate result and, when
    /// [`Campaign::keep_reports`] was requested, the per-case reports.
    pub fn run(&self) -> (CampaignResult, Vec<CheckReport>) {
        let t0 = Instant::now();
        let _plan = VerificationPlan::profile(&self.cfg);
        let plan_us = t0.elapsed().as_micros();

        let t1 = Instant::now();
        let corpus = self.fuzzer.generate(&self.cfg);
        let construct_us = t1.elapsed().as_micros();

        let mut cases = Vec::with_capacity(corpus.len());
        let mut classes_found = BTreeSet::new();
        let mut reports = Vec::new();
        let mut simulate_us = 0u128;
        let mut check_us = 0u128;
        for tc in &corpus {
            let t2 = Instant::now();
            let outcome = match run_case(tc, &self.cfg) {
                Ok(o) => o,
                Err(e) => panic!("test case {} failed to build: {e}", tc.name),
            };
            simulate_us += t2.elapsed().as_micros();

            let t3 = Instant::now();
            let report = check_case(tc, &outcome, &self.cfg);
            check_us += t3.elapsed().as_micros();

            let classes = report.classes();
            classes_found.extend(classes.iter().copied());
            cases.push(CaseResult {
                name: tc.name.clone(),
                path: tc.path,
                cycles: outcome.cycles,
                halted: outcome.exit == teesec_uarch::RunExit::Halted,
                classes,
                finding_count: report.findings.len(),
            });
            if self.keep_reports {
                reports.push(report);
            }
        }
        (
            CampaignResult {
                design: self.cfg.name.clone(),
                case_count: cases.len(),
                cases,
                classes_found,
                timing: PhaseTiming { plan_us, construct_us, simulate_us, check_us },
            },
            reports,
        )
    }
}

/// Renders the Table 3 matrix (class × design) from per-design results.
pub fn vulnerability_matrix(results: &[&CampaignResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<6} {:<10}", "Case", "Source"));
    for r in results {
        out.push_str(&format!(" {:>10}", r.design));
    }
    out.push('\n');
    for &class in LeakClass::all() {
        out.push_str(&format!("{:<6} {:<10}", class.to_string(), class.source()));
        for r in results {
            out.push_str(&format!(" {:>10}", if r.found(class) { "X" } else { "-" }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced-corpus smoke campaign (full corpora run in the benches and
    /// integration tests).
    #[test]
    fn small_campaign_runs_and_finds_leaks_on_boom() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(20));
        let (result, _) = campaign.run();
        assert_eq!(result.case_count, 20);
        assert!(result.cases.iter().all(|c| c.halted), "all cases must halt");
        assert!(
            !result.classes_found.is_empty(),
            "a 20-case corpus already uncovers leaks on the naive deployment"
        );
        assert!(result.avg_cycles() > 0);
    }

    #[test]
    fn parallel_run_matches_serial() {
        let campaign = Campaign::new(CoreConfig::xiangshan(), Fuzzer::with_target(24));
        let (serial, _) = campaign.run();
        let (parallel, _) = campaign.run_parallel(4);
        assert_eq!(parallel.case_count, serial.case_count);
        assert_eq!(parallel.classes_found, serial.classes_found);
        let names_s: Vec<_> = serial.cases.iter().map(|c| &c.name).collect();
        let names_p: Vec<_> = parallel.cases.iter().map(|c| &c.name).collect();
        assert_eq!(names_p, names_s, "case order preserved");
        for (a, b) in serial.cases.iter().zip(&parallel.cases) {
            assert_eq!(a.cycles, b.cycles, "simulation is deterministic: {}", a.name);
            assert_eq!(a.classes, b.classes);
        }
    }

    #[test]
    fn matrix_renders_all_ten_rows() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(4));
        let (result, _) = campaign.run();
        let m = vulnerability_matrix(&[&result]);
        for class in LeakClass::all() {
            assert!(m.contains(&class.to_string()), "missing row {class}");
        }
        assert!(m.contains("boom"));
    }
}
