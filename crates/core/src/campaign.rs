//! The campaign driver: generate → simulate → check over a whole corpus,
//! aggregating which of the paper's ten leakage classes each design
//! exhibits (the Table 3 matrix) and per-phase timing (the Table 2 costs).

use std::collections::BTreeSet;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use teesec_uarch::config::CoreConfig;

use crate::engine::{execute_case, Engine, EngineMetrics, EngineOptions, ExecOptions};
use crate::fuzz::Fuzzer;
use crate::paths::AccessPath;
use crate::plan::VerificationPlan;
use crate::report::{CheckReport, LeakClass};

/// Summary of one executed + checked case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Case name.
    pub name: String,
    /// Access path exercised.
    pub path: AccessPath,
    /// Simulated cycles.
    pub cycles: u64,
    /// Whether the case halted inside its budget.
    pub halted: bool,
    /// Classes detected.
    pub classes: BTreeSet<LeakClass>,
    /// Total findings (including unclassified principle violations).
    pub finding_count: usize,
    /// Why the case was quarantined (build error or panic), if it was.
    /// Quarantined cases report zero cycles and no findings.
    pub error: Option<String>,
}

/// Wall-clock cost of each campaign phase (the Table 2 shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Verification-plan profiling (automated here; 40 person-hours of
    /// one-time manual effort in the paper).
    pub plan_us: u128,
    /// Test-case generation (constructor + fuzzer).
    pub construct_us: u128,
    /// RTL-analog simulation.
    pub simulate_us: u128,
    /// Log analysis.
    pub check_us: u128,
}

/// The outcome of a full campaign on one design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Design name.
    pub design: String,
    /// Number of test cases executed.
    pub case_count: usize,
    /// Per-case summaries.
    pub cases: Vec<CaseResult>,
    /// Union of detected classes — one row of the Table 3 matrix.
    pub classes_found: BTreeSet<LeakClass>,
    /// Phase costs.
    pub timing: PhaseTiming,
    /// Engine observability; `None` for the serial reference path.
    pub engine: Option<EngineMetrics>,
}

impl CampaignResult {
    /// `true` if `class` was detected anywhere in the corpus.
    pub fn found(&self, class: LeakClass) -> bool {
        self.classes_found.contains(&class)
    }

    /// Cases that uncovered at least one classified leak.
    pub fn leaking_cases(&self) -> impl Iterator<Item = &CaseResult> {
        self.cases.iter().filter(|c| !c.classes.is_empty())
    }

    /// Cases quarantined by fault isolation (build error or panic).
    pub fn quarantined_cases(&self) -> impl Iterator<Item = &CaseResult> {
        self.cases.iter().filter(|c| c.error.is_some())
    }

    /// Average simulated cycles per case.
    pub fn avg_cycles(&self) -> u64 {
        if self.cases.is_empty() {
            0
        } else {
            self.cases.iter().map(|c| c.cycles).sum::<u64>() / self.cases.len() as u64
        }
    }
}

/// A campaign: a design under test plus a fuzzer.
///
/// ```
/// use teesec::campaign::Campaign;
/// use teesec::fuzz::Fuzzer;
/// use teesec_uarch::CoreConfig;
///
/// let (result, _) = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(5)).run();
/// assert_eq!(result.case_count, 5);
/// assert!(result.cases.iter().all(|c| c.halted));
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: CoreConfig,
    fuzzer: Fuzzer,
    keep_reports: bool,
}

impl Campaign {
    /// A campaign over `cfg` with the given fuzzer.
    pub fn new(cfg: CoreConfig, fuzzer: Fuzzer) -> Campaign {
        Campaign {
            cfg,
            fuzzer,
            keep_reports: false,
        }
    }

    /// Also retain full per-case reports (memory-heavier).
    pub fn keep_reports(mut self) -> Campaign {
        self.keep_reports = true;
        self
    }

    /// The design configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Profiles the plan and generates the corpus, returning it with a
    /// [`PhaseTiming`] carrying those two phases' costs.
    fn prepare(&self) -> (Vec<crate::testcase::TestCase>, PhaseTiming) {
        let t0 = Instant::now();
        let _plan = VerificationPlan::profile(&self.cfg);
        let plan_us = t0.elapsed().as_micros();

        let t1 = Instant::now();
        let corpus = self.fuzzer.generate(&self.cfg);
        let construct_us = t1.elapsed().as_micros();
        (
            corpus,
            PhaseTiming {
                plan_us,
                construct_us,
                simulate_us: 0,
                check_us: 0,
            },
        )
    }

    /// Runs the campaign on the work-stealing [`Engine`] with full control
    /// over isolation, watchdog, and observability options.
    /// `opts.keep_reports` is overridden by [`Campaign::keep_reports`].
    ///
    /// The returned result equals [`Campaign::run`]'s at any thread count,
    /// modulo `timing` and the attached [`EngineMetrics`].
    pub fn run_engine(&self, mut opts: EngineOptions) -> (CampaignResult, Vec<CheckReport>) {
        let (corpus, timing) = self.prepare();
        opts.keep_reports = self.keep_reports;
        Engine::new(self.cfg.clone(), opts).run_corpus(&corpus, timing)
    }

    /// Runs the campaign across `threads` engine workers. Cases are
    /// independent (each builds its own platform), so results are identical
    /// to [`Campaign::run`] — only wall-clock changes. Per-phase timing is
    /// summed across workers (CPU time, not wall time).
    pub fn run_parallel(&self, threads: usize) -> (CampaignResult, Vec<CheckReport>) {
        self.run_engine(EngineOptions {
            threads,
            ..EngineOptions::default()
        })
    }

    /// Runs the whole campaign serially — the reference implementation the
    /// engine is checked against. Returns the aggregate result and, when
    /// [`Campaign::keep_reports`] was requested, the per-case reports.
    ///
    /// Cases that fail to build or panic are quarantined into
    /// [`CaseResult::error`], exactly as the engine does.
    pub fn run(&self) -> (CampaignResult, Vec<CheckReport>) {
        let (corpus, mut timing) = self.prepare();

        let mut cases = Vec::with_capacity(corpus.len());
        let mut classes_found = BTreeSet::new();
        let mut reports = Vec::new();
        for tc in &corpus {
            let exec = execute_case(
                tc,
                &self.cfg,
                ExecOptions {
                    keep_report: self.keep_reports,
                    ..ExecOptions::default()
                },
            );
            timing.simulate_us += exec.build_us + exec.simulate_us;
            timing.check_us += exec.check_us;
            classes_found.extend(exec.result.classes.iter().copied());
            cases.push(exec.result);
            if let Some(report) = exec.report {
                reports.push(report);
            }
        }
        (
            CampaignResult {
                design: self.cfg.name.clone(),
                case_count: cases.len(),
                cases,
                classes_found,
                timing,
                engine: None,
            },
            reports,
        )
    }
}

/// Renders the Table 3 matrix (class × design) from per-design results.
pub fn vulnerability_matrix(results: &[&CampaignResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<6} {:<10}", "Case", "Source"));
    for r in results {
        out.push_str(&format!(" {:>10}", r.design));
    }
    out.push('\n');
    for &class in LeakClass::all() {
        out.push_str(&format!("{:<6} {:<10}", class.to_string(), class.source()));
        for r in results {
            out.push_str(&format!(" {:>10}", if r.found(class) { "X" } else { "-" }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced-corpus smoke campaign (full corpora run in the benches and
    /// integration tests).
    #[test]
    fn small_campaign_runs_and_finds_leaks_on_boom() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(20));
        let (result, _) = campaign.run();
        assert_eq!(result.case_count, 20);
        assert!(result.cases.iter().all(|c| c.halted), "all cases must halt");
        assert!(
            !result.classes_found.is_empty(),
            "a 20-case corpus already uncovers leaks on the naive deployment"
        );
        assert!(result.avg_cycles() > 0);
    }

    #[test]
    fn parallel_run_matches_serial() {
        let campaign = Campaign::new(CoreConfig::xiangshan(), Fuzzer::with_target(24));
        let (serial, _) = campaign.run();
        let (parallel, _) = campaign.run_parallel(4);
        assert_eq!(parallel.case_count, serial.case_count);
        assert_eq!(parallel.classes_found, serial.classes_found);
        let names_s: Vec<_> = serial.cases.iter().map(|c| &c.name).collect();
        let names_p: Vec<_> = parallel.cases.iter().map(|c| &c.name).collect();
        assert_eq!(names_p, names_s, "case order preserved");
        for (a, b) in serial.cases.iter().zip(&parallel.cases) {
            assert_eq!(
                a.cycles, b.cycles,
                "simulation is deterministic: {}",
                a.name
            );
            assert_eq!(a.classes, b.classes);
        }
    }

    #[test]
    fn matrix_renders_all_ten_rows() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(4));
        let (result, _) = campaign.run();
        let m = vulnerability_matrix(&[&result]);
        for class in LeakClass::all() {
            assert!(m.contains(&class.to_string()), "missing row {class}");
        }
        assert!(m.contains("boom"));
    }
}
