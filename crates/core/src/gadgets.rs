//! The test-gadget catalog: 8 setup gadgets, 12 helper gadgets and 15
//! access gadgets, mirroring the paper's Table 2 inventory.
//!
//! Every gadget is a parameterized function appending [`Step`]s to a
//! [`TestCase`]. Setup gadgets drive the TEE API; helper gadgets arrange
//! microarchitectural preconditions (seed secrets, warm or evict caches,
//! poison `satp`, prime branch predictors); access gadgets exercise exactly
//! one memory access path from the verification plan.

use serde::{Deserialize, Serialize};

use teesec_isa::csr;
use teesec_isa::inst::MemWidth;
use teesec_tee::layout;
use teesec_tee::SbiCall;
use teesec_uarch::trace::Domain;

use crate::paths::AccessPath;
use crate::testcase::{Actor, Step, TestCase};

/// Gadget classes (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GadgetKind {
    /// Drives the TEE software API (create/run/stop/...).
    Setup,
    /// Arranges microarchitectural state / seeds secrets.
    Helper,
    /// Exercises one memory access path.
    Access,
}

/// Catalog metadata for one gadget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GadgetSpec {
    /// Gadget name (paper-style).
    pub name: &'static str,
    /// Class.
    pub kind: GadgetKind,
    /// The access path, for access gadgets.
    pub path: Option<AccessPath>,
    /// Parameter names the fuzzer varies.
    pub params: &'static [&'static str],
}

/// The full gadget catalog (8 setup + 12 helper + 15 access = 35 gadgets).
pub fn catalog() -> Vec<GadgetSpec> {
    use GadgetKind::*;
    let mut v = vec![
        // ---- setup (8) --------------------------------------------------
        GadgetSpec {
            name: "Create_Enclave",
            kind: Setup,
            path: None,
            params: &["enclave"],
        },
        GadgetSpec {
            name: "Run_Enclave",
            kind: Setup,
            path: None,
            params: &["enclave"],
        },
        GadgetSpec {
            name: "Stop_Enclave",
            kind: Setup,
            path: None,
            params: &["enclave"],
        },
        GadgetSpec {
            name: "Resume_Enclave",
            kind: Setup,
            path: None,
            params: &["enclave"],
        },
        GadgetSpec {
            name: "Destroy_Enclave",
            kind: Setup,
            path: None,
            params: &["enclave"],
        },
        GadgetSpec {
            name: "Exit_Enclave",
            kind: Setup,
            path: None,
            params: &["enclave"],
        },
        GadgetSpec {
            name: "Attest_Enclave",
            kind: Setup,
            path: None,
            params: &["enclave"],
        },
        GadgetSpec {
            name: "Setup_Host_VM",
            kind: Setup,
            path: None,
            params: &["mode"],
        },
        // ---- helper (12) -------------------------------------------------
        GadgetSpec {
            name: "Fill_Enc_Mem",
            kind: Helper,
            path: None,
            params: &["enclave", "offset", "count"],
        },
        GadgetSpec {
            name: "Preload_Enc_Mem",
            kind: Helper,
            path: None,
            params: &["enclave", "offset", "count"],
        },
        GadgetSpec {
            name: "Enc_Mem_To_L1",
            kind: Helper,
            path: None,
            params: &["enclave", "offset", "count"],
        },
        GadgetSpec {
            name: "Evict_L1_Set",
            kind: Helper,
            path: None,
            params: &["target"],
        },
        GadgetSpec {
            name: "Poison_Satp",
            kind: Helper,
            path: None,
            params: &["root"],
        },
        GadgetSpec {
            name: "Restore_Satp",
            kind: Helper,
            path: None,
            params: &[],
        },
        GadgetSpec {
            name: "Prime_uBTB",
            kind: Helper,
            path: None,
            params: &["offset"],
        },
        GadgetSpec {
            name: "Enc_Branch",
            kind: Helper,
            path: None,
            params: &["offset", "taken"],
        },
        GadgetSpec {
            name: "Touch_Page_Boundary",
            kind: Helper,
            path: None,
            params: &["enclave"],
        },
        GadgetSpec {
            name: "Fill_Host_Secret",
            kind: Helper,
            path: None,
            params: &["offset"],
        },
        GadgetSpec {
            name: "Read_Cycle",
            kind: Helper,
            path: None,
            params: &[],
        },
        GadgetSpec {
            name: "Spin_Delay",
            kind: Helper,
            path: None,
            params: &["nops"],
        },
        // ---- access (15 = 13 data + 2 metadata) --------------------------
    ];
    let access = [
        ("Exp_Acc_Enc_L1", AccessPath::LoadL1Hit),
        ("Exp_Acc_Enc_L2", AccessPath::LoadL2Hit),
        ("Exp_Acc_Enc_Mem", AccessPath::LoadMemMiss),
        ("Exp_Acc_SB_Fwd", AccessPath::LoadSbForward),
        ("Exp_Acc_Misaligned", AccessPath::LoadMisaligned),
        ("Exp_Store_Enc_L1", AccessPath::StoreL1Hit),
        ("Exp_Store_Enc_Miss", AccessPath::StoreMiss),
        ("Imp_PTW_Cached", AccessPath::PtwCached),
        ("Imp_PTW_Memory", AccessPath::PtwMemory),
        ("Imp_PTW_Poisoned", AccessPath::PtwPoisonedRoot),
        ("Imp_Acc_Pref", AccessPath::PrefetchNextLine),
        ("Exp_Fetch_Enc", AccessPath::InstFetch),
        ("Imp_SM_Scrub", AccessPath::SmScrub),
        ("Rd_PerfCounters", AccessPath::HpcRead),
        ("Probe_uBTB", AccessPath::BtbLookup),
    ];
    for (name, path) in access {
        v.push(GadgetSpec {
            name,
            kind: Access,
            path: Some(path),
            params: &["victim", "offset", "width"],
        });
    }
    v
}

// ---------------------------------------------------------------------------
// Setup gadgets
// ---------------------------------------------------------------------------

/// `Create_Enclave()` — host-side SBI create.
pub fn create_enclave(tc: &mut TestCase, enclave: u64) {
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::CreateEnclave,
            enclave,
        },
    );
}

/// `Run_Enclave()` — host-side SBI run (context switch into the enclave).
pub fn run_enclave(tc: &mut TestCase, enclave: u64) {
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::RunEnclave,
            enclave,
        },
    );
}

/// `Stop_Enclave()` — enclave-side yield.
pub fn stop_enclave(tc: &mut TestCase, enclave: usize) {
    tc.push(
        Actor::Enclave(enclave),
        Step::Sbi {
            call: SbiCall::StopEnclave,
            enclave: 0,
        },
    );
}

/// `Resume_Enclave()` — host-side SBI resume.
pub fn resume_enclave(tc: &mut TestCase, enclave: u64) {
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::ResumeEnclave,
            enclave,
        },
    );
}

/// `Destroy_Enclave()` — host-side SBI destroy (triggers the SM scrub).
pub fn destroy_enclave(tc: &mut TestCase, enclave: u64) {
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::DestroyEnclave,
            enclave,
        },
    );
}

/// `Exit_Enclave()` — enclave-side terminal exit.
pub fn exit_enclave(tc: &mut TestCase, enclave: usize) {
    tc.push(
        Actor::Enclave(enclave),
        Step::Sbi {
            call: SbiCall::ExitEnclave,
            enclave: 0,
        },
    );
}

/// `Attest_Enclave()` — host-side SBI attest (SM reads enclave memory).
pub fn attest_enclave(tc: &mut TestCase, enclave: u64) {
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::AttestEnclave,
            enclave,
        },
    );
}

/// `Setup_Host_VM()` — switch the host environment to sv39.
pub fn setup_host_vm(tc: &mut TestCase) {
    tc.host_sv39 = true;
}

// ---------------------------------------------------------------------------
// Helper gadgets
// ---------------------------------------------------------------------------

/// `Fill_Enc_Mem()` — the enclave stores address-derived secrets into its
/// own data region (paper §4.2: secrets are a hash of their address so any
/// leak traces back to its source).
pub fn fill_enc_mem(tc: &mut TestCase, enclave: usize, offset: u64, count: u64) {
    for k in 0..count {
        let addr = layout::enclave_data(enclave) + offset + 8 * k;
        let rec = tc.secrets.seed(addr, Domain::Enclave(enclave as u32));
        tc.push(
            Actor::Enclave(enclave),
            Step::Store {
                addr,
                value: rec.value,
                width: MemWidth::D,
            },
        );
    }
}

/// `Preload_Enc_Mem()` — seed secrets directly into the enclave image (a
/// pre-measured enclave binary with embedded secrets).
pub fn preload_enc_mem(tc: &mut TestCase, enclave: usize, offset: u64, count: u64) {
    for k in 0..count {
        let addr = layout::enclave_data(enclave) + offset + 8 * k;
        tc.secrets.seed(addr, Domain::Enclave(enclave as u32));
    }
}

/// Seeds the security monitor's own secret (for D5-class probing).
pub fn preload_sm_secret(tc: &mut TestCase, offset: u64) -> u64 {
    let addr = layout::SM_BASE + 0x6000 + offset;
    tc.secrets.seed(addr, Domain::SecurityMonitor);
    addr
}

/// `Fill_Host_Secret()` — seeds a host-owned secret in host data (for the
/// D7 direction: enclave reading host data).
pub fn fill_host_secret(tc: &mut TestCase, offset: u64) -> u64 {
    let addr = layout::HOST_DATA + 0x800 + offset;
    tc.secrets.seed(addr, Domain::Untrusted);
    addr
}

/// `Enc_Mem_To_L1()` — the enclave loads its secrets so they are resident
/// in the L1D at the context switch.
pub fn enc_mem_to_l1(tc: &mut TestCase, enclave: usize, offset: u64, count: u64) {
    for k in 0..count {
        let addr = layout::enclave_data(enclave) + offset + 8 * k;
        tc.push(
            Actor::Enclave(enclave),
            Step::Load {
                addr,
                width: MemWidth::D,
            },
        );
    }
}

/// `Evict_L1_Set()` — the host loads enough conflicting lines (same L1 set,
/// spread over the shared and host regions) to evict `target` from the L1D
/// while it remains in the L2.
pub fn evict_l1_set(tc: &mut TestCase, target: u64, l1d_sets: usize, l1d_ways: usize, line: u64) {
    let stride = l1d_sets as u64 * line;
    let set_off = target % stride;
    let mut emitted = 0;
    let regions = [
        (layout::SHARED_BASE, layout::SHARED_SIZE),
        (layout::HOST_DATA, 0x4000),
    ];
    for (base, size) in regions {
        // First address inside the region mapping to the target's set.
        let mut a = base + (set_off + stride - (base % stride)) % stride;
        while a + 8 <= base + size && emitted < l1d_ways as u64 + 2 {
            tc.push(
                Actor::Host,
                Step::Load {
                    addr: a,
                    width: MemWidth::D,
                },
            );
            a += stride;
            emitted += 1;
        }
    }
}

/// `Poison_Satp()` — save the live root and aim `satp` at attacker-chosen
/// physical memory (the D2 primitive).
pub fn poison_satp(tc: &mut TestCase, root_pa: u64) {
    tc.push(Actor::Host, Step::SaveSatp);
    tc.push(Actor::Host, Step::SetSatpSv39 { root_pa });
    // Deliberately *no* sfence.vma: the stale ITLB entries keep the
    // attacker's own code fetchable while data walks use the poisoned root
    // (paper Figure 3).
}

/// `Restore_Satp()` — undo [`poison_satp`].
pub fn restore_satp(tc: &mut TestCase) {
    tc.push(Actor::Host, Step::RestoreSatp);
    tc.push(Actor::Host, Step::SfenceVma);
}

/// `Prime_uBTB()` — host executes a taken branch at a controlled region
/// offset (primes/probes partial-tag BTB entries).
pub fn prime_ubtb(tc: &mut TestCase, offset: u64) {
    tc.push(
        Actor::Host,
        Step::BranchAtOffset {
            offset,
            taken: true,
        },
    );
}

/// `Enc_Branch()` — the enclave executes a conditional branch at the same
/// region offset, colliding with the host's uBTB entry.
pub fn enc_branch(tc: &mut TestCase, enclave: usize, offset: u64, taken: bool) {
    tc.push(
        Actor::Enclave(enclave),
        Step::BranchAtOffset { offset, taken },
    );
}

/// `Touch_Page_Boundary()` — host load at the last doubleword before the
/// enclave region: the next-line prefetcher's target falls inside the
/// enclave (the D1 trigger, paper Figure 2).
pub fn touch_page_boundary(tc: &mut TestCase, enclave: usize) {
    tc.push(
        Actor::Host,
        Step::Load {
            addr: layout::enclave_base(enclave) - 8,
            width: MemWidth::D,
        },
    );
}

/// `Host_Reprobe_Branch()` — the host re-executes its primed branch
/// *after* the TEE interaction returned, re-training the predictors from
/// the monitor-return window. This gadget extends the paper's Table 2
/// set: it was added to close the FTB/BHT monitor-return gap that
/// `teesec coverage-report` surfaced — the systematic corpus primes host
/// branches only before the first SBI call and probes afterwards with a
/// cycle read alone, so no branch ever executes in the window where the
/// predictor residue would actually be consumed (see EXPERIMENTS.md,
/// "coverage gap hunt").
pub fn host_reprobe_branch(tc: &mut TestCase, offset: u64) {
    tc.push(
        Actor::Host,
        Step::BranchAtOffset {
            offset,
            taken: true,
        },
    );
    tc.push(Actor::Host, Step::ReadCycle);
}

/// `Read_Cycle()` — timing probe.
pub fn read_cycle(tc: &mut TestCase, actor: Actor) {
    tc.push(actor, Step::ReadCycle);
}

/// `Spin_Delay()` — pipeline spacing.
pub fn spin_delay(tc: &mut TestCase, actor: Actor, nops: u32) {
    tc.push(actor, Step::Nops(nops));
}

/// `Rd_PerfCounters()` — read every programmable HPM counter (M1 probe).
pub fn read_perf_counters(tc: &mut TestCase, actor: Actor, counters: usize) {
    for i in 0..counters {
        tc.push(
            actor,
            Step::CsrRead {
                csr: csr::hpmcounter_csr(i),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_counts() {
        let cat = catalog();
        let setup = cat.iter().filter(|g| g.kind == GadgetKind::Setup).count();
        let helper = cat.iter().filter(|g| g.kind == GadgetKind::Helper).count();
        let access = cat.iter().filter(|g| g.kind == GadgetKind::Access).count();
        assert_eq!(setup, 8, "paper Table 2: 8 setup gadgets");
        assert_eq!(helper, 12, "paper Table 2: 12 helper gadgets");
        assert_eq!(access, 15, "paper Table 2: 15 access gadgets");
    }

    #[test]
    fn access_gadgets_cover_every_path() {
        let cat = catalog();
        for p in AccessPath::all() {
            assert!(
                cat.iter().any(|g| g.path == Some(*p)),
                "no access gadget for {p:?}"
            );
        }
    }

    #[test]
    fn gadget_names_unique() {
        let cat = catalog();
        let mut seen = std::collections::HashSet::new();
        for g in &cat {
            assert!(seen.insert(g.name), "duplicate gadget {}", g.name);
        }
    }

    #[test]
    fn fill_enc_mem_seeds_and_stores() {
        let mut tc = TestCase::new("t", AccessPath::LoadL1Hit);
        fill_enc_mem(&mut tc, 0, 0x100, 4);
        assert_eq!(tc.secrets.len(), 4);
        assert_eq!(tc.enclave_steps[0].len(), 4);
        // Values are the address hashes.
        let addr = layout::enclave_data(0) + 0x100;
        match &tc.enclave_steps[0][0] {
            Step::Store { addr: a, value, .. } => {
                assert_eq!(*a, addr);
                assert_eq!(*value, crate::secret::secret_for(addr));
            }
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn evict_gadget_emits_same_set_loads() {
        let mut tc = TestCase::new("t", AccessPath::LoadL2Hit);
        let target = layout::enclave_data(0);
        let (sets, ways, line) = (64usize, 4usize, 64u64);
        evict_l1_set(&mut tc, target, sets, ways, line);
        let stride = sets as u64 * line;
        let mut n = 0;
        for s in &tc.host_steps {
            if let Step::Load { addr, .. } = s {
                assert_eq!(addr % stride, target % stride, "conflicting set required");
                n += 1;
            }
        }
        assert!(n > ways, "need more conflicting loads than ways (got {n})");
    }

    #[test]
    fn touch_page_boundary_is_adjacent_to_enclave() {
        let mut tc = TestCase::new("t", AccessPath::PrefetchNextLine);
        touch_page_boundary(&mut tc, 0);
        match &tc.host_steps[0] {
            Step::Load { addr, .. } => {
                assert_eq!(addr + 8, layout::enclave_base(0));
            }
            other => panic!("unexpected step {other:?}"),
        }
    }
}
