//! Metrics exposition: folds a campaign's results into a
//! [`MetricsSnapshot`] renderable as Prometheus text format and JSON
//! (the `--metrics-out` flag of `teesec run` / `teesec campaign`).
//!
//! Per-structure counter families are emitted for **every** structure in
//! the design's storage inventory — untouched structures appear with
//! value 0 rather than being absent, so dashboards and diffs never have
//! to special-case missing series.

use teesec_obs::MetricsSnapshot;

use crate::campaign::CampaignResult;

/// Stamps the exposition with the build-identity info gauge
/// (`teesec_build_info`): constant value 1, identity in the labels —
/// the Prometheus "info metric" idiom. Every snapshot builder calls
/// this so any scrape can be joined against the producing build.
fn build_info(snap: &mut MetricsSnapshot) {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    snap.gauge(
        "teesec_build_info",
        &[("version", env!("CARGO_PKG_VERSION")), ("profile", profile)],
        1,
        "Build identity of the teesec binary producing this exposition (value is always 1)",
    );
}

/// Builds the full metrics snapshot for one finished campaign (or a
/// single-case run routed through the engine).
///
/// Engine-only series (worker balance, wall time) appear only when the
/// result carries [`EngineMetrics`](crate::engine::EngineMetrics); deep
/// microarchitectural series only when counters harvesting was on.
pub fn campaign_snapshot(result: &CampaignResult) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    build_info(&mut snap);
    let design = result.design.as_str();

    snap.counter(
        "teesec_cases_total",
        &[("design", design)],
        result.case_count as u64,
        "Test cases executed",
    );
    snap.counter(
        "teesec_cases_leaking_total",
        &[("design", design)],
        result.leaking_cases().count() as u64,
        "Cases that uncovered at least one classified leak",
    );
    let findings_total: usize = result.cases.iter().map(|c| c.finding_count).sum();
    snap.counter(
        "teesec_findings_total",
        &[("design", design)],
        findings_total as u64,
        "Checker findings across the corpus",
    );
    // A 0/1 detection flag is state, not a monotonic count — expose it as
    // a gauge (it can go back to 0 when a mitigation lands).
    for class in crate::report::LeakClass::all() {
        snap.gauge(
            "teesec_leak_class_detected",
            &[("design", design), ("class", &class.to_string())],
            u64::from(result.found(*class)),
            "1 when the leakage class was detected anywhere in the corpus",
        );
    }

    let Some(engine) = &result.engine else {
        return snap;
    };
    snap.counter(
        "teesec_cases_quarantined_total",
        &[("design", design)],
        engine.cases_quarantined as u64,
        "Cases quarantined by fault isolation",
    );
    snap.counter(
        "teesec_cases_budget_exceeded_total",
        &[("design", design)],
        engine.cases_budget_exceeded as u64,
        "Cases stopped by the simulated-cycle watchdog",
    );
    for (structure, n) in &engine.findings_by_structure {
        snap.counter(
            "teesec_findings_by_structure_total",
            &[("design", design), ("structure", structure)],
            *n as u64,
            "Checker findings per microarchitectural structure",
        );
    }
    snap.gauge(
        "teesec_engine_threads",
        &[("design", design)],
        engine.threads as u64,
        "Engine worker threads",
    );
    snap.gauge(
        "teesec_engine_wall_us",
        &[("design", design)],
        engine.wall_us.min(u64::MAX as u128) as u64,
        "Wall-clock time of the execute+check stage, microseconds",
    );

    if let Some(trace) = &engine.trace {
        for phase in &trace.phases {
            let labels = &[("design", design), ("phase", phase.phase.as_str())];
            let s = &phase.summary;
            // Span durations are recorded in µs, and 1 µs is exactly one
            // micro-second — the fixed-point micro gauge renders them as
            // decimal seconds without ever touching a float.
            for (stat, value) in [("p50", s.p50), ("p90", s.p90), ("p99", s.p99)] {
                snap.gauge_micro(
                    &format!("teesec_phase_wall_seconds_{stat}"),
                    labels,
                    value,
                    "Per-case phase wall-time percentile, seconds",
                );
            }
            snap.gauge_micro(
                "teesec_phase_wall_seconds_sum",
                labels,
                phase.total_us,
                "Total wall time attributed to the phase, seconds",
            );
            snap.gauge(
                "teesec_phase_wall_seconds_count",
                labels,
                s.count,
                "Spans recorded for the phase",
            );
        }
        for w in &trace.workers {
            let worker = w.worker.to_string();
            snap.gauge_micro(
                "teesec_worker_busy_ratio",
                &[("design", design), ("worker", &worker)],
                w.busy_ratio_ppm,
                "Fraction of the worker's span it spent executing cases",
            );
        }
        snap.gauge(
            "teesec_trace_critical_path_us",
            &[("design", design)],
            trace.critical_path_us,
            "Wall time of the campaign's critical-path worker, microseconds",
        );
    }

    if let Some(snapshot) = &engine.snapshot {
        snap.counter(
            "teesec_snapshot_cache_hits_total",
            &[("design", design)],
            snapshot.hits,
            "Cases built by forking a cached copy-on-write platform snapshot",
        );
        snap.counter(
            "teesec_snapshot_cache_capture_us_total",
            &[("design", design)],
            snapshot.capture_us,
            "Wall time spent capturing snapshots (boot + prefix), microseconds",
        );
        snap.counter(
            "teesec_snapshot_cache_misses_total",
            &[("design", design)],
            snapshot.misses,
            "Cases that captured a fresh snapshot for their setup configuration",
        );
        snap.counter(
            "teesec_snapshot_cache_bypasses_total",
            &[("design", design)],
            snapshot.bypasses,
            "Cases built from scratch because snapshotting does not apply",
        );
    }

    if let Some(fp) = &engine.fastpath {
        snap.counter(
            "teesec_decode_cache_hits_total",
            &[("design", design)],
            fp.decode_hits,
            "Instruction fetches served from a memoized decode slot",
        );
        snap.counter(
            "teesec_decode_cache_misses_total",
            &[("design", design)],
            fp.decode_misses,
            "Instruction fetches decoded fresh and memoized",
        );
        snap.counter(
            "teesec_decode_cache_invalidations_total",
            &[("design", design)],
            fp.decode_invalidations,
            "Decode-cache pages dropped by version bumps, fence.i, or eviction",
        );
        snap.counter(
            "teesec_dirty_scan_checks_total",
            &[("design", design)],
            fp.scan_checks,
            "Operand and store-queue stall scans actually performed",
        );
        snap.counter(
            "teesec_dirty_scan_skips_total",
            &[("design", design)],
            fp.scan_skips,
            "Stall scans elided because no scan input changed since the last verdict",
        );
    }

    if let Some(diff) = &engine.diff {
        snap.counter(
            "teesec_diff_cases_compared_total",
            &[("design", design)],
            diff.cases_compared as u64,
            "Cases the differential oracle looked at",
        );
        snap.counter(
            "teesec_diff_matches_total",
            &[("design", design)],
            diff.matches as u64,
            "Cases where core and ISS agreed at every compared point",
        );
        snap.counter(
            "teesec_diff_divergences_total",
            &[("design", design)],
            diff.divergences as u64,
            "Cases where the machines diverged",
        );
        snap.counter(
            "teesec_diff_skipped_total",
            &[("design", design)],
            diff.skipped as u64,
            "Cases outside the oracle's model",
        );
        snap.counter(
            "teesec_diff_retires_compared_total",
            &[("design", design)],
            diff.retires_compared,
            "Retirements compared in lockstep across matching cases",
        );
    }

    if let Some(pc) = &engine.plan_coverage {
        // One 0/1 series per declared plan path — absent paths would hide
        // exactly the gaps this family exists to expose.
        for cell in pc.cells.iter().filter(|c| c.declared) {
            snap.gauge(
                "teesec_plan_path_exercised",
                &[
                    ("design", design),
                    ("structure", cell.cell.structure.display_name()),
                    ("transition", cell.cell.transition.label()),
                    ("observer", cell.cell.observer.label()),
                ],
                u64::from(cell.cases_exercised > 0),
                "1 when at least one case exercised the declared plan path",
            );
        }
        // ppm is exactly millionths, which is what the fixed-point micro
        // gauge renders as a decimal ratio — no floats involved.
        snap.gauge_micro(
            "teesec_plan_coverage_ratio",
            &[("design", design)],
            pc.coverage_ratio_ppm(),
            "Fraction of declared plan paths exercised by the campaign",
        );
        for res in &pc.residency {
            let labels = &[
                ("design", design),
                ("structure", res.structure.display_name()),
            ];
            snap.histogram_labeled(
                "teesec_secret_residency_cycles",
                labels,
                res.windows.clone(),
                "Cycle-resolved secret-exposure windows per structure (secret write to \
                 last observable retention)",
            );
            snap.gauge(
                "teesec_secret_residency_worst_cycles",
                labels,
                res.worst_cycles,
                "Longest secret-exposure window observed in the structure",
            );
        }
    }

    let Some(obs) = &engine.obs else {
        return snap;
    };
    snap.counter(
        "teesec_uarch_cycles_total",
        &[("design", design)],
        obs.uarch.cycles,
        "Simulated cycles across the corpus",
    );
    snap.counter(
        "teesec_uarch_instructions_total",
        &[("design", design)],
        obs.uarch.instructions_retired,
        "Instructions retired across the corpus",
    );
    snap.counter(
        "teesec_uarch_trace_events_total",
        &[("design", design)],
        obs.uarch.trace_events,
        "Microarchitectural trace events across the corpus",
    );
    snap.counter(
        "teesec_uarch_domain_switches_total",
        &[("design", design)],
        obs.uarch.domain_switches,
        "Security-domain switches across the corpus",
    );
    // One series per inventoried structure — ObsMetrics seeds its counter
    // set from the StorageInventory, so absent means "not in this design"
    // (e.g. the store buffer on a zero-entry configuration), never
    // "happened to be untouched".
    for s in &obs.uarch.structures {
        let labels = &[
            ("design", design),
            ("structure", s.structure.display_name()),
        ];
        snap.counter(
            "teesec_structure_fills_total",
            labels,
            s.fills,
            "Line/entry fills per structure",
        );
        snap.counter(
            "teesec_structure_writes_total",
            labels,
            s.writes,
            "Scalar writes per structure",
        );
        snap.counter(
            "teesec_structure_reads_total",
            labels,
            s.reads,
            "Reads per structure",
        );
        snap.counter(
            "teesec_structure_flushes_total",
            labels,
            s.flushes,
            "Flush/invalidate events per structure",
        );
        snap.gauge(
            "teesec_structure_occupancy_entries",
            labels,
            s.occupancy_at_exit,
            "Maximum valid entries at case exit (residue surface)",
        );
        snap.gauge(
            "teesec_structure_capacity_entries",
            labels,
            s.capacity,
            "Structure capacity in entries",
        );
    }
    snap.histogram(
        "teesec_case_build_us",
        obs.build_us.clone(),
        "Per-case platform build wall time, microseconds",
    );
    snap.histogram(
        "teesec_case_simulate_us",
        obs.simulate_us.clone(),
        "Per-case simulation wall time, microseconds",
    );
    snap.histogram(
        "teesec_case_check_us",
        obs.check_us.clone(),
        "Per-case check wall time, microseconds",
    );
    snap.histogram(
        "teesec_case_cycles",
        obs.case_cycles.clone(),
        "Per-case simulated cycles",
    );
    snap
}

/// Stamps the live-telemetry families onto an existing snapshot:
/// `teesec_up` (1 while the producing process is alive),
/// `teesec_campaign_progress_ratio` (fraction of the corpus finished),
/// and `teesec_events_dropped_total` (ring-buffer evictions seen by
/// lagging SSE subscribers).
///
/// The final `--metrics-out` file written by a served campaign carries
/// the same stamp with `progress_ppm = 1_000_000`, so the last live
/// `/metrics` scrape and the on-disk exposition are byte-identical.
pub fn stamp_live(
    snap: &mut MetricsSnapshot,
    design: &str,
    progress_ppm: u64,
    events_dropped: u64,
) {
    snap.gauge(
        "teesec_up",
        &[],
        1,
        "1 while the teesec process serving this exposition is alive",
    );
    snap.gauge_micro(
        "teesec_campaign_progress_ratio",
        &[("design", design)],
        progress_ppm,
        "Fraction of the campaign corpus finished (1.0 once complete)",
    );
    snap.counter(
        "teesec_events_dropped_total",
        &[],
        events_dropped,
        "Telemetry events evicted from the ring buffer past a lagging subscriber",
    );
}

/// [`campaign_snapshot`] plus the [`stamp_live`] families — what a live
/// `/metrics` scrape of an in-flight (or just-finished) campaign serves.
pub fn live_campaign_snapshot(
    result: &CampaignResult,
    progress_ppm: u64,
    events_dropped: u64,
) -> MetricsSnapshot {
    let mut snap = campaign_snapshot(result);
    stamp_live(&mut snap, &result.design, progress_ppm, events_dropped);
    snap
}

/// Writes `contents` to `path` atomically: the bytes land in
/// `<path>.tmp` first and are renamed into place, so a reader (or a
/// crash) never observes a half-written file.
fn atomic_write(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Inserts `"partial": true` as the first member of a rendered
/// top-level JSON object. Checkpoint JSON carries the marker so a
/// consumer can tell a mid-flight snapshot from a finished one; the
/// Prometheus text is left untouched (the lint grammar rejects foreign
/// comments, and scrapers key off `teesec_campaign_progress_ratio`).
fn mark_partial(json: &str) -> String {
    match serde_json::parse_value(json) {
        Ok(serde_json::Value::Object(mut members)) => {
            members.insert(0, ("partial".to_string(), serde_json::Value::Bool(true)));
            serde_json::to_string_pretty(&serde_json::Value::Object(members))
                .unwrap_or_else(|_| json.to_string())
        }
        _ => json.to_string(),
    }
}

/// Writes a mid-flight checkpoint of `snap`: atomic Prometheus text at
/// `path` and atomic JSON (with the `"partial": true` marker) at
/// `<path>.json`. A campaign killed between checkpoints always leaves
/// both files parseable.
///
/// # Errors
///
/// Propagates the underlying file-system errors.
pub fn write_checkpoint_files(snap: &MetricsSnapshot, path: &str) -> std::io::Result<()> {
    atomic_write(path, &snap.render_prometheus())?;
    atomic_write(&format!("{path}.json"), &mark_partial(&snap.render_json()))
}

/// Atomically writes a JSON document (e.g. a plan-coverage report) with
/// the `"partial": true` checkpoint marker inserted at the top level.
///
/// # Errors
///
/// Propagates the underlying file-system errors.
pub fn write_partial_json(json: &str, path: &str) -> std::io::Result<()> {
    atomic_write(path, &mark_partial(json))
}

/// Folds one coverage-guided fuzzing session into a metrics snapshot:
/// session totals plus one covered-bucket gauge per structure, so a
/// dashboard shows *where* the guided walk is reaching, not just how far.
pub fn coverage_snapshot(outcome: &crate::fuzz::CoverageOutcome, design: &str) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    build_info(&mut snap);
    snap.counter(
        "teesec_fuzz_cases_executed_total",
        &[("design", design)],
        outcome.executed as u64,
        "Cases simulated by the coverage-guided session (seeds + mutants)",
    );
    snap.gauge(
        "teesec_fuzz_seed_coverage_buckets",
        &[("design", design)],
        outcome.seed_buckets as u64,
        "Coverage buckets reached by the seed phase alone",
    );
    snap.gauge(
        "teesec_fuzz_coverage_buckets",
        &[("design", design)],
        outcome.map.len() as u64,
        "Cumulative coverage buckets after the guided phase",
    );
    snap.gauge(
        "teesec_fuzz_corpus_entries",
        &[("design", design)],
        outcome.corpus.len() as u64,
        "Coverage-increasing inputs retained in the corpus",
    );
    let mut per_structure = std::collections::BTreeMap::new();
    for key in outcome.map.keys() {
        *per_structure
            .entry(key.structure.display_name())
            .or_insert(0u64) += 1;
    }
    for (structure, n) in per_structure {
        snap.gauge(
            "teesec_fuzz_structure_coverage_buckets",
            &[("design", design), ("structure", structure)],
            n,
            "Coverage buckets reached per microarchitectural structure",
        );
    }
    snap
}

/// Writes `snap` as Prometheus text to `path` and pretty JSON to
/// `<path>.json`.
///
/// # Errors
///
/// Propagates the underlying file-system errors.
pub fn write_snapshot_files(snap: &MetricsSnapshot, path: &str) -> std::io::Result<()> {
    std::fs::write(path, snap.render_prometheus())?;
    std::fs::write(format!("{path}.json"), snap.render_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::engine::EngineOptions;
    use crate::fuzz::Fuzzer;
    use teesec_uarch::introspect::StorageInventory;
    use teesec_uarch::CoreConfig;

    #[test]
    fn snapshot_covers_every_inventoried_structure() {
        let cfg = CoreConfig::boom();
        let campaign = Campaign::new(cfg.clone(), Fuzzer::with_target(4));
        let (result, _) = campaign.run_engine(EngineOptions {
            threads: 2,
            counters: true,
            ..EngineOptions::default()
        });
        let snap = campaign_snapshot(&result);
        let prom = snap.render_prometheus();
        for e in &StorageInventory::profile(&cfg).elements {
            let needle = format!("structure=\"{}\"", e.structure.display_name());
            assert!(
                prom.contains(&needle),
                "missing series for {:?}:\n{prom}",
                e.structure
            );
        }
        assert!(prom.contains("teesec_cases_total"));
        assert!(prom.contains("teesec_case_cycles_bucket"));
        let json = snap.render_json();
        assert!(json.contains("teesec_structure_fills_total"));
    }

    #[test]
    fn diff_metrics_land_in_the_snapshot() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(3));
        let (result, _) = campaign.run_engine(EngineOptions {
            threads: 2,
            diff: Some(crate::diff::DiffOptions::default()),
            ..EngineOptions::default()
        });
        let snap = campaign_snapshot(&result);
        let prom = snap.render_prometheus();
        assert!(prom.contains("teesec_diff_cases_compared_total"));
        assert!(prom.contains("teesec_diff_divergences_total{design=\"boom\"} 0"));
        assert!(prom.contains("teesec_diff_retires_compared_total"));
    }

    #[test]
    fn snapshot_cache_metrics_land_in_the_snapshot() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(6));
        let (result, _) = campaign.run_engine(EngineOptions {
            threads: 2,
            streaming: true,
            snapshot_cache: true,
            ..EngineOptions::default()
        });
        let snap = campaign_snapshot(&result);
        let prom = snap.render_prometheus();
        assert!(prom.contains("teesec_snapshot_cache_hits_total"));
        assert!(prom.contains("teesec_snapshot_cache_misses_total"));
        assert!(prom.contains("teesec_snapshot_cache_bypasses_total"));
        let m = result.engine.unwrap().snapshot.expect("cache metrics on");
        assert_eq!((m.hits + m.misses + m.bypasses) as usize, result.case_count);
    }

    #[test]
    fn fastpath_metrics_land_in_the_snapshot() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(4));
        let (result, _) = campaign.run_engine(EngineOptions {
            threads: 2,
            fast_path: Some(true),
            ..EngineOptions::default()
        });
        let snap = campaign_snapshot(&result);
        let prom = snap.render_prometheus();
        assert!(prom.contains("teesec_decode_cache_hits_total"));
        assert!(prom.contains("teesec_decode_cache_misses_total"));
        assert!(prom.contains("teesec_decode_cache_invalidations_total"));
        assert!(prom.contains("teesec_dirty_scan_checks_total"));
        assert!(prom.contains("teesec_dirty_scan_skips_total"));
        let m = result
            .engine
            .unwrap()
            .fastpath
            .expect("fast path forced on");
        assert_eq!(m.cases, result.case_count);
        assert!(m.decode_hits > 0, "hot loops must hit the decode cache");
        assert!(m.scan_skips > 0, "stalled entries must skip rescans");

        // Forced off, the aggregate must be absent and the series quiet.
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(2));
        let (result, _) = campaign.run_engine(EngineOptions {
            fast_path: Some(false),
            ..EngineOptions::default()
        });
        let snap = campaign_snapshot(&result);
        assert!(!snap.render_prometheus().contains("teesec_decode_cache"));
        assert!(result.engine.unwrap().fastpath.is_none());
    }

    #[test]
    fn plan_coverage_series_land_in_the_snapshot() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(8));
        let (result, _) = campaign.run_engine(EngineOptions {
            threads: 2,
            coverage: true,
            ..EngineOptions::default()
        });
        let snap = campaign_snapshot(&result);
        let prom = snap.render_prometheus();
        assert!(prom.contains("teesec_build_info{"), "{prom}");
        assert!(prom.contains("version=\"")); // identity rides in the labels
        assert!(prom.contains("teesec_plan_path_exercised{design=\"boom\""));
        assert!(prom.contains("transition=\"boot\""));
        assert!(prom.contains("teesec_plan_coverage_ratio{design=\"boom\"}"));
        let pc = result
            .engine
            .as_ref()
            .unwrap()
            .plan_coverage
            .as_ref()
            .expect("coverage was on");
        // Every declared path gets a series, exercised or not.
        let exercised_lines = prom
            .lines()
            .filter(|l| l.starts_with("teesec_plan_path_exercised{"))
            .count();
        assert_eq!(exercised_lines, pc.declared());
        if !pc.residency.is_empty() {
            assert!(prom.contains("teesec_secret_residency_cycles_bucket{"));
            assert!(prom.contains("teesec_secret_residency_worst_cycles{"));
        }
    }

    #[test]
    fn coverage_snapshot_exposes_session_and_structure_series() {
        let cfg = CoreConfig::boom();
        let outcome = crate::fuzz::CoverageFuzzer::new(3, 8).run(&cfg);
        let snap = coverage_snapshot(&outcome, &cfg.name);
        let prom = snap.render_prometheus();
        assert!(prom.contains("teesec_fuzz_cases_executed_total"));
        assert!(prom.contains("teesec_fuzz_coverage_buckets{design=\"boom\"}"));
        assert!(prom.contains("teesec_fuzz_corpus_entries"));
        assert!(prom.contains("teesec_fuzz_structure_coverage_buckets"));
    }

    #[test]
    fn live_snapshot_stamps_up_progress_and_dropped_events() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(2));
        let (result, _) = campaign.run_engine(EngineOptions::default());
        let snap = live_campaign_snapshot(&result, 500_000, 3);
        let prom = snap.render_prometheus();
        assert!(prom.contains("teesec_up 1"), "{prom}");
        assert!(
            prom.contains("teesec_campaign_progress_ratio{design=\"boom\"} 0.500000"),
            "{prom}"
        );
        assert!(prom.contains("teesec_events_dropped_total 3"), "{prom}");
        // The stamp is additive: the plain families are still present.
        assert!(prom.contains("teesec_cases_total"));
    }

    #[test]
    fn finished_live_snapshot_is_plain_snapshot_plus_stamp() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(2));
        let (result, _) = campaign.run_engine(EngineOptions::default());
        let live = live_campaign_snapshot(&result, 1_000_000, 0);
        let mut stamped = campaign_snapshot(&result);
        stamp_live(&mut stamped, &result.design, 1_000_000, 0);
        assert_eq!(live.render_prometheus(), stamped.render_prometheus());
    }

    #[test]
    fn checkpoint_files_are_atomic_and_marked_partial() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(2));
        let (result, _) = campaign.run_engine(EngineOptions::default());
        let snap = live_campaign_snapshot(&result, 500_000, 0);
        let dir = std::env::temp_dir().join(format!("teesec-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("metrics.prom");
        let path = path.to_str().expect("utf-8 temp path");
        write_checkpoint_files(&snap, path).expect("checkpoint");
        // The temp staging files must be renamed away, never left behind.
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        assert!(!std::path::Path::new(&format!("{path}.json.tmp")).exists());
        let prom = std::fs::read_to_string(path).expect("prom");
        assert_eq!(prom, snap.render_prometheus(), "prom text is unmodified");
        let json = std::fs::read_to_string(format!("{path}.json")).expect("json");
        let value = serde_json::parse_value(&json).expect("checkpoint JSON parses");
        let members = value.as_object().expect("top-level object");
        assert_eq!(members[0].0, "partial", "marker leads the object");
        assert!(matches!(members[0].1, serde_json::Value::Bool(true)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_json_round_trips_through_the_marker() {
        let dir = std::env::temp_dir().join(format!("teesec-pjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("report.json");
        let path = path.to_str().expect("utf-8 temp path");
        write_partial_json("{\n  \"design\": \"boom\"\n}", path).expect("write");
        let back = std::fs::read_to_string(path).expect("read");
        let value = serde_json::parse_value(&back).expect("parses");
        let members = value.as_object().expect("object");
        assert_eq!(members[0].0, "partial");
        assert_eq!(members[1].0, "design");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serial_result_yields_a_reduced_but_valid_snapshot() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(2));
        let (result, _) = campaign.run();
        let snap = campaign_snapshot(&result);
        let prom = snap.render_prometheus();
        assert!(prom.contains("teesec_cases_total"));
        assert!(!prom.contains("teesec_structure_fills_total"));
    }
}
