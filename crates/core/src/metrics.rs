//! Metrics exposition: folds a campaign's results into a
//! [`MetricsSnapshot`] renderable as Prometheus text format and JSON
//! (the `--metrics-out` flag of `teesec run` / `teesec campaign`).
//!
//! Per-structure counter families are emitted for **every** structure in
//! the design's storage inventory — untouched structures appear with
//! value 0 rather than being absent, so dashboards and diffs never have
//! to special-case missing series.

use teesec_obs::MetricsSnapshot;

use crate::campaign::CampaignResult;

/// Builds the full metrics snapshot for one finished campaign (or a
/// single-case run routed through the engine).
///
/// Engine-only series (worker balance, wall time) appear only when the
/// result carries [`EngineMetrics`](crate::engine::EngineMetrics); deep
/// microarchitectural series only when counters harvesting was on.
pub fn campaign_snapshot(result: &CampaignResult) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    let design = result.design.as_str();

    snap.counter(
        "teesec_cases_total",
        &[("design", design)],
        result.case_count as u64,
        "Test cases executed",
    );
    snap.counter(
        "teesec_cases_leaking_total",
        &[("design", design)],
        result.leaking_cases().count() as u64,
        "Cases that uncovered at least one classified leak",
    );
    let findings_total: usize = result.cases.iter().map(|c| c.finding_count).sum();
    snap.counter(
        "teesec_findings_total",
        &[("design", design)],
        findings_total as u64,
        "Checker findings across the corpus",
    );
    for class in crate::report::LeakClass::all() {
        snap.counter(
            "teesec_leak_class_detected",
            &[("design", design), ("class", &class.to_string())],
            u64::from(result.found(*class)),
            "1 when the leakage class was detected anywhere in the corpus",
        );
    }

    let Some(engine) = &result.engine else {
        return snap;
    };
    snap.counter(
        "teesec_cases_quarantined_total",
        &[("design", design)],
        engine.cases_quarantined as u64,
        "Cases quarantined by fault isolation",
    );
    snap.counter(
        "teesec_cases_budget_exceeded_total",
        &[("design", design)],
        engine.cases_budget_exceeded as u64,
        "Cases stopped by the simulated-cycle watchdog",
    );
    for (structure, n) in &engine.findings_by_structure {
        snap.counter(
            "teesec_findings_by_structure_total",
            &[("design", design), ("structure", structure)],
            *n as u64,
            "Checker findings per microarchitectural structure",
        );
    }
    snap.gauge(
        "teesec_engine_threads",
        &[("design", design)],
        engine.threads as u64,
        "Engine worker threads",
    );
    snap.gauge(
        "teesec_engine_wall_us",
        &[("design", design)],
        engine.wall_us.min(u64::MAX as u128) as u64,
        "Wall-clock time of the execute+check stage, microseconds",
    );

    let Some(obs) = &engine.obs else {
        return snap;
    };
    snap.counter(
        "teesec_uarch_cycles_total",
        &[("design", design)],
        obs.uarch.cycles,
        "Simulated cycles across the corpus",
    );
    snap.counter(
        "teesec_uarch_instructions_total",
        &[("design", design)],
        obs.uarch.instructions_retired,
        "Instructions retired across the corpus",
    );
    snap.counter(
        "teesec_uarch_trace_events_total",
        &[("design", design)],
        obs.uarch.trace_events,
        "Microarchitectural trace events across the corpus",
    );
    snap.counter(
        "teesec_uarch_domain_switches_total",
        &[("design", design)],
        obs.uarch.domain_switches,
        "Security-domain switches across the corpus",
    );
    // One series per inventoried structure — ObsMetrics seeds its counter
    // set from the StorageInventory, so absent means "not in this design"
    // (e.g. the store buffer on a zero-entry configuration), never
    // "happened to be untouched".
    for s in &obs.uarch.structures {
        let labels = &[
            ("design", design),
            ("structure", s.structure.display_name()),
        ];
        snap.counter(
            "teesec_structure_fills_total",
            labels,
            s.fills,
            "Line/entry fills per structure",
        );
        snap.counter(
            "teesec_structure_writes_total",
            labels,
            s.writes,
            "Scalar writes per structure",
        );
        snap.counter(
            "teesec_structure_reads_total",
            labels,
            s.reads,
            "Reads per structure",
        );
        snap.counter(
            "teesec_structure_flushes_total",
            labels,
            s.flushes,
            "Flush/invalidate events per structure",
        );
        snap.gauge(
            "teesec_structure_occupancy_at_exit",
            labels,
            s.occupancy_at_exit,
            "Maximum valid entries at case exit (residue surface)",
        );
        snap.gauge(
            "teesec_structure_capacity_entries",
            labels,
            s.capacity,
            "Structure capacity in entries",
        );
    }
    snap.histogram(
        "teesec_case_build_us",
        obs.build_us.clone(),
        "Per-case platform build wall time, microseconds",
    );
    snap.histogram(
        "teesec_case_simulate_us",
        obs.simulate_us.clone(),
        "Per-case simulation wall time, microseconds",
    );
    snap.histogram(
        "teesec_case_check_us",
        obs.check_us.clone(),
        "Per-case check wall time, microseconds",
    );
    snap.histogram(
        "teesec_case_cycles",
        obs.case_cycles.clone(),
        "Per-case simulated cycles",
    );
    snap
}

/// Writes `snap` as Prometheus text to `path` and pretty JSON to
/// `<path>.json`.
///
/// # Errors
///
/// Propagates the underlying file-system errors.
pub fn write_snapshot_files(snap: &MetricsSnapshot, path: &str) -> std::io::Result<()> {
    std::fs::write(path, snap.render_prometheus())?;
    std::fs::write(format!("{path}.json"), snap.render_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::engine::EngineOptions;
    use crate::fuzz::Fuzzer;
    use teesec_uarch::introspect::StorageInventory;
    use teesec_uarch::CoreConfig;

    #[test]
    fn snapshot_covers_every_inventoried_structure() {
        let cfg = CoreConfig::boom();
        let campaign = Campaign::new(cfg.clone(), Fuzzer::with_target(4));
        let (result, _) = campaign.run_engine(EngineOptions {
            threads: 2,
            counters: true,
            ..EngineOptions::default()
        });
        let snap = campaign_snapshot(&result);
        let prom = snap.render_prometheus();
        for e in &StorageInventory::profile(&cfg).elements {
            let needle = format!("structure=\"{}\"", e.structure.display_name());
            assert!(
                prom.contains(&needle),
                "missing series for {:?}:\n{prom}",
                e.structure
            );
        }
        assert!(prom.contains("teesec_cases_total"));
        assert!(prom.contains("teesec_case_cycles_bucket"));
        let json = snap.render_json();
        assert!(json.contains("teesec_structure_fills_total"));
    }

    #[test]
    fn serial_result_yields_a_reduced_but_valid_snapshot() {
        let campaign = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(2));
        let (result, _) = campaign.run();
        let snap = campaign_snapshot(&result);
        let prom = snap.render_prometheus();
        assert!(prom.contains("teesec_cases_total"));
        assert!(!prom.contains("teesec_structure_fills_total"));
    }
}
