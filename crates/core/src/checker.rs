//! The TEESec checker: scans the simulation trace and the end-of-run
//! microarchitectural snapshot for violations of the two security
//! principles, classifying each finding into the paper's D1–D8 / M1–M2
//! cases (paper §4.3).

use teesec_uarch::config::CoreConfig;
use teesec_uarch::trace::{Domain, FillPurpose, Structure};

use crate::report::{CheckReport, Finding, LeakClass, Principle};
use crate::runner::RunOutcome;
use crate::secret::SecretCatalog;
use crate::testcase::TestCase;

/// `true` when `observer` is allowed to see data owned by `owner`.
pub(crate) fn authorized(owner: Domain, observer: Domain) -> bool {
    if observer == Domain::SecurityMonitor {
        return true; // the monitor is in every domain's TCB
    }
    match owner {
        Domain::Enclave(e) => observer == Domain::Enclave(e),
        Domain::SecurityMonitor => false,
        Domain::Untrusted => !observer.is_enclave(),
    }
}

/// Classifies a register-file leak by direction (paper Table 3).
/// `sb_forwarded` marks a value the store buffer supplied (case D8's
/// mechanism) rather than the cache hierarchy.
pub(crate) fn classify_rf(
    owner: Domain,
    observer: Domain,
    sb_forwarded: bool,
) -> Option<LeakClass> {
    match (owner, observer) {
        (Domain::SecurityMonitor, _) => Some(LeakClass::D5),
        (Domain::Enclave(_), Domain::Untrusted) => {
            if sb_forwarded {
                Some(LeakClass::D8)
            } else {
                Some(LeakClass::D4)
            }
        }
        (Domain::Enclave(_), Domain::Enclave(_)) => Some(LeakClass::D6),
        (Domain::Untrusted, Domain::Enclave(_)) => Some(LeakClass::D7),
        _ => None,
    }
}

/// Classifies a line-fill-buffer observation by the fill's purpose.
fn classify_lfb(purpose: FillPurpose) -> Option<LeakClass> {
    match purpose {
        FillPurpose::Prefetch => Some(LeakClass::D1),
        FillPurpose::PageWalk => Some(LeakClass::D2),
        FillPurpose::StoreRefill => Some(LeakClass::D3),
        FillPurpose::Demand => None,
    }
}

/// The deduplication key for a finding: one finding per
/// (class, structure, secret, observer, principle) combination.
pub(crate) fn finding_key(f: &Finding) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        f.class,
        f.structure,
        f.secret.map(|s| s.addr),
        f.observer,
        f.principle
    )
}

/// Runs the full analysis for one executed test case.
///
/// The trace scan is the same state machine the streaming checker runs
/// online ([`crate::stream::StreamingChecker`]) — batch drives it over the
/// buffered trace here, so both pipelines yield identical findings by
/// construction.
pub fn check_case(tc: &TestCase, outcome: &RunOutcome, cfg: &CoreConfig) -> CheckReport {
    check_case_inner(tc, outcome, cfg, false).0
}

/// [`check_case`] with plan-coverage recording on: additionally returns
/// the case's [`CaseCoverage`](crate::coverage::CaseCoverage) record —
/// byte-identical to what the streaming pipeline's
/// [`StreamingChecker::finish_coverage`](crate::stream::StreamingChecker::finish_coverage)
/// produces, because both drive the same [`ScanState`](crate::stream::ScanState).
pub fn check_case_coverage(
    tc: &TestCase,
    outcome: &RunOutcome,
    cfg: &CoreConfig,
) -> (CheckReport, crate::coverage::CaseCoverage) {
    let (report, coverage) = check_case_inner(tc, outcome, cfg, true);
    (report, coverage.expect("coverage recording was enabled"))
}

fn check_case_inner(
    tc: &TestCase,
    outcome: &RunOutcome,
    cfg: &CoreConfig,
    record_coverage: bool,
) -> (CheckReport, Option<crate::coverage::CaseCoverage>) {
    let mut secrets = tc.secrets.clone();
    secrets.reindex();

    let counters = outcome.platform.core.config.hpm_counters;
    let mut scan = crate::stream::ScanState::new(tc.mcounteren, counters, secrets.clone());
    if record_coverage {
        scan.enable_coverage();
    }
    for e in outcome.platform.core.trace.iter_events() {
        scan.on_event(e);
    }
    let (mut findings, mut dedup, mut coverage) = scan.into_findings();

    let snapshot_from = findings.len();
    let mut push = |findings: &mut Vec<Finding>, f: Finding| {
        if dedup.insert(finding_key(&f)) {
            findings.push(f);
        }
    };
    scan_snapshot(tc, outcome, &secrets, &mut findings, &mut push);
    if let Some(cov) = coverage.as_mut() {
        for f in &findings[snapshot_from..] {
            cov.record_detection(f);
        }
    }

    let mut report = CheckReport {
        case: tc.name.clone(),
        path: tc.path,
        design: cfg.name.clone(),
        findings,
        provenance: Vec::new(),
    };
    crate::provenance::annotate(&mut report, outcome, &secrets);
    let case_coverage = coverage.map(|cov| cov.finish(&report));
    (report, case_coverage)
}

/// Scans the end-of-run microarchitectural snapshot for residues
/// (shared by the batch pipeline and the streaming checker's finalize).
pub(crate) fn scan_snapshot(
    tc: &TestCase,
    outcome: &RunOutcome,
    secrets: &SecretCatalog,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(&mut Vec<Finding>, Finding),
) {
    let core = &outcome.platform.core;
    let observer = core.domain; // the world holding the residue at test end
    if observer != Domain::Untrusted {
        // Tests end in the untrusted host; anything else means the case
        // did not reach its probe phase — snapshot checks don't apply.
        return;
    }

    // Line-fill-buffer residuals (the D1/D2/D3 "remains in state" half).
    for entry in core.lsu.lfb.entries() {
        if !entry.valid {
            continue;
        }
        for (off, rec) in secrets.scan_bytes(&entry.data) {
            if authorized(rec.owner, observer) {
                continue;
            }
            push(
                findings,
                Finding {
                    class: classify_lfb(entry.purpose),
                    principle: Principle::P1,
                    structure: Structure::Lfb,
                    cycle: entry.fill_cycle,
                    pc: None,
                    secret: Some(rec),
                    observer,
                    detail: format!(
                        "residual {:?} fill of line {:#x} still holds the secret at byte \
                     offset {off} after the context switch to the untrusted host",
                        entry.purpose, entry.line_addr
                    ),
                },
            );
        }
    }

    // Cache residuals: enclave lines that were never flushed.
    for (structure, lines) in [
        (
            Structure::L1d,
            core.lsu.l1d.valid_lines().collect::<Vec<_>>(),
        ),
        (Structure::L2, core.lsu.l2.valid_lines().collect::<Vec<_>>()),
    ] {
        for line in lines {
            for (off, rec) in secrets.scan_bytes(&line.data) {
                if authorized(rec.owner, observer) {
                    continue;
                }
                push(
                    findings,
                    Finding {
                        class: None,
                        principle: Principle::P1,
                        structure,
                        cycle: 0,
                        pc: None,
                        secret: Some(rec),
                        observer,
                        detail: format!(
                            "secret remains cached in line {:#x} (byte offset {off}) when \
                         the CPU is not in enclave mode",
                            line.line_addr
                        ),
                    },
                );
            }
        }
    }

    // Branch-prediction residue (M2): entries trained by an enclave that
    // survive into untrusted execution — and, with partial tags, collide
    // with host PCs. Under the eIBRS-style tag mitigation the entries
    // still exist but are unreachable from other domains: not an exposure.
    if outcome.platform.core.config.mitigations.tag_bpu_with_domain {
        return;
    }
    let mut btb_residue = false;
    for e in core.ubtb.entries() {
        if e.valid && e.train_domain.is_enclave() {
            btb_residue = true;
            push(
                findings,
                Finding {
                    class: Some(LeakClass::M2),
                    principle: Principle::P2,
                    structure: Structure::Ubtb,
                    cycle: 0,
                    pc: Some(e.train_pc),
                    secret: None,
                    observer,
                    detail: format!(
                        "uBTB entry trained by {:?} (pc {:#x}, target {:#x}) survives the \
                     context switch; partial tags let host branches hit it",
                        e.train_domain, e.train_pc, e.target
                    ),
                },
            );
        }
    }
    if !btb_residue {
        for e in core.ftb.entries() {
            if e.valid && e.train_domain.is_enclave() {
                push(
                    findings,
                    Finding {
                        class: Some(LeakClass::M2),
                        principle: Principle::P2,
                        structure: Structure::Ftb,
                        cycle: 0,
                        pc: Some(e.train_pc),
                        secret: None,
                        observer,
                        detail: "FTB entry trained inside an enclave survives the context \
                             switch"
                            .into(),
                    },
                );
            }
        }
    }
    let _ = tc;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authorization_matrix() {
        let e0 = Domain::Enclave(0);
        let e1 = Domain::Enclave(1);
        let sm = Domain::SecurityMonitor;
        let host = Domain::Untrusted;
        assert!(authorized(e0, e0));
        assert!(authorized(e0, sm));
        assert!(!authorized(e0, e1));
        assert!(!authorized(e0, host));
        assert!(!authorized(sm, host));
        assert!(authorized(sm, sm));
        assert!(authorized(host, host));
        assert!(authorized(host, sm));
        assert!(!authorized(host, e0));
    }

    #[test]
    fn rf_classification_directions() {
        let e0 = Domain::Enclave(0);
        let e1 = Domain::Enclave(1);
        let host = Domain::Untrusted;
        let sm = Domain::SecurityMonitor;
        assert_eq!(classify_rf(e0, host, false), Some(LeakClass::D4));
        assert_eq!(classify_rf(sm, host, false), Some(LeakClass::D5));
        assert_eq!(classify_rf(e0, e1, false), Some(LeakClass::D6));
        assert_eq!(classify_rf(host, e1, false), Some(LeakClass::D7));
        assert_eq!(classify_rf(e0, host, true), Some(LeakClass::D8));
    }

    #[test]
    fn lfb_classification_by_purpose() {
        assert_eq!(classify_lfb(FillPurpose::Prefetch), Some(LeakClass::D1));
        assert_eq!(classify_lfb(FillPurpose::PageWalk), Some(LeakClass::D2));
        assert_eq!(classify_lfb(FillPurpose::StoreRefill), Some(LeakClass::D3));
        assert_eq!(classify_lfb(FillPurpose::Demand), None);
    }
}
