//! The TEESec checker: scans the simulation trace and the end-of-run
//! microarchitectural snapshot for violations of the two security
//! principles, classifying each finding into the paper's D1–D8 / M1–M2
//! cases (paper §4.3).

use std::collections::BTreeSet;

use teesec_uarch::config::CoreConfig;
use teesec_uarch::trace::{Domain, FillPurpose, Structure, TraceEventKind};

use crate::report::{CheckReport, Finding, LeakClass, Principle};
use crate::runner::RunOutcome;
use crate::secret::SecretCatalog;
use crate::testcase::TestCase;

/// `true` when `observer` is allowed to see data owned by `owner`.
fn authorized(owner: Domain, observer: Domain) -> bool {
    if observer == Domain::SecurityMonitor {
        return true; // the monitor is in every domain's TCB
    }
    match owner {
        Domain::Enclave(e) => observer == Domain::Enclave(e),
        Domain::SecurityMonitor => false,
        Domain::Untrusted => !observer.is_enclave(),
    }
}

/// Classifies a register-file leak by direction (paper Table 3).
/// `sb_forwarded` marks a value the store buffer supplied (case D8's
/// mechanism) rather than the cache hierarchy.
fn classify_rf(owner: Domain, observer: Domain, sb_forwarded: bool) -> Option<LeakClass> {
    match (owner, observer) {
        (Domain::SecurityMonitor, _) => Some(LeakClass::D5),
        (Domain::Enclave(_), Domain::Untrusted) => {
            if sb_forwarded {
                Some(LeakClass::D8)
            } else {
                Some(LeakClass::D4)
            }
        }
        (Domain::Enclave(_), Domain::Enclave(_)) => Some(LeakClass::D6),
        (Domain::Untrusted, Domain::Enclave(_)) => Some(LeakClass::D7),
        _ => None,
    }
}

/// Classifies a line-fill-buffer observation by the fill's purpose.
fn classify_lfb(purpose: FillPurpose) -> Option<LeakClass> {
    match purpose {
        FillPurpose::Prefetch => Some(LeakClass::D1),
        FillPurpose::PageWalk => Some(LeakClass::D2),
        FillPurpose::StoreRefill => Some(LeakClass::D3),
        FillPurpose::Demand => None,
    }
}

/// Runs the full analysis for one executed test case.
pub fn check_case(tc: &TestCase, outcome: &RunOutcome, cfg: &CoreConfig) -> CheckReport {
    let mut secrets = tc.secrets.clone();
    secrets.reindex();
    let mut findings = Vec::new();
    let mut dedup: BTreeSet<String> = BTreeSet::new();
    let mut push = |findings: &mut Vec<Finding>, f: Finding| {
        let key = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}",
            f.class,
            f.structure,
            f.secret.map(|s| s.addr),
            f.observer,
            f.principle
        );
        if dedup.insert(key) {
            findings.push(f);
        }
    };

    scan_trace(tc, outcome, &secrets, &mut findings, &mut push);
    scan_snapshot(tc, outcome, &secrets, &mut findings, &mut push);

    let mut report = CheckReport {
        case: tc.name.clone(),
        path: tc.path,
        design: cfg.name.clone(),
        findings,
        provenance: Vec::new(),
    };
    crate::provenance::annotate(&mut report, outcome, &secrets);
    report
}

fn scan_trace(
    tc: &TestCase,
    outcome: &RunOutcome,
    secrets: &SecretCatalog,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(&mut Vec<Finding>, Finding),
) {
    let trace = &outcome.platform.core.trace;
    let counters = outcome.platform.core.config.hpm_counters;
    let mut tainted = vec![false; counters];
    // (cycle, value) of transient privileged counter reads (Figure 6).
    let mut transient_reads: Vec<(u64, u64)> = Vec::new();
    // Values the store buffer forwarded to loads (D8's mechanism); secrets
    // are high-entropy hashes, so value identity is conclusive.
    let sb_forwarded: std::collections::HashSet<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match (&e.structure, &e.kind) {
            (Structure::StoreBuffer, TraceEventKind::Read { value, .. }) => Some(*value),
            _ => None,
        })
        .collect();

    for e in trace.events() {
        match (&e.structure, &e.kind) {
            // ---- P1: verbatim secrets in the register file -----------------
            (Structure::RegFile, TraceEventKind::Write { value, .. }) => {
                if let Some(rec) = secrets.identify(*value) {
                    if !authorized(rec.owner, e.domain) {
                        let class = classify_rf(rec.owner, e.domain, sb_forwarded.contains(value));
                        push(
                            findings,
                            Finding {
                                class,
                                principle: Principle::P1,
                                structure: Structure::RegFile,
                                cycle: e.cycle,
                                pc: e.pc,
                                secret: Some(rec),
                                observer: e.domain,
                                detail: format!(
                                    "secret written back to the register file in {:?} domain \
                                 (owner {:?})",
                                    e.domain, rec.owner
                                ),
                            },
                        );
                    }
                }
            }
            // ---- P1: secrets arriving in fill buffers / caches -------------
            (
                s @ (Structure::Lfb | Structure::L1d | Structure::L2),
                TraceEventKind::Fill {
                    addr,
                    data,
                    purpose,
                },
            ) => {
                for (off, rec) in secrets.scan_bytes(data) {
                    if authorized(rec.owner, e.domain) {
                        continue;
                    }
                    // In-trace fills classify D1/D2 (the data should never
                    // have been fetched). StoreRefill classifies as D3 only
                    // when it *persists* into the snapshot — the transient
                    // arrival during the scrub itself is not the violation.
                    let class = if *s == Structure::Lfb {
                        match purpose {
                            FillPurpose::Prefetch => Some(LeakClass::D1),
                            FillPurpose::PageWalk => Some(LeakClass::D2),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    push(
                        findings,
                        Finding {
                            class,
                            principle: Principle::P1,
                            structure: *s,
                            cycle: e.cycle,
                            pc: e.pc,
                            secret: Some(rec),
                            observer: e.domain,
                            detail: format!(
                                "{:?}-initiated fill of line {:#x} carried the secret at byte \
                             offset {off} while executing in {:?} domain",
                                purpose, addr, e.domain
                            ),
                        },
                    );
                }
            }
            // ---- P2: performance counters ---------------------------------
            (Structure::Hpc, TraceEventKind::CounterBump { event }) => {
                let i = event.counter_index();
                if i < tainted.len() && e.domain.is_trusted() {
                    tainted[i] = true;
                }
            }
            (Structure::Hpc, TraceEventKind::Flush) => {
                tainted.iter_mut().for_each(|t| *t = false);
            }
            (Structure::Hpc, TraceEventKind::Write { index, value, .. }) if *value == 0 => {
                if let Some(t) = tainted.get_mut(*index as usize) {
                    *t = false;
                }
            }
            (Structure::Hpc, TraceEventKind::Read { index, value }) => {
                let i = *index as usize;
                if e.domain == Domain::Untrusted && i < tainted.len() && tainted[i] && *value > 0 {
                    push(
                        findings,
                        Finding {
                            class: Some(LeakClass::M1),
                            principle: Principle::P2,
                            structure: Structure::Hpc,
                            cycle: e.cycle,
                            pc: e.pc,
                            secret: None,
                            observer: e.domain,
                            detail: format!(
                                "hpmcounter{} read {} events accumulated during trusted \
                             execution; counters are not reset at enclave boundaries",
                                i + 3,
                                value
                            ),
                        },
                    );
                }
                // Privileged-counter transient read (the mcounteren=0
                // configuration of Figure 6): the read should have been
                // rejected, yet a value reached the register file.
                if tc.mcounteren == 0
                    && e.priv_level != teesec_isa::priv_level::PrivLevel::Machine
                    && *value > 0
                {
                    transient_reads.push((e.cycle, *value));
                }
            }
            // ---- P2 (Figure 6 tail): counter value spilled via the store
            // buffer by an interrupt context save ---------------------------
            (Structure::StoreBuffer, TraceEventKind::Write { value, .. }) => {
                if transient_reads
                    .iter()
                    .any(|&(c, v)| v == *value && e.cycle >= c)
                {
                    push(
                        findings,
                        Finding {
                            class: Some(LeakClass::M1),
                            principle: Principle::P2,
                            structure: Structure::StoreBuffer,
                            cycle: e.cycle,
                            pc: e.pc,
                            secret: None,
                            observer: Domain::Untrusted,
                            detail: format!(
                                "transiently-read privileged counter value {value:#x} entered \
                             the store buffer through an interrupt context save and is \
                             exposed to store-buffer forwarding"
                            ),
                        },
                    );
                }
                // Also: verbatim secrets entering the store buffer outside
                // their owner's domain (enclave stores drain under host
                // execution are authorized — owner wrote them).
                if let Some(rec) = secrets.identify(*value) {
                    if !authorized(rec.owner, e.domain) {
                        push(
                            findings,
                            Finding {
                                class: None,
                                principle: Principle::P1,
                                structure: Structure::StoreBuffer,
                                cycle: e.cycle,
                                pc: e.pc,
                                secret: Some(rec),
                                observer: e.domain,
                                detail: "secret value written into the store buffer outside \
                                     its owner's domain"
                                    .into(),
                            },
                        );
                    }
                }
            }
            _ => {}
        }
    }
    let _ = tc;
}

fn scan_snapshot(
    tc: &TestCase,
    outcome: &RunOutcome,
    secrets: &SecretCatalog,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(&mut Vec<Finding>, Finding),
) {
    let core = &outcome.platform.core;
    let observer = core.domain; // the world holding the residue at test end
    if observer != Domain::Untrusted {
        // Tests end in the untrusted host; anything else means the case
        // did not reach its probe phase — snapshot checks don't apply.
        return;
    }

    // Line-fill-buffer residuals (the D1/D2/D3 "remains in state" half).
    for entry in core.lsu.lfb.entries() {
        if !entry.valid {
            continue;
        }
        for (off, rec) in secrets.scan_bytes(&entry.data) {
            if authorized(rec.owner, observer) {
                continue;
            }
            push(
                findings,
                Finding {
                    class: classify_lfb(entry.purpose),
                    principle: Principle::P1,
                    structure: Structure::Lfb,
                    cycle: entry.fill_cycle,
                    pc: None,
                    secret: Some(rec),
                    observer,
                    detail: format!(
                        "residual {:?} fill of line {:#x} still holds the secret at byte \
                     offset {off} after the context switch to the untrusted host",
                        entry.purpose, entry.line_addr
                    ),
                },
            );
        }
    }

    // Cache residuals: enclave lines that were never flushed.
    for (structure, lines) in [
        (
            Structure::L1d,
            core.lsu.l1d.valid_lines().collect::<Vec<_>>(),
        ),
        (Structure::L2, core.lsu.l2.valid_lines().collect::<Vec<_>>()),
    ] {
        for line in lines {
            for (off, rec) in secrets.scan_bytes(&line.data) {
                if authorized(rec.owner, observer) {
                    continue;
                }
                push(
                    findings,
                    Finding {
                        class: None,
                        principle: Principle::P1,
                        structure,
                        cycle: 0,
                        pc: None,
                        secret: Some(rec),
                        observer,
                        detail: format!(
                            "secret remains cached in line {:#x} (byte offset {off}) when \
                         the CPU is not in enclave mode",
                            line.line_addr
                        ),
                    },
                );
            }
        }
    }

    // Branch-prediction residue (M2): entries trained by an enclave that
    // survive into untrusted execution — and, with partial tags, collide
    // with host PCs. Under the eIBRS-style tag mitigation the entries
    // still exist but are unreachable from other domains: not an exposure.
    if outcome.platform.core.config.mitigations.tag_bpu_with_domain {
        return;
    }
    let mut btb_residue = false;
    for e in core.ubtb.entries() {
        if e.valid && e.train_domain.is_enclave() {
            btb_residue = true;
            push(
                findings,
                Finding {
                    class: Some(LeakClass::M2),
                    principle: Principle::P2,
                    structure: Structure::Ubtb,
                    cycle: 0,
                    pc: Some(e.train_pc),
                    secret: None,
                    observer,
                    detail: format!(
                        "uBTB entry trained by {:?} (pc {:#x}, target {:#x}) survives the \
                     context switch; partial tags let host branches hit it",
                        e.train_domain, e.train_pc, e.target
                    ),
                },
            );
        }
    }
    if !btb_residue {
        for e in core.ftb.entries() {
            if e.valid && e.train_domain.is_enclave() {
                push(
                    findings,
                    Finding {
                        class: Some(LeakClass::M2),
                        principle: Principle::P2,
                        structure: Structure::Ftb,
                        cycle: 0,
                        pc: Some(e.train_pc),
                        secret: None,
                        observer,
                        detail: "FTB entry trained inside an enclave survives the context \
                             switch"
                            .into(),
                    },
                );
            }
        }
    }
    let _ = tc;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authorization_matrix() {
        let e0 = Domain::Enclave(0);
        let e1 = Domain::Enclave(1);
        let sm = Domain::SecurityMonitor;
        let host = Domain::Untrusted;
        assert!(authorized(e0, e0));
        assert!(authorized(e0, sm));
        assert!(!authorized(e0, e1));
        assert!(!authorized(e0, host));
        assert!(!authorized(sm, host));
        assert!(authorized(sm, sm));
        assert!(authorized(host, host));
        assert!(authorized(host, sm));
        assert!(!authorized(host, e0));
    }

    #[test]
    fn rf_classification_directions() {
        let e0 = Domain::Enclave(0);
        let e1 = Domain::Enclave(1);
        let host = Domain::Untrusted;
        let sm = Domain::SecurityMonitor;
        assert_eq!(classify_rf(e0, host, false), Some(LeakClass::D4));
        assert_eq!(classify_rf(sm, host, false), Some(LeakClass::D5));
        assert_eq!(classify_rf(e0, e1, false), Some(LeakClass::D6));
        assert_eq!(classify_rf(host, e1, false), Some(LeakClass::D7));
        assert_eq!(classify_rf(e0, host, true), Some(LeakClass::D8));
    }

    #[test]
    fn lfb_classification_by_purpose() {
        assert_eq!(classify_lfb(FillPurpose::Prefetch), Some(LeakClass::D1));
        assert_eq!(classify_lfb(FillPurpose::PageWalk), Some(LeakClass::D2));
        assert_eq!(classify_lfb(FillPurpose::StoreRefill), Some(LeakClass::D3));
        assert_eq!(classify_lfb(FillPurpose::Demand), None);
    }
}
