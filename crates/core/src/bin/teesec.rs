//! The `teesec` command-line tool — the workflow of the paper artifact's
//! `TestGadgetConstructor.py` / `Checker.py`, in one binary:
//!
//! ```text
//! teesec list-gadgets                      # access_gadgets.txt analog
//! teesec plan    [--design D] [--json]     # the verification plan
//! teesec run <gadget> [--design D] [--simlog FILE] [--checker-log FILE]
//!                     [--events FILE] [--metrics-out FILE] [--trace-out FILE]
//! teesec explain <gadget> [--design D] [--json]  # leak provenance chains
//! teesec campaign [--design D] [--cases N] [--output FILE]
//!                 [--events FILE] [--metrics-out FILE] [--diff]
//!                 [--streaming on|off] [--snapshot-cache on|off]
//!                 [--trace-out FILE]       # Perfetto span trace
//!                 [--serve ADDR]           # live /metrics /events /status ...
//!                 [--checkpoint-every N]   # atomic partial metrics snapshots
//! teesec matrix  [--cases N]               # the Table 3 matrix
//! teesec diff    [gadget ...] [--design D] [--cases N] [--stride N]
//!                [--output FILE] [--trace-out FILE]  # core-vs-ISS oracle
//! teesec coverage [--design D] [--seeds N] [--cases N] [--metrics-out FILE]
//! teesec coverage-report [--design D] [--cases N] [--json] [--output FILE]
//!                        [--fail-under-ratio PCT]   # plan-coverage heatmap + gaps
//! teesec trace-report <trace.json> [--json] # critical path + stragglers
//! ```
//!
//! `--serve ADDR` (run / campaign / diff / coverage / coverage-report)
//! embeds the zero-dependency telemetry server for the duration of the
//! command: `GET /metrics` (Prometheus text), `/events` (SSE stream of
//! the engine's JSONL events with `Last-Event-ID` resume), `/status`
//! (progress + ETA JSON), `/coverage` (live plan-coverage report),
//! `/trace` (partial Chrome trace), `/health`. `--serve-linger SECS`
//! keeps the server up after completion so a final scrape can land.

use std::collections::BTreeMap;
use std::fs;
use std::process::ExitCode;

use teesec::assemble::{assemble_case, CaseParams};
use teesec::campaign::{vulnerability_matrix, Campaign};
use teesec::checker::check_case;
use teesec::diff::{DiffOptions, DiffVerdict};
use teesec::engine::{EngineOptions, EventSink};
use teesec::fuzz::{CoverageFuzzer, Fuzzer};
use teesec::gadgets::{catalog, GadgetKind};
use teesec::paths::AccessPath;
use teesec::runner::run_case;
use teesec::simlog::render_simlog;
use teesec::VerificationPlan;
use teesec_obs::MetricsSnapshot;
use teesec_telemetry::{MetricsHub, ProgressModel, TelemetryServer};
use teesec_trace::{Trace, Tracer};
use teesec_uarch::CoreConfig;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  teesec list-gadgets\n  teesec plan [--design boom|xiangshan] [--json]\n  \
         teesec run <access-gadget> [--design boom|xiangshan] [--simlog FILE] [--checker-log FILE]\n  \
         \x20          [--events FILE] [--metrics-out FILE] [--trace-out FILE]\n  \
         \x20          [--serve ADDR] [--serve-linger SECS]\n  \
         teesec explain <access-gadget> [--design boom|xiangshan] [--json]\n  \
         teesec campaign [--design boom|xiangshan] [--cases N] [--threads N] [--output FILE]\n  \
         \x20               [--events FILE] [--metrics-out FILE] [--case-cycle-budget N] [--quiet] [--diff]\n  \
         \x20               [--streaming on|off] [--snapshot-cache on|off]  (both default on)\n  \
         \x20               [--trace-out FILE] [--serve ADDR] [--serve-linger SECS]\n  \
         \x20               [--checkpoint-every N]  (0 disables; rides --metrics-out)\n  \
         teesec matrix [--cases N]\n  \
         teesec diff [gadget ...] [--design boom|xiangshan] [--cases N] [--stride N] [--output FILE]\n  \
         \x20           [--trace-out FILE] [--serve ADDR] [--serve-linger SECS]\n  \
         teesec coverage [--design boom|xiangshan] [--seeds N] [--cases N] [--metrics-out FILE]\n  \
         \x20               [--serve ADDR] [--serve-linger SECS]\n  \
         teesec coverage-report [--design boom|xiangshan] [--cases N] [--threads N] [--json]\n  \
         \x20                      [--output FILE] [--metrics-out FILE] [--fail-under-ratio PCT]\n  \
         \x20                      [--reprobe] [--serve ADDR] [--serve-linger SECS]\n  \
         \x20                      [--checkpoint-every N]\n  \
         teesec trace-report <trace.json> [--json]"
    );
    ExitCode::from(2)
}

struct Opts {
    design: CoreConfig,
    cases: usize,
    threads: usize,
    json: bool,
    simlog: Option<String>,
    checker_log: Option<String>,
    output: Option<String>,
    events: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    case_cycle_budget: Option<u64>,
    quiet: bool,
    diff: bool,
    streaming: bool,
    snapshot_cache: bool,
    stride: u64,
    seeds: usize,
    fail_under_ratio: Option<u64>,
    reprobe: bool,
    serve: Option<String>,
    serve_linger: u64,
    checkpoint_every: usize,
    positional: Vec<String>,
}

fn parse_onoff(v: &str) -> Option<bool> {
    match v {
        "on" => Some(true),
        "off" => Some(false),
        other => {
            eprintln!("expected `on` or `off`, got `{other}`");
            None
        }
    }
}

fn parse(args: &[String]) -> Option<Opts> {
    let mut o = Opts {
        design: CoreConfig::boom(),
        cases: 250,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        json: false,
        simlog: None,
        checker_log: None,
        output: None,
        events: None,
        metrics_out: None,
        trace_out: None,
        case_cycle_budget: None,
        quiet: false,
        diff: false,
        streaming: true,
        snapshot_cache: true,
        stride: 1,
        seeds: 6,
        fail_under_ratio: None,
        reprobe: false,
        serve: None,
        serve_linger: 0,
        checkpoint_every: 50,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--design" => {
                i += 1;
                o.design = match args.get(i)?.as_str() {
                    "boom" => CoreConfig::boom(),
                    "xiangshan" | "xs" => CoreConfig::xiangshan(),
                    other => {
                        eprintln!("unknown design `{other}`");
                        return None;
                    }
                };
            }
            "--cases" => {
                i += 1;
                o.cases = args.get(i)?.parse().ok()?;
            }
            "--threads" => {
                i += 1;
                o.threads = args.get(i)?.parse().ok()?;
            }
            "--json" => o.json = true,
            "--simlog" => {
                i += 1;
                o.simlog = Some(args.get(i)?.clone());
            }
            "--checker-log" => {
                i += 1;
                o.checker_log = Some(args.get(i)?.clone());
            }
            "--output" => {
                i += 1;
                o.output = Some(args.get(i)?.clone());
            }
            "--events" => {
                i += 1;
                o.events = Some(args.get(i)?.clone());
            }
            "--metrics-out" => {
                i += 1;
                o.metrics_out = Some(args.get(i)?.clone());
            }
            "--trace-out" => {
                i += 1;
                o.trace_out = Some(args.get(i)?.clone());
            }
            "--case-cycle-budget" => {
                i += 1;
                o.case_cycle_budget = Some(args.get(i)?.parse().ok()?);
            }
            "--quiet" => o.quiet = true,
            "--diff" => o.diff = true,
            "--streaming" => {
                i += 1;
                o.streaming = parse_onoff(args.get(i)?)?;
            }
            "--snapshot-cache" => {
                i += 1;
                o.snapshot_cache = parse_onoff(args.get(i)?)?;
            }
            "--stride" => {
                i += 1;
                o.stride = args.get(i)?.parse().ok()?;
            }
            "--seeds" => {
                i += 1;
                o.seeds = args.get(i)?.parse().ok()?;
            }
            "--fail-under-ratio" => {
                i += 1;
                o.fail_under_ratio = Some(args.get(i)?.parse().ok()?);
            }
            "--reprobe" => o.reprobe = true,
            "--serve" => {
                i += 1;
                o.serve = Some(args.get(i)?.clone());
            }
            "--serve-linger" => {
                i += 1;
                o.serve_linger = args.get(i)?.parse().ok()?;
            }
            "--checkpoint-every" => {
                i += 1;
                o.checkpoint_every = args.get(i)?.parse().ok()?;
            }
            p if !p.starts_with('-') => o.positional.push(p.to_string()),
            other => {
                eprintln!("unknown flag `{other}`");
                return None;
            }
        }
        i += 1;
    }
    Some(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let Some(opts) = parse(&args[1..]) else {
        return usage();
    };
    match cmd.as_str() {
        "list-gadgets" => cmd_list_gadgets(),
        "plan" => cmd_plan(&opts),
        "run" => cmd_run(&opts),
        "explain" => cmd_explain(&opts),
        "campaign" => cmd_campaign(&opts),
        "matrix" => cmd_matrix(&opts),
        "diff" => cmd_diff(&opts),
        "coverage" => cmd_coverage(&opts),
        "coverage-report" => cmd_coverage_report(&opts),
        "trace-report" => cmd_trace_report(&opts),
        _ => usage(),
    }
}

fn cmd_list_gadgets() -> ExitCode {
    let by_kind: BTreeMap<&str, Vec<&str>> =
        catalog().into_iter().fold(BTreeMap::new(), |mut m, g| {
            let k = match g.kind {
                GadgetKind::Setup => "setup",
                GadgetKind::Helper => "helper",
                GadgetKind::Access => "access",
            };
            m.entry(k).or_default().push(g.name);
            m
        });
    for (kind, names) in by_kind {
        println!("[{kind}]");
        for n in names {
            println!("  {n}");
        }
    }
    println!("\naccess gadget -> path ids accepted by `teesec run`:");
    for p in AccessPath::all() {
        println!("  {}", p.id());
    }
    ExitCode::SUCCESS
}

fn cmd_plan(opts: &Opts) -> ExitCode {
    let plan = VerificationPlan::profile(&opts.design);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&plan).expect("serialize")
        );
        return ExitCode::SUCCESS;
    }
    println!("verification plan: {}", plan.design);
    println!("\nstorage elements:");
    for e in &plan.storage.elements {
        println!(
            "  {:<18} {:>6} x {:>3}B  {:?}{}{}",
            e.structure.display_name(),
            e.entries,
            e.entry_bytes,
            e.content,
            if e.implicit_fill {
                "  implicit-fill"
            } else {
                ""
            },
            if e.flushed_on_domain_switch {
                "  flushed-on-switch"
            } else {
                ""
            },
        );
    }
    println!("\naccess paths:");
    for p in &plan.paths {
        println!(
            "  {:<24} {:?}/{:?}  permission: {:?}",
            p.path.id(),
            p.initiation,
            p.payload,
            p.permission_policy
        );
    }
    println!("\nTEE API:");
    for a in &plan.api {
        println!(
            "  {:?} (from {})  legal from {:?}{}",
            a.call,
            if a.from_enclave { "enclave" } else { "host" },
            a.legal_from,
            if a.switches_domain {
                "  [domain switch]"
            } else {
                ""
            },
        );
    }
    ExitCode::SUCCESS
}

/// Starts the embedded telemetry server when `--serve` was given.
/// `Ok(None)` without the flag; `Err` (with the failure printed) when the
/// bind fails. The bound address is printed so `--serve 127.0.0.1:0`
/// callers can discover the ephemeral port.
fn start_telemetry(opts: &Opts) -> Result<Option<(MetricsHub, TelemetryServer)>, ExitCode> {
    let Some(addr) = &opts.serve else {
        return Ok(None);
    };
    let hub = MetricsHub::default();
    match teesec_telemetry::serve(hub.clone(), addr.as_str()) {
        Ok(server) => {
            println!("telemetry: serving on http://{}", server.local_addr());
            Ok(Some((hub, server)))
        }
        Err(e) => {
            eprintln!("cannot serve telemetry on `{addr}`: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Graceful telemetry drain: marks the campaign complete (ending open
/// SSE streams with an `end` event), honors `--serve-linger`, then joins
/// the accept loop so no scrape races process exit.
fn finish_telemetry(opts: &Opts, telemetry: Option<(MetricsHub, TelemetryServer)>) {
    let Some((hub, mut server)) = telemetry else {
        return;
    };
    hub.set_complete(true); // idempotent — the engine already set it
    if opts.serve_linger > 0 {
        println!(
            "telemetry: lingering {}s before shutdown",
            opts.serve_linger
        );
        std::thread::sleep(std::time::Duration::from_secs(opts.serve_linger));
    }
    server.shutdown();
}

/// Checkpointing rides `--metrics-out`: the periodic partial snapshots
/// land on the same path the final exposition overwrites, so a killed
/// run leaves the freshest checkpoint exactly where the finished run
/// would have left its result. `--checkpoint-every 0` disables.
fn checkpoint_options(
    opts: &Opts,
    coverage_out: Option<String>,
) -> Option<teesec::CheckpointOptions> {
    let path = opts.metrics_out.as_ref()?;
    (opts.checkpoint_every > 0).then(|| teesec::CheckpointOptions {
        path: path.clone(),
        every: opts.checkpoint_every,
        coverage_out,
    })
}

/// Writes the final `--metrics-out` exposition of a served run. The
/// Prometheus text is the hub's last publication verbatim — the engine
/// publishes it from the returned result after the final ring-buffer
/// push, so the on-disk file and the last live `/metrics` scrape are
/// byte-identical. The JSON sibling is re-rendered from the same result.
fn write_served_snapshot_files(
    hub: &MetricsHub,
    result: &teesec::CampaignResult,
    path: &str,
) -> std::io::Result<()> {
    let snap = teesec::live_campaign_snapshot(result, 1_000_000, hub.events_dropped_total());
    let prom = hub.metrics().unwrap_or_else(|| snap.render_prometheus());
    fs::write(path, prom)?;
    fs::write(format!("{path}.json"), snap.render_json())
}

/// Dispatches the metrics-out write through the live (served) or plain
/// path, reporting failures uniformly.
fn write_metrics_out(
    hub: Option<&MetricsHub>,
    result: &teesec::CampaignResult,
    path: &str,
) -> bool {
    let res = match hub {
        Some(hub) => write_served_snapshot_files(hub, result, path),
        None => {
            let snap = teesec::metrics::campaign_snapshot(result);
            teesec::metrics::write_snapshot_files(&snap, path)
        }
    };
    if let Err(e) = res {
        eprintln!("cannot write metrics snapshot `{path}`: {e}");
        return false;
    }
    true
}

fn cmd_run(opts: &Opts) -> ExitCode {
    let Some(gadget) = opts.positional.first() else {
        eprintln!("`teesec run` requires an access gadget id (see list-gadgets)");
        return ExitCode::from(2);
    };
    let Some(path) = AccessPath::all().iter().copied().find(|p| p.id() == gadget) else {
        eprintln!("unknown access gadget `{gadget}`");
        return ExitCode::from(2);
    };
    let tc = match assemble_case(path, CaseParams::default(), &opts.design) {
        Ok(tc) => tc,
        Err(e) => {
            eprintln!("cannot assemble `{gadget}` on {}: {e:?}", opts.design.name);
            return ExitCode::FAILURE;
        }
    };
    println!("test case: {}", tc.name);
    let outcome = run_case(&tc, &opts.design).expect("build");
    println!("simulated {} cycles ({:?})", outcome.cycles, outcome.exit);
    if let Some(p) = &opts.simlog {
        fs::write(p, render_simlog(&outcome.platform.core.trace)).expect("write simlog");
        println!("simulation log written to {p}");
    }
    let report = check_case(&tc, &outcome, &opts.design);
    if report.clean() {
        println!("checker: no violations found");
    } else {
        println!(
            "checker: {} finding(s), classes {:?}",
            report.findings.len(),
            report.classes()
        );
        let rendered: String = report
            .findings
            .iter()
            .map(|f| f.render_checker_log() + "\n")
            .collect();
        match &opts.checker_log {
            Some(p) => {
                fs::write(p, &rendered).expect("write checker log");
                println!("checker log written to {p}");
            }
            None => print!("\n{rendered}"),
        }
    }
    // Observability artifacts: route the same single case through the
    // engine (simulation is deterministic, so results are identical) to
    // produce the JSONL event stream, the metrics snapshot, and/or the
    // Perfetto span trace.
    if opts.events.is_some()
        || opts.metrics_out.is_some()
        || opts.trace_out.is_some()
        || opts.serve.is_some()
    {
        let events = match &opts.events {
            Some(p) => match EventSink::file(p) {
                Ok(sink) => Some(sink),
                Err(e) => {
                    eprintln!("cannot open event stream `{p}`: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        // Serving implies tracing: `/trace` and the `/status` worker
        // table need live spans even without a `--trace-out` file.
        let tracer = if opts.trace_out.is_some() || opts.serve.is_some() {
            Tracer::new(1)
        } else {
            Tracer::disabled()
        };
        let telemetry = match start_telemetry(opts) {
            Ok(t) => t,
            Err(code) => return code,
        };
        let engine = teesec::Engine::new(
            opts.design.clone(),
            EngineOptions {
                threads: 1,
                counters: true,
                events,
                tracer: tracer.clone(),
                telemetry: telemetry.as_ref().map(|(h, _)| h.clone()),
                checkpoint: checkpoint_options(opts, None),
                ..EngineOptions::default()
            },
        );
        let (result, _) = engine.run_corpus(
            std::slice::from_ref(&tc),
            teesec::campaign::PhaseTiming::default(),
        );
        if let Some(p) = &opts.events {
            println!("event stream written to {p}");
        }
        if let Some(p) = &opts.trace_out {
            if !write_trace(&tracer, p) {
                return ExitCode::FAILURE;
            }
        }
        if let Some(p) = &opts.metrics_out {
            if !write_metrics_out(telemetry.as_ref().map(|(h, _)| h), &result, p) {
                return ExitCode::FAILURE;
            }
            println!("metrics snapshot written to {p} (+ {p}.json)");
        }
        finish_telemetry(opts, telemetry);
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE // nonzero = leakage detected (CI-friendly)
    }
}

fn cmd_explain(opts: &Opts) -> ExitCode {
    let Some(gadget) = opts.positional.first() else {
        eprintln!("`teesec explain` requires an access gadget id (see list-gadgets)");
        return ExitCode::from(2);
    };
    let Some(path) = AccessPath::all().iter().copied().find(|p| p.id() == gadget) else {
        eprintln!("unknown access gadget `{gadget}`");
        return ExitCode::from(2);
    };
    let tc = match assemble_case(path, CaseParams::default(), &opts.design) {
        Ok(tc) => tc,
        Err(e) => {
            eprintln!("cannot assemble `{gadget}` on {}: {e:?}", opts.design.name);
            return ExitCode::FAILURE;
        }
    };
    let outcome = run_case(&tc, &opts.design).expect("build");
    let report = check_case(&tc, &outcome, &opts.design);
    if opts.json {
        // The full structured report: findings plus their provenance
        // chains (origin / retention hops / observation), CI-parseable.
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serialize")
        );
        return if report.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if report.clean() {
        println!(
            "{} on {}: no violations — nothing to explain",
            tc.name, opts.design.name
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "{} on {}: {} finding(s), {} provenance chain(s)\n",
        tc.name,
        opts.design.name,
        report.findings.len(),
        report.provenance.len()
    );
    for (i, f) in report.findings.iter().enumerate() {
        let class = f
            .class
            .map(|c| c.to_string())
            .unwrap_or_else(|| "unclassified".into());
        println!(
            "finding #{i}: {class} ({:?}) in {}",
            f.principle,
            f.structure.display_name()
        );
        match report.chain_for(i) {
            Some(chain) => print!("{}", chain.render()),
            None => println!("  (no provenance chain reconstructed)"),
        }
        println!();
    }
    ExitCode::FAILURE // nonzero = leakage detected, as `teesec run`
}

fn cmd_campaign(opts: &Opts) -> ExitCode {
    let events = match &opts.events {
        Some(p) => match EventSink::file(p) {
            Ok(sink) => Some(sink),
            Err(e) => {
                eprintln!("cannot open event stream `{p}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let tracer = if opts.trace_out.is_some() || opts.serve.is_some() {
        Tracer::new(opts.threads.max(1))
    } else {
        Tracer::disabled()
    };
    let telemetry = match start_telemetry(opts) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let campaign =
        Campaign::new(opts.design.clone(), Fuzzer::with_target(opts.cases)).keep_reports();
    let (result, reports) = campaign.run_engine(EngineOptions {
        threads: opts.threads,
        case_cycle_budget: opts.case_cycle_budget,
        keep_reports: true,
        progress: !opts.quiet,
        events,
        counters: true,
        diff: opts.diff.then(|| DiffOptions {
            stride: opts.stride,
            ..DiffOptions::default()
        }),
        streaming: opts.streaming,
        snapshot_cache: opts.snapshot_cache,
        coverage: true,
        fast_path: None, // process default: TEESEC_FASTPATH
        tracer: tracer.clone(),
        telemetry: telemetry.as_ref().map(|(h, _)| h.clone()),
        checkpoint: checkpoint_options(opts, None),
    });
    let metrics = result.engine.as_ref().expect("engine metrics");
    println!(
        "{}: {} cases, {} leaking, {} quarantined, {} over budget, classes {:?}",
        result.design,
        result.case_count,
        result.leaking_cases().count(),
        metrics.cases_quarantined,
        metrics.cases_budget_exceeded,
        result.classes_found
    );
    if let Some(diff) = metrics.diff.as_ref() {
        println!(
            "  diff oracle: {} matched, {} diverged, {} skipped ({} retires compared)",
            diff.matches, diff.divergences, diff.skipped, diff.retires_compared
        );
    }
    if let Some(snap) = metrics.snapshot.as_ref() {
        println!(
            "  snapshot cache: {} hits, {} misses, {} bypasses",
            snap.hits, snap.misses, snap.bypasses
        );
    }
    if let Some(fp) = metrics.fastpath.as_ref() {
        println!(
            "  fast path: {} cases, decode {} hits / {} misses / {} invalidations, scans {} run / {} skipped",
            fp.cases,
            fp.decode_hits,
            fp.decode_misses,
            fp.decode_invalidations,
            fp.scan_checks,
            fp.scan_skips
        );
    }
    if let Some(pc) = metrics.plan_coverage.as_ref() {
        println!(
            "  plan coverage: {}/{} declared paths exercised ({}.{:02}%), {} gap(s)",
            pc.exercised_declared(),
            pc.declared(),
            pc.coverage_ratio_ppm() / 10_000,
            pc.coverage_ratio_ppm() % 10_000 / 100,
            pc.gaps().count()
        );
    }
    if let Some(obs) = metrics.obs.as_ref() {
        if !opts.quiet {
            for (phase, s) in obs.phase_summaries() {
                println!(
                    "  {phase:<12} p50 {:>8}  p90 {:>8}  p99 {:>8}  (n={})",
                    s.p50, s.p90, s.p99, s.count
                );
            }
        }
    }
    if let Some(p) = &opts.events {
        println!("event stream written to {p}");
    }
    if let Some(p) = &opts.trace_out {
        if !write_trace(&tracer, p) {
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            if let Some(report) = metrics.trace.as_ref() {
                print!("{}", report.render());
            }
        }
    }
    if let Some(p) = &opts.metrics_out {
        if !write_metrics_out(telemetry.as_ref().map(|(h, _)| h), &result, p) {
            return ExitCode::FAILURE;
        }
        println!("metrics snapshot written to {p} (+ {p}.json)");
    }
    if let Some(p) = &opts.output {
        let blob = serde_json::json!({ "summary": result, "reports": reports });
        fs::write(p, serde_json::to_string_pretty(&blob).expect("serialize")).expect("write");
        println!("full results written to {p}");
    }
    finish_telemetry(opts, telemetry);
    // With --diff, a divergence means the core disagrees with its own
    // reference model — fail the run so CI notices.
    if metrics.diff.as_ref().is_some_and(|d| d.divergences > 0) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_matrix(opts: &Opts) -> ExitCode {
    let (boom, _) = Campaign::new(CoreConfig::boom(), Fuzzer::with_target(opts.cases))
        .run_parallel(opts.threads);
    let (xs, _) = Campaign::new(CoreConfig::xiangshan(), Fuzzer::with_target(opts.cases))
        .run_parallel(opts.threads);
    print!("{}", vulnerability_matrix(&[&boom, &xs]));
    ExitCode::SUCCESS
}

/// `teesec diff`: lockstep core-vs-ISS co-simulation. With positional
/// gadget ids, diffs those cases (default parameters); otherwise diffs the
/// first `--cases` of the systematic corpus. Nonzero exit on divergence.
fn cmd_diff(opts: &Opts) -> ExitCode {
    let corpus: Vec<_> = if opts.positional.is_empty() {
        Fuzzer::with_target(opts.cases).generate(&opts.design)
    } else {
        let mut corpus = Vec::new();
        for gadget in &opts.positional {
            let Some(path) = AccessPath::all().iter().copied().find(|p| p.id() == gadget) else {
                eprintln!("unknown access gadget `{gadget}`");
                return ExitCode::from(2);
            };
            match assemble_case(path, CaseParams::default(), &opts.design) {
                Ok(tc) => corpus.push(tc),
                Err(e) => {
                    eprintln!("cannot assemble `{gadget}` on {}: {e:?}", opts.design.name);
                    return ExitCode::FAILURE;
                }
            }
        }
        corpus
    };
    let diff_opts = DiffOptions {
        stride: opts.stride,
        ..DiffOptions::default()
    };
    let tracer = if opts.trace_out.is_some() || opts.serve.is_some() {
        Tracer::new(1)
    } else {
        Tracer::disabled()
    };
    let telemetry = match start_telemetry(opts) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let hub = telemetry.as_ref().map(|(h, _)| h);
    let t0 = std::time::Instant::now();
    if let Some(hub) = hub {
        hub.set_up(true);
        if tracer.enabled() {
            hub.set_tracer(tracer.clone());
        }
        publish_diff_live(
            hub,
            &opts.design.name,
            &Default::default(),
            0,
            corpus.len(),
            &t0,
        );
    }
    let total = corpus.len();
    let summary = teesec::diff_corpus_with(&corpus, &opts.design, &diff_opts, &tracer, {
        let design = opts.design.name.clone();
        move |done, summary| {
            if let Some(hub) = hub {
                if let Some(case) = summary.cases.last() {
                    let verdict = match &case.verdict {
                        DiffVerdict::Match { .. } => "match",
                        DiffVerdict::Diverged(_) => "diverged",
                        DiffVerdict::Skipped { .. } => "skipped",
                    };
                    let body = serde_json::json!({
                        "seq": done - 1,
                        "case": case.case,
                        "verdict": verdict,
                    });
                    let event = serde_json::json!({ "DiffCase": body });
                    hub.push_event(&serde_json::to_string(&event).expect("serialize diff event"));
                }
                if done % 8 == 0 || done == total {
                    publish_diff_live(hub, &design, summary, done, total, &t0);
                }
            }
        }
    });
    if let Some(hub) = hub {
        publish_diff_live(hub, &opts.design.name, &summary, total, total, &t0);
        hub.set_complete(true);
    }
    for case in &summary.cases {
        match &case.verdict {
            DiffVerdict::Diverged(d) => {
                println!("DIVERGED {}\n{d}", case.case);
            }
            DiffVerdict::Skipped { reason } if !opts.quiet => {
                println!("skipped  {} ({reason})", case.case);
            }
            _ => {}
        }
    }
    println!(
        "{}: {} matched, {} diverged, {} skipped ({} retires compared in lockstep)",
        opts.design.name,
        summary.matches,
        summary.divergences,
        summary.skipped,
        summary.retires_compared
    );
    if let Some(p) = &opts.trace_out {
        if !write_trace(&tracer, p) {
            return ExitCode::FAILURE;
        }
    }
    if let Some(p) = &opts.output {
        fs::write(
            p,
            serde_json::to_string_pretty(&summary).expect("serialize"),
        )
        .expect("write");
        println!("full verdicts written to {p}");
    }
    finish_telemetry(opts, telemetry);
    if summary.divergences > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Publishes the live artifacts of a `teesec diff --serve` sweep: a
/// stamped diff-counter exposition for `/metrics` and a compact `/status`
/// document. The serial oracle has no engine aggregates, so the document
/// is the diff-specific subset of the campaign one.
fn publish_diff_live(
    hub: &MetricsHub,
    design: &str,
    summary: &teesec::DiffSummary,
    done: usize,
    total: usize,
    t0: &std::time::Instant,
) {
    let model = ProgressModel {
        done,
        total,
        quarantined: 0,
        elapsed_us: t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        threads: 1,
        mean_case_us: None,
    };
    let dropped = hub.events_dropped_total();
    let labels = &[("design", design)];
    let mut snap = MetricsSnapshot::new();
    snap.counter(
        "teesec_diff_cases_compared_total",
        labels,
        summary.cases.len() as u64,
        "Cases the differential oracle looked at",
    );
    snap.counter(
        "teesec_diff_matches_total",
        labels,
        summary.matches,
        "Cases where core and ISS agreed at every compared point",
    );
    snap.counter(
        "teesec_diff_divergences_total",
        labels,
        summary.divergences,
        "Cases where the machines diverged",
    );
    snap.counter(
        "teesec_diff_skipped_total",
        labels,
        summary.skipped,
        "Cases outside the oracle's model",
    );
    snap.counter(
        "teesec_diff_retires_compared_total",
        labels,
        summary.retires_compared,
        "Retirements compared in lockstep across matching cases",
    );
    teesec::metrics::stamp_live(&mut snap, design, model.progress_ppm(), dropped);
    hub.publish_metrics(snap.render_prometheus());
    let status = serde_json::json!({
        "design": design,
        "complete": done == total,
        "cases_done": done,
        "cases_total": total,
        "matches": summary.matches,
        "divergences": summary.divergences,
        "skipped": summary.skipped,
        "retires_compared": summary.retires_compared,
        "progress_ppm": model.progress_ppm(),
        "elapsed_us": model.elapsed_us,
        "eta_us": model.eta_us(),
        "events_dropped_total": dropped,
    });
    hub.publish_status(serde_json::to_string_pretty(&status).expect("serialize status"));
    hub.set_progress_ppm(model.progress_ppm());
}

/// Serializes `tracer`'s recorded spans as Chrome/Perfetto trace JSON at
/// `path`. Returns `false` (after printing the error) on I/O failure.
fn write_trace(tracer: &Tracer, path: &str) -> bool {
    match fs::write(path, tracer.snapshot().to_chrome_json()) {
        Ok(()) => {
            println!("perfetto trace written to {path} (open at ui.perfetto.dev)");
            true
        }
        Err(e) => {
            eprintln!("cannot write trace `{path}`: {e}");
            false
        }
    }
}

/// `teesec trace-report`: offline analysis of a `--trace-out` file —
/// campaign critical path, per-phase wall-time attribution, worker
/// utilization, and the top straggler cases. `--json` emits the structured
/// [`TraceReport`](teesec_trace::TraceReport) instead of the table.
fn cmd_trace_report(opts: &Opts) -> ExitCode {
    let Some(path) = opts.positional.first() else {
        eprintln!("`teesec trace-report` requires a trace.json file (from --trace-out)");
        return ExitCode::from(2);
    };
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read trace `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::from_chrome_json(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse trace `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = trace.analyze(5);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serialize")
        );
    } else {
        print!("{}", report.render());
    }
    ExitCode::SUCCESS
}

/// `teesec coverage-report`: runs a campaign with plan-coverage recording
/// on and renders the security-coverage report — the structure ×
/// transition × observer heatmap, the top secret-residency windows, and
/// the explicit list of declared-but-never-exercised plan paths. With
/// `--fail-under-ratio PCT` the exit code turns nonzero when coverage
/// lands under the threshold (CI gate).
fn cmd_coverage_report(opts: &Opts) -> ExitCode {
    let mut corpus = Fuzzer::with_target(opts.cases).generate(&opts.design);
    if opts.reprobe {
        // The gap-closing variants from the coverage gap hunt
        // (EXPERIMENTS.md): one host branch re-probe per access path, so
        // the monitor-return window finally executes a branch.
        for &path in AccessPath::all() {
            let params = CaseParams {
                reprobe: true,
                ..CaseParams::default()
            };
            if let Ok(tc) = assemble_case(path, params, &opts.design) {
                corpus.push(tc);
            }
        }
    }
    let telemetry = match start_telemetry(opts) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let engine = teesec::Engine::new(
        opts.design.clone(),
        EngineOptions {
            threads: opts.threads,
            progress: false,
            streaming: opts.streaming,
            snapshot_cache: opts.snapshot_cache,
            coverage: true,
            tracer: if opts.serve.is_some() {
                Tracer::new(opts.threads.max(1))
            } else {
                Tracer::disabled()
            },
            telemetry: telemetry.as_ref().map(|(h, _)| h.clone()),
            checkpoint: checkpoint_options(opts, opts.output.clone()),
            ..EngineOptions::default()
        },
    );
    let (result, _) = engine.run_corpus(&corpus, teesec::campaign::PhaseTiming::default());
    let metrics = result.engine.as_ref().expect("engine metrics");
    let pc = metrics.plan_coverage.as_ref().expect("coverage was on");

    let blob = pc.report_json();
    if let Some(p) = &opts.output {
        fs::write(p, serde_json::to_string_pretty(&blob).expect("serialize")).expect("write");
    }
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&blob).expect("serialize")
        );
    } else {
        print!("{}", pc.render_heatmap());

        let mut residency: Vec<_> = pc.residency.iter().collect();
        residency.sort_by_key(|r| std::cmp::Reverse(r.worst_cycles));
        if !residency.is_empty() {
            println!("\nsecret residency (worst exposure window per structure):");
            for r in residency.iter().take(10) {
                println!(
                    "  {:<18} {:>6} window(s), worst {:>8} cycles  ({})",
                    r.structure.display_name(),
                    r.windows.count(),
                    r.worst_cycles,
                    r.worst_case.as_deref().unwrap_or("-"),
                );
            }
        }

        let gaps: Vec<_> = pc.gaps().collect();
        if gaps.is_empty() {
            println!("\nno gaps: every declared plan path was exercised");
        } else {
            println!(
                "\ngaps ({} declared plan paths never exercised):",
                gaps.len()
            );
            for g in &gaps {
                println!(
                    "  {:<18} during {:<14} observed by {}",
                    g.cell.structure.display_name(),
                    g.cell.transition.label(),
                    g.cell.observer.label(),
                );
            }
        }
        if let Some(p) = &opts.output {
            println!("\nstructured report written to {p}");
        }
    }
    if let Some(p) = &opts.metrics_out {
        if !write_metrics_out(telemetry.as_ref().map(|(h, _)| h), &result, p) {
            return ExitCode::FAILURE;
        }
        if !opts.json {
            println!("metrics snapshot written to {p} (+ {p}.json)");
        }
    }
    finish_telemetry(opts, telemetry);
    if let Some(pct) = opts.fail_under_ratio {
        let ratio_ppm = pc.coverage_ratio_ppm();
        if ratio_ppm < pct.saturating_mul(10_000) {
            eprintln!(
                "coverage {}.{:02}% is under the --fail-under-ratio {pct}% threshold",
                ratio_ppm / 10_000,
                ratio_ppm % 10_000 / 100,
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `teesec coverage`: one coverage-guided fuzzing session. `--seeds` sets
/// the systematic seed count, `--cases` the guided-phase budget.
fn cmd_coverage(opts: &Opts) -> ExitCode {
    let telemetry = match start_telemetry(opts) {
        Ok(t) => t,
        Err(code) => return code,
    };
    // The guided fuzzer runs serially with no engine hooks, so the live
    // surface is bracketed: an empty stamped exposition up front (no 503
    // for early scrapers), the full session snapshot at the end.
    if let Some((hub, _)) = &telemetry {
        hub.set_up(true);
        let mut snap = MetricsSnapshot::new();
        teesec::metrics::stamp_live(&mut snap, &opts.design.name, 0, 0);
        hub.publish_metrics(snap.render_prometheus());
    }
    let outcome = CoverageFuzzer::new(opts.seeds, opts.cases).run(&opts.design);
    if let Some((hub, _)) = &telemetry {
        let mut snap = teesec::metrics::coverage_snapshot(&outcome, &opts.design.name);
        teesec::metrics::stamp_live(
            &mut snap,
            &opts.design.name,
            1_000_000,
            hub.events_dropped_total(),
        );
        hub.publish_metrics(snap.render_prometheus());
        let status = serde_json::json!({
            "design": opts.design.name,
            "complete": true,
            "cases_done": outcome.executed,
            "cases_total": outcome.executed,
            "coverage_buckets": outcome.map.len(),
            "corpus_entries": outcome.corpus.len(),
            "progress_ppm": 1_000_000u64,
        });
        hub.publish_status(serde_json::to_string_pretty(&status).expect("serialize status"));
        hub.set_progress_ppm(1_000_000);
    }
    println!(
        "{}: {} cases executed, coverage {} buckets (seeds alone: {}), corpus {} entries",
        opts.design.name,
        outcome.executed,
        outcome.map.len(),
        outcome.seed_buckets,
        outcome.corpus.len()
    );
    if !opts.quiet {
        for entry in &outcome.corpus {
            println!("  +{:<3} {}", entry.novel_buckets, entry.name);
        }
    }
    if let Some(p) = &opts.metrics_out {
        let snap = teesec::metrics::coverage_snapshot(&outcome, &opts.design.name);
        if let Err(e) = teesec::metrics::write_snapshot_files(&snap, p) {
            eprintln!("cannot write metrics snapshot `{p}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics snapshot written to {p} (+ {p}.json)");
    }
    if let Some(p) = &opts.output {
        fs::write(
            p,
            serde_json::to_string_pretty(&outcome).expect("serialize"),
        )
        .expect("write");
        println!("full session written to {p}");
    }
    finish_telemetry(opts, telemetry);
    ExitCode::SUCCESS
}
