//! The gadget fuzzer: sweeps gadget parameters to generate the test-case
//! corpus (paper §5: "Since gadgets are parameterized, we rely on fuzzing
//! for gadget assembly and to generate varied test cases" — 585 cases in
//! the paper's evaluation).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use teesec_isa::inst::MemWidth;
use teesec_uarch::config::CoreConfig;

use crate::assemble::{assemble_case, Attacker, CaseParams, Lifecycle, Victim};
use crate::cover::CoverageMap;
use crate::paths::AccessPath;
use crate::runner::run_case;
use crate::testcase::TestCase;

/// The paper's corpus size (Table 2).
pub const PAPER_TEST_CASE_COUNT: usize = 585;

/// Deterministic parameter fuzzer.
#[derive(Debug, Clone)]
pub struct Fuzzer {
    seed: u64,
    target_count: usize,
}

impl Fuzzer {
    /// A fuzzer producing the paper's corpus size.
    pub fn paper_default() -> Fuzzer {
        Fuzzer {
            seed: 0x7EE5_EC00,
            target_count: PAPER_TEST_CASE_COUNT,
        }
    }

    /// A fuzzer with a custom corpus size (smaller for quick runs).
    pub fn with_target(target_count: usize) -> Fuzzer {
        Fuzzer {
            seed: 0x7EE5_EC00,
            target_count,
        }
    }

    /// Overrides the RNG seed (corpus diversity experiments).
    pub fn with_seed(mut self, seed: u64) -> Fuzzer {
        self.seed = seed;
        self
    }

    /// The corpus size this fuzzer aims for.
    pub fn target_count(&self) -> usize {
        self.target_count
    }

    /// Generates the corpus for one design.
    ///
    /// The systematic sweep first enumerates every valid combination of
    /// (path × victim × attacker × lifecycle × width × seeding); random
    /// offset/width permutations then widen the corpus to the target count.
    pub fn generate(&self, cfg: &CoreConfig) -> Vec<TestCase> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut cases = Vec::new();
        // Phase 1: systematic coverage of the discrete dimensions. The
        // leak-direction dimensions (victim, attacker, path) iterate
        // innermost so even tiny corpora cover every direction of Table 3.
        for lifecycle in [Lifecycle::Stop, Lifecycle::StopResumeStop, Lifecycle::Exit] {
            for warm_via_stores in [false, true] {
                for victim in [Victim::Enclave, Victim::SecurityMonitor, Victim::Host] {
                    for attacker in [Attacker::Host, Attacker::Enclave1] {
                        for &path in AccessPath::all() {
                            if cases.len() >= self.target_count {
                                return cases;
                            }
                            let params = CaseParams {
                                victim,
                                attacker,
                                lifecycle,
                                warm_via_stores,
                                ..CaseParams::default()
                            };
                            if let Ok(tc) = assemble_case(path, params, cfg) {
                                cases.push(tc);
                            }
                        }
                    }
                }
            }
        }
        // Phase 1b: the Figure 6 interrupt-timing sweep (restricted
        // counters + interrupts landing at varied cycles).
        for k in 0..12u64 {
            if cases.len() >= self.target_count {
                return cases;
            }
            let params = CaseParams {
                restricted_counters: true,
                irq_at: Some(2_000 + 37 * k),
                ..CaseParams::default()
            };
            if let Ok(mut tc) = assemble_case(AccessPath::HpcRead, params, cfg) {
                tc.name = format!("{}_irq{k}", tc.name);
                cases.push(tc);
            }
        }
        // Phase 2: randomized offset/width permutations until the target.
        let widths = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];
        let mut salt = 0u64;
        while cases.len() < self.target_count {
            let path = AccessPath::all()[rng.gen_range(0..AccessPath::all().len())];
            let victim = match rng.gen_range(0..4) {
                0 => Victim::SecurityMonitor,
                1 => Victim::Host,
                _ => Victim::Enclave,
            };
            let attacker = if rng.gen_bool(0.25) {
                Attacker::Enclave1
            } else {
                Attacker::Host
            };
            let params = CaseParams {
                victim,
                attacker,
                offset: rng.gen_range(0..0x100u64) * 8,
                width: widths[rng.gen_range(0..widths.len())],
                warm_via_stores: rng.gen_bool(0.5),
                lifecycle: match rng.gen_range(0..3) {
                    0 => Lifecycle::Stop,
                    1 => Lifecycle::StopResumeStop,
                    _ => Lifecycle::Exit,
                },
                irq_at: None,
                restricted_counters: false,
                reprobe: false,
            };
            if let Ok(mut tc) = assemble_case(path, params, cfg) {
                salt += 1;
                tc.name = format!("{}_v{salt}", tc.name);
                cases.push(tc);
            }
        }
        cases
    }
}

/// An input the coverage-guided fuzzer kept because it lit coverage
/// buckets no earlier input had lit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// Generated case name.
    pub name: String,
    /// The access path.
    pub path: AccessPath,
    /// The parameters that reached the new coverage.
    pub params: CaseParams,
    /// How many buckets this input was first to reach.
    pub novel_buckets: usize,
}

/// The result of one coverage-guided fuzzing session.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoverageOutcome {
    /// Total cases actually simulated (seeds + mutants).
    pub executed: usize,
    /// Buckets reached by the seed phase alone — the baseline a guided
    /// session must beat.
    pub seed_buckets: usize,
    /// Final cumulative coverage.
    pub map: CoverageMap,
    /// Coverage-increasing inputs, in discovery order.
    pub corpus: Vec<CorpusEntry>,
}

/// Coverage-guided parameter fuzzer: seeds from the systematic sweep, then
/// mutates corpus entries (inputs that reached new microarchitectural
/// coverage) instead of sampling blindly. Deterministic for a fixed seed —
/// the guidance loop uses no wall-clock or global state.
#[derive(Debug, Clone)]
pub struct CoverageFuzzer {
    seed: u64,
    seed_inputs: usize,
    budget: usize,
}

impl CoverageFuzzer {
    /// A fuzzer with `seed_inputs` systematic seeds and a total execution
    /// `budget` (seeds included).
    pub fn new(seed_inputs: usize, budget: usize) -> CoverageFuzzer {
        CoverageFuzzer {
            seed: 0xC0FE_FACE,
            seed_inputs,
            budget,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> CoverageFuzzer {
        self.seed = seed;
        self
    }

    /// The systematic seed inputs: the head of the same (lifecycle × warm ×
    /// victim × attacker × path) enumeration [`Fuzzer::generate`] starts
    /// from, truncated to `seed_inputs`.
    fn seeds(&self, cfg: &CoreConfig) -> Vec<(AccessPath, CaseParams)> {
        let mut out = Vec::new();
        for lifecycle in [Lifecycle::Stop, Lifecycle::StopResumeStop, Lifecycle::Exit] {
            for warm_via_stores in [false, true] {
                for victim in [Victim::Enclave, Victim::SecurityMonitor, Victim::Host] {
                    for attacker in [Attacker::Host, Attacker::Enclave1] {
                        for &path in AccessPath::all() {
                            if out.len() >= self.seed_inputs {
                                return out;
                            }
                            let params = CaseParams {
                                victim,
                                attacker,
                                lifecycle,
                                warm_via_stores,
                                ..CaseParams::default()
                            };
                            if assemble_case(path, params, cfg).is_ok() {
                                out.push((path, params));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// One mutation of a corpus entry: perturb exactly one dimension, so
    /// coverage gains are attributable and the walk stays local.
    fn mutate(rng: &mut StdRng, path: AccessPath, params: CaseParams) -> (AccessPath, CaseParams) {
        let widths = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];
        let mut p = params;
        let mut pa = path;
        match rng.gen_range(0..8) {
            0 => pa = AccessPath::all()[rng.gen_range(0..AccessPath::all().len())],
            1 => p.offset = rng.gen_range(0..0x100u64) * 8,
            2 => p.width = widths[rng.gen_range(0..widths.len())],
            3 => p.warm_via_stores = !p.warm_via_stores,
            4 => {
                p.lifecycle = match rng.gen_range(0..3) {
                    0 => Lifecycle::Stop,
                    1 => Lifecycle::StopResumeStop,
                    _ => Lifecycle::Exit,
                }
            }
            5 => {
                p.victim = match rng.gen_range(0..3) {
                    0 => Victim::Enclave,
                    1 => Victim::SecurityMonitor,
                    _ => Victim::Host,
                }
            }
            6 => {
                p.attacker = match p.attacker {
                    Attacker::Host => Attacker::Enclave1,
                    Attacker::Enclave1 => Attacker::Host,
                }
            }
            _ => p.restricted_counters = !p.restricted_counters,
        }
        (pa, p)
    }

    /// Runs the session on `cfg`: execute seeds, then spend the remaining
    /// budget mutating coverage-increasing inputs.
    pub fn run(&self, cfg: &CoreConfig) -> CoverageOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut outcome = CoverageOutcome::default();
        let mut tried: HashSet<(AccessPath, CaseParams)> = HashSet::new();

        let execute =
            |outcome: &mut CoverageOutcome, path: AccessPath, params: CaseParams| -> bool {
                let Ok(tc) = assemble_case(path, params, cfg) else {
                    return false;
                };
                let Ok(run) = run_case(&tc, cfg) else {
                    return false;
                };
                outcome.executed += 1;
                let cov = CoverageMap::from_counters(&run.platform.core.counters());
                let novel = outcome.map.merge(&cov);
                if novel > 0 {
                    outcome.corpus.push(CorpusEntry {
                        name: tc.name.clone(),
                        path,
                        params,
                        novel_buckets: novel,
                    });
                }
                true
            };

        for (path, params) in self.seeds(cfg) {
            if outcome.executed >= self.budget {
                break;
            }
            tried.insert((path, params));
            execute(&mut outcome, path, params);
        }
        outcome.seed_buckets = outcome.map.len();

        // Guided phase: mutate corpus entries round-robin, newest first —
        // recent coverage gains are the most promising neighbourhoods.
        let mut attempts = 0usize;
        let max_attempts = self.budget.saturating_mul(16).max(64);
        while outcome.executed < self.budget && attempts < max_attempts {
            attempts += 1;
            let (base_path, base_params) = match outcome.corpus.last() {
                Some(_) => {
                    let idx =
                        outcome.corpus.len() - 1 - rng.gen_range(0..outcome.corpus.len().min(4));
                    let e = &outcome.corpus[idx];
                    (e.path, e.params)
                }
                None => (AccessPath::LoadL1Hit, CaseParams::default()),
            };
            let (path, params) = Self::mutate(&mut rng, base_path, base_params);
            if !tried.insert((path, params)) {
                continue;
            }
            execute(&mut outcome, path, params);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn corpus_reaches_target_and_covers_paths() {
        let fz = Fuzzer::with_target(120);
        let cases = fz.generate(&CoreConfig::boom());
        assert_eq!(cases.len(), 120);
        let covered: BTreeSet<AccessPath> = cases.iter().map(|c| c.path).collect();
        // All paths that exist on BOOM must be covered.
        for p in AccessPath::all() {
            if p.exists_on(&CoreConfig::boom()) {
                assert!(covered.contains(p), "path {p:?} uncovered");
            }
        }
    }

    #[test]
    fn paper_default_is_585() {
        assert_eq!(Fuzzer::paper_default().target_count(), 585);
    }

    #[test]
    fn names_are_unique_within_corpus() {
        let cases = Fuzzer::with_target(150).generate(&CoreConfig::xiangshan());
        let names: BTreeSet<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), cases.len(), "duplicate case names");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Fuzzer::with_target(60).generate(&CoreConfig::boom());
        let b = Fuzzer::with_target(60).generate(&CoreConfig::boom());
        let na: Vec<_> = a.iter().map(|c| c.name.clone()).collect();
        let nb: Vec<_> = b.iter().map(|c| c.name.clone()).collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn different_seed_changes_phase2() {
        // Phase 1 on BOOM yields ~234 deterministic cases + 12 IRQ sweeps;
        // 300 guarantees the randomized phase 2 contributes.
        let a = Fuzzer::with_target(300).generate(&CoreConfig::boom());
        let b = Fuzzer::with_target(300)
            .with_seed(42)
            .generate(&CoreConfig::boom());
        let na: Vec<_> = a.iter().map(|c| c.name.clone()).collect();
        let nb: Vec<_> = b.iter().map(|c| c.name.clone()).collect();
        assert_ne!(na, nb);
    }

    #[test]
    fn xiangshan_corpus_includes_sb_forward() {
        let cases = Fuzzer::with_target(120).generate(&CoreConfig::xiangshan());
        assert!(cases.iter().any(|c| c.path == AccessPath::LoadSbForward));
        let boom_cases = Fuzzer::with_target(120).generate(&CoreConfig::boom());
        assert!(!boom_cases
            .iter()
            .any(|c| c.path == AccessPath::LoadSbForward));
    }
}
