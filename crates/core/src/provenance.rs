//! Leak provenance: reconstructs, for each [`Finding`], the causal chain
//! *secret write → residue retention → observing access* from the
//! simulation trace.
//!
//! The checker answers "**what** leaked **where**"; provenance answers
//! "**how it got there**": which event first materialized the leaking
//! state in the owner's domain, which structures retained it across the
//! domain switch, and which access finally exposed it. Chains are
//! attached to [`CheckReport::provenance`] and rendered by
//! `teesec explain`.

use serde::{Deserialize, Serialize};

use teesec_uarch::trace::{Domain, Structure, TraceEvent, TraceEventKind};

use crate::report::{CheckReport, Finding, Principle};
use crate::runner::RunOutcome;
use crate::secret::SecretCatalog;

/// One step of a provenance chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceHop {
    /// Simulation cycle of the step.
    pub cycle: u64,
    /// Executing domain at the step.
    pub domain: Domain,
    /// Structure touched; `None` for the architectural seed (memory).
    pub structure: Option<Structure>,
    /// PC of the associated instruction, when attributable.
    pub pc: Option<u64>,
    /// What happened at this step.
    pub action: String,
}

/// The reconstructed causal chain behind one finding.
///
/// Invariant (asserted by the provenance tests): `origin.cycle` is
/// strictly less than `observation.cycle`, and every intermediate hop
/// lies in between.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceChain {
    /// Index into [`CheckReport::findings`] this chain explains.
    pub finding_index: usize,
    /// Domain owning the leaked state.
    pub owner: Domain,
    /// Domain that observed (or could observe) it.
    pub observer: Domain,
    /// Where the leaking state entered the machine.
    pub origin: ProvenanceHop,
    /// Structures that retained the state between origin and observation.
    pub retention: Vec<ProvenanceHop>,
    /// The access that exposed it.
    pub observation: ProvenanceHop,
    /// Cycles the residue survived: `observation.cycle - origin.cycle`.
    pub retention_cycles: u64,
}

impl ProvenanceChain {
    /// The cycle-resolved exposure windows this chain implies, as
    /// `(structure, start_cycle, end_cycle)` triples: the secret was
    /// resident in each retention-hop structure (and the observed
    /// structure itself) from the hop that dragged it there until the
    /// observation. One window per structure, earliest arrival kept —
    /// the raw material of the `teesec_secret_residency_cycles`
    /// histograms.
    pub fn exposure_windows(&self) -> Vec<(Structure, u64, u64)> {
        let end = self.observation.cycle;
        let mut windows: Vec<(Structure, u64, u64)> = Vec::new();
        let mut push = |structure: Option<Structure>, start: u64| {
            let s = match structure {
                Some(s) => s,
                None => return, // architectural seed: memory, not uarch state
            };
            match windows.iter_mut().find(|(ws, _, _)| *ws == s) {
                Some(w) => w.1 = w.1.min(start),
                None => windows.push((s, start, end)),
            }
        };
        if let Some(s) = self.observation.structure {
            push(Some(s), self.origin.cycle);
        }
        push(self.origin.structure, self.origin.cycle);
        for hop in &self.retention {
            push(hop.structure, hop.cycle);
        }
        windows.sort_by_key(|(s, _, _)| s.index());
        windows
    }

    /// Renders the chain as an indented multi-line narrative
    /// (the `teesec explain` output).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "  owner {:?} -> observer {:?} ({} cycle retention window)\n",
            self.owner, self.observer, self.retention_cycles
        ));
        s.push_str(&format!("  origin      {}\n", render_hop(&self.origin)));
        for hop in &self.retention {
            s.push_str(&format!("  retained    {}\n", render_hop(hop)));
        }
        s.push_str(&format!(
            "  observation {}\n",
            render_hop(&self.observation)
        ));
        s
    }
}

fn render_hop(hop: &ProvenanceHop) -> String {
    let place = match hop.structure {
        Some(s) => s.display_name().to_string(),
        None => "memory".to_string(),
    };
    let pc = match hop.pc {
        Some(pc) => format!(" pc={pc:#x}"),
        None => String::new(),
    };
    format!(
        "[cycle {:>8}] {:<18} {:?}{}: {}",
        hop.cycle, place, hop.domain, pc, hop.action
    )
}

fn hop_from_event(e: &TraceEvent, action: String) -> ProvenanceHop {
    ProvenanceHop {
        cycle: e.cycle,
        domain: e.domain,
        structure: Some(e.structure),
        pc: e.pc,
        action,
    }
}

/// `true` when `e` carries the 64-bit secret `value` — as a scalar
/// read/write or embedded in a fill's line data.
fn carries_secret(e: &TraceEvent, value: u64, secrets: &SecretCatalog) -> bool {
    match &e.kind {
        TraceEventKind::Write { value: v, .. } | TraceEventKind::Read { value: v, .. } => {
            *v == value
        }
        TraceEventKind::Fill { data, .. } => secrets
            .scan_bytes(data)
            .iter()
            .any(|(_, rec)| rec.value == value),
        _ => false,
    }
}

pub(crate) fn event_verb(kind: &TraceEventKind) -> &'static str {
    match kind {
        TraceEventKind::Fill { .. } => "fill carried the secret",
        TraceEventKind::Write { .. } => "write installed the secret",
        TraceEventKind::Read { .. } => "read returned the secret",
        TraceEventKind::Flush => "flush",
        TraceEventKind::CounterBump { .. } => "counter bumped",
        TraceEventKind::DomainSwitch { .. } => "domain switch",
    }
}

/// Reconstructs the provenance chain for `report.findings[index]`.
/// Returns `None` only when the finding's mechanism cannot be located in
/// the trace at all (never for findings the bundled checker produces).
pub fn trace_chain(
    finding: &Finding,
    index: usize,
    outcome: &RunOutcome,
    secrets: &SecretCatalog,
) -> Option<ProvenanceChain> {
    let events: Vec<&TraceEvent> = outcome.platform.core.trace.iter_events().collect();
    let end_cycle = outcome.cycles;

    // The observation: trace findings carry their own cycle; snapshot
    // findings (cycle 0 or an LFB fill_cycle with no observing event) are
    // residues still present when the run ended.
    let (obs_cycle, obs_is_snapshot) = if finding.cycle == 0 || finding.pc.is_none() {
        (end_cycle, true)
    } else {
        (finding.cycle, false)
    };
    let observation = ProvenanceHop {
        cycle: obs_cycle,
        domain: finding.observer,
        structure: Some(finding.structure),
        pc: if obs_is_snapshot { None } else { finding.pc },
        action: if obs_is_snapshot {
            format!(
                "residue still valid in the {} when the run ended",
                finding.structure.display_name()
            )
        } else {
            format!(
                "observing access in {:?} domain ({})",
                finding.observer, finding.detail
            )
        },
    };

    let (owner, origin, retention) = match (&finding.secret, finding.principle) {
        // Data leaks: follow the secret value through the trace.
        (Some(rec), _) => {
            let owner = rec.owner;
            let carrying: Vec<&TraceEvent> = events
                .iter()
                .copied()
                .filter(|e| e.cycle <= obs_cycle && carries_secret(e, rec.value, secrets))
                .collect();
            // Prefer the first materialization in the owner's own domain
            // (the legitimate write); a secret that was *never* touched
            // in-domain originates at its architectural seed.
            let in_domain = carrying.iter().find(|e| e.domain == owner);
            let origin = match in_domain {
                Some(e) => {
                    hop_from_event(e, format!("{} in its owner's domain", event_verb(&e.kind)))
                }
                None => ProvenanceHop {
                    cycle: 0,
                    domain: owner,
                    structure: None,
                    pc: None,
                    action: format!(
                        "secret {:#x} seeded at address {:#x} before the run",
                        rec.value, rec.addr
                    ),
                },
            };
            // Retention: later events that dragged the secret into other
            // structures, one hop per structure, observation excluded.
            let mut seen = vec![origin.structure, Some(finding.structure)];
            let mut retention = Vec::new();
            for e in &carrying {
                if e.cycle <= origin.cycle {
                    continue;
                }
                if !obs_is_snapshot && e.cycle >= obs_cycle {
                    break;
                }
                if seen.contains(&Some(e.structure)) {
                    continue;
                }
                seen.push(Some(e.structure));
                retention.push(hop_from_event(e, event_verb(&e.kind).to_string()));
            }
            // A snapshot residue's own arrival is part of the story too.
            if obs_is_snapshot {
                if let Some(arrival) = carrying
                    .iter()
                    .find(|e| e.structure == finding.structure && e.cycle > origin.cycle)
                {
                    retention.push(hop_from_event(
                        arrival,
                        format!("{} and was never flushed", event_verb(&arrival.kind)),
                    ));
                    retention.sort_by_key(|h| h.cycle);
                }
            }
            (owner, origin, retention)
        }
        // Metadata leaks, branch predictors (M2): the enclave training
        // write that installed the surviving entry.
        (None, Principle::P2) if matches!(finding.structure, Structure::Ubtb | Structure::Ftb) => {
            let train = events.iter().find(|e| {
                e.structure == finding.structure
                    && e.domain.is_enclave()
                    && matches!(e.kind, TraceEventKind::Write { .. })
                    && (finding.pc.is_none() || e.pc == finding.pc)
            })?;
            let owner = train.domain;
            let origin = hop_from_event(
                train,
                "branch trained inside the enclave installed this entry".to_string(),
            );
            (owner, origin, Vec::new())
        }
        // Metadata leaks, counters (M1, HPC or its store-buffer spill):
        // the first event bump accumulated during trusted execution.
        (None, _) => {
            let bump = events.iter().find(|e| {
                e.structure == Structure::Hpc
                    && e.domain.is_trusted()
                    && e.cycle < obs_cycle
                    && matches!(e.kind, TraceEventKind::CounterBump { .. })
            })?;
            let owner = bump.domain;
            let origin = hop_from_event(
                bump,
                "first event counted during trusted execution".to_string(),
            );
            // The last trusted bump bounds the accumulation window.
            let last = events.iter().rfind(|e| {
                e.structure == Structure::Hpc
                    && e.domain.is_trusted()
                    && e.cycle < obs_cycle
                    && e.cycle > bump.cycle
                    && matches!(e.kind, TraceEventKind::CounterBump { .. })
            });
            let retention = last
                .map(|e| {
                    vec![hop_from_event(
                        e,
                        "last event counted during trusted execution".to_string(),
                    )]
                })
                .unwrap_or_default();
            (owner, origin, retention)
        }
    };

    Some(ProvenanceChain {
        finding_index: index,
        owner,
        observer: finding.observer,
        retention_cycles: observation.cycle.saturating_sub(origin.cycle),
        origin,
        retention,
        observation,
    })
}

/// Reconstructs chains for every finding in `report` and attaches them to
/// [`CheckReport::provenance`]. Findings whose mechanism cannot be located
/// in the trace simply have no chain.
pub fn annotate(report: &mut CheckReport, outcome: &RunOutcome, secrets: &SecretCatalog) {
    report.provenance = report
        .findings
        .iter()
        .enumerate()
        .filter_map(|(i, f)| trace_chain(f, i, outcome, secrets))
        .collect();
}
