//! The campaign engine: a fault-isolated, work-stealing executor for
//! simulate-then-check corpora.
//!
//! [`Campaign::run`](crate::campaign::Campaign::run) is the serial reference
//! implementation; the engine produces the *same* [`CampaignResult`] (modulo
//! timing and the attached [`EngineMetrics`]) at any worker count, because
//!
//! * workers pull case indices from one shared atomic cursor (work stealing
//!   over the corpus — no static chunking, so stragglers cannot idle a
//!   worker), and results are re-sorted into corpus order before merging;
//! * every case runs under [`std::panic::catch_unwind`]: a case that fails
//!   to build or panics mid-simulation is *quarantined* — recorded as a
//!   [`CaseResult`] carrying the error text — instead of poisoning the
//!   whole campaign;
//! * an optional simulated-cycle watchdog clamps each case's cycle budget,
//!   so a runaway case exits with `halted: false` rather than hogging its
//!   worker.
//!
//! The engine can also narrate itself: an [`EventSink`] receives one JSON
//! object per line (see [`EngineEvent`]) for live consumption, and the
//! aggregate [`EngineMetrics`] lands in
//! [`CampaignResult::engine`](crate::campaign::CampaignResult::engine).

use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use teesec_uarch::config::CoreConfig;
use teesec_uarch::RunExit;

use crate::campaign::{CampaignResult, CaseResult, PhaseTiming};
use crate::checker::check_case;
use crate::report::CheckReport;
use crate::runner::run_case_budgeted;
use crate::testcase::TestCase;

/// Tuning knobs for one engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads (0 and 1 both mean "one worker").
    pub threads: usize,
    /// Simulated-cycle watchdog: per-case budget overriding any larger
    /// `TestCase::max_cycles`. Budget-blown cases report `halted: false`.
    pub case_cycle_budget: Option<u64>,
    /// Retain full per-case [`CheckReport`]s (memory-heavier).
    pub keep_reports: bool,
    /// Emit a live `[done/total]` progress line to stderr.
    pub progress: bool,
    /// Structured JSONL event stream.
    pub events: Option<EventSink>,
}

/// A thread-safe JSONL sink for [`EngineEvent`]s.
///
/// Cloning shares the underlying writer; each event is serialized to a
/// single line. Event *emission* order is the order workers finish, not
/// corpus order — consumers should key on `seq`.
#[derive(Clone)]
pub struct EventSink {
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventSink")
    }
}

impl EventSink {
    /// A sink writing JSON lines to `writer`.
    pub fn new(writer: impl Write + Send + 'static) -> EventSink {
        EventSink {
            writer: Arc::new(Mutex::new(Box::new(writer))),
        }
    }

    /// A sink appending to the file at `path` (created/truncated).
    pub fn file(path: &str) -> std::io::Result<EventSink> {
        Ok(EventSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }

    /// Serializes `event` as one line. I/O errors are reported to stderr
    /// once and otherwise ignored — observability must never kill a run.
    pub fn emit(&self, event: &EngineEvent) {
        let line = serde_json::to_string(event).expect("serialize event");
        let mut w = self.writer.lock().expect("event sink poisoned");
        if let Err(e) = writeln!(w, "{line}") {
            eprintln!("teesec: event sink write failed: {e}");
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.lock().expect("event sink poisoned").flush();
    }
}

/// One line of the engine's JSONL event stream.
///
/// Serialized externally tagged, e.g.
/// `{"CaseFinished":{"seq":3,"case":"...","cycles":41210,...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// The engine accepted a corpus and is starting workers.
    CampaignStarted {
        /// Design under test.
        design: String,
        /// Corpus size.
        case_count: usize,
        /// Worker threads.
        threads: usize,
    },
    /// A worker picked up a case.
    CaseStarted {
        /// Corpus index.
        seq: usize,
        /// Case name.
        case: String,
        /// Worker id (0-based).
        worker: usize,
    },
    /// A case simulated and checked normally.
    CaseFinished {
        /// Corpus index.
        seq: usize,
        /// Case name.
        case: String,
        /// Simulated cycles.
        cycles: u64,
        /// Whether the case halted within its budget.
        halted: bool,
        /// Total findings.
        finding_count: usize,
        /// Findings per microarchitectural structure.
        findings_by_structure: BTreeMap<String, usize>,
        /// Simulation phase cost.
        simulate_us: u128,
        /// Check phase cost.
        check_us: u128,
    },
    /// A case failed to build or panicked and was quarantined.
    CaseQuarantined {
        /// Corpus index.
        seq: usize,
        /// Case name.
        case: String,
        /// Error description.
        error: String,
    },
    /// All cases drained; aggregate metrics follow.
    CampaignFinished {
        /// The run's aggregate metrics.
        metrics: EngineMetrics,
    },
}

/// Aggregate engine observability, attached to
/// [`CampaignResult::engine`](crate::campaign::CampaignResult::engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Worker threads used.
    pub threads: usize,
    /// Cases attempted (equals the corpus size).
    pub cases_total: usize,
    /// Cases quarantined by fault isolation.
    pub cases_quarantined: usize,
    /// Cases stopped by the simulated-cycle watchdog.
    pub cases_budget_exceeded: usize,
    /// Findings across all cases.
    pub findings_total: usize,
    /// Findings per microarchitectural structure, across all cases.
    pub findings_by_structure: BTreeMap<String, usize>,
    /// Cases executed by each worker (work-stealing balance).
    pub cases_per_worker: Vec<usize>,
    /// Wall-clock time of the execute+check stage.
    pub wall_us: u128,
}

/// The outcome of executing one case (shared by serial and engine paths).
pub(crate) struct CaseExecution {
    pub result: CaseResult,
    pub report: Option<CheckReport>,
    pub findings_by_structure: BTreeMap<String, usize>,
    pub budget_exceeded: bool,
    pub simulate_us: u128,
    pub check_us: u128,
}

/// Builds, simulates, and checks `tc`, quarantining build errors and
/// panics into `CaseResult::error` instead of propagating them.
pub(crate) fn execute_case(
    tc: &TestCase,
    cfg: &CoreConfig,
    keep_report: bool,
    budget: Option<u64>,
) -> CaseExecution {
    let quarantined = |error: String| CaseExecution {
        result: CaseResult {
            name: tc.name.clone(),
            path: tc.path,
            cycles: 0,
            halted: false,
            classes: Default::default(),
            finding_count: 0,
            error: Some(error),
        },
        report: None,
        findings_by_structure: BTreeMap::new(),
        budget_exceeded: false,
        simulate_us: 0,
        check_us: 0,
    };

    let t_sim = Instant::now();
    let outcome = match catch_unwind(AssertUnwindSafe(|| run_case_budgeted(tc, cfg, budget))) {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(build)) => return quarantined(format!("build error: {build}")),
        Err(panic) => return quarantined(format!("panic: {}", panic_message(&panic))),
    };
    let simulate_us = t_sim.elapsed().as_micros();

    let t_chk = Instant::now();
    let report = match catch_unwind(AssertUnwindSafe(|| check_case(tc, &outcome, cfg))) {
        Ok(report) => report,
        Err(panic) => return quarantined(format!("checker panic: {}", panic_message(&panic))),
    };
    let check_us = t_chk.elapsed().as_micros();

    let mut findings_by_structure = BTreeMap::new();
    for f in &report.findings {
        *findings_by_structure
            .entry(f.structure.display_name().to_string())
            .or_insert(0) += 1;
    }
    let budget_exceeded =
        outcome.exit == RunExit::CycleLimit && budget.is_some_and(|b| b < tc.max_cycles);
    CaseExecution {
        result: CaseResult {
            name: tc.name.clone(),
            path: tc.path,
            cycles: outcome.cycles,
            halted: outcome.exit == RunExit::Halted,
            classes: report.classes(),
            finding_count: report.findings.len(),
            error: None,
        },
        report: keep_report.then_some(report),
        findings_by_structure,
        budget_exceeded,
        simulate_us,
        check_us,
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// A fault-isolated, work-stealing executor over an explicit corpus.
///
/// Usually reached through
/// [`Campaign::run_engine`](crate::campaign::Campaign::run_engine), which
/// generates the corpus from the campaign's fuzzer; `run_corpus` is public
/// so tests (and embedders) can inject handcrafted — including deliberately
/// broken — cases.
#[derive(Debug)]
pub struct Engine {
    cfg: CoreConfig,
    opts: EngineOptions,
}

impl Engine {
    /// An engine for the design `cfg` with the given options.
    pub fn new(cfg: CoreConfig, opts: EngineOptions) -> Engine {
        Engine { cfg, opts }
    }

    /// Executes every case in `corpus`, in any order, and returns results
    /// in corpus order plus (when `keep_reports`) the per-case reports.
    ///
    /// `timing` carries the plan/construct phase costs measured by the
    /// caller; simulate/check costs are summed across workers (CPU time).
    pub fn run_corpus(
        &self,
        corpus: &[TestCase],
        mut timing: PhaseTiming,
    ) -> (CampaignResult, Vec<CheckReport>) {
        let threads = self.opts.threads.max(1);
        let t0 = Instant::now();
        if let Some(sink) = &self.opts.events {
            sink.emit(&EngineEvent::CampaignStarted {
                design: self.cfg.name.clone(),
                case_count: corpus.len(),
                threads,
            });
        }

        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let quarantined_ctr = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, CaseExecution)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..threads {
                let cursor = &cursor;
                let done = &done;
                let quarantined_ctr = &quarantined_ctr;
                let opts = &self.opts;
                let cfg = &self.cfg;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let seq = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(tc) = corpus.get(seq) else { break };
                        if let Some(sink) = &opts.events {
                            sink.emit(&EngineEvent::CaseStarted {
                                seq,
                                case: tc.name.clone(),
                                worker,
                            });
                        }
                        let exec = execute_case(tc, cfg, opts.keep_reports, opts.case_cycle_budget);
                        if let Some(sink) = &opts.events {
                            sink.emit(&case_event(seq, &exec));
                        }
                        if exec.result.error.is_some() {
                            quarantined_ctr.fetch_add(1, Ordering::Relaxed);
                        }
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if opts.progress {
                            let q = quarantined_ctr.load(Ordering::Relaxed);
                            eprint!(
                                "\r[{finished}/{}] cases done, {q} quarantined",
                                corpus.len()
                            );
                        }
                        out.push((seq, exec));
                    }
                    out
                }));
            }
            for h in handles {
                per_worker.push(h.join().expect("engine worker panicked outside isolation"));
            }
        });
        if self.opts.progress && !corpus.is_empty() {
            eprintln!();
        }

        let mut metrics = EngineMetrics {
            threads,
            cases_total: corpus.len(),
            cases_quarantined: 0,
            cases_budget_exceeded: 0,
            findings_total: 0,
            findings_by_structure: BTreeMap::new(),
            cases_per_worker: per_worker.iter().map(Vec::len).collect(),
            wall_us: t0.elapsed().as_micros(),
        };
        let mut flat: Vec<(usize, CaseExecution)> = per_worker.into_iter().flatten().collect();
        flat.sort_by_key(|(seq, _)| *seq);

        let mut cases = Vec::with_capacity(flat.len());
        let mut classes_found = std::collections::BTreeSet::new();
        let mut reports = Vec::new();
        for (_, exec) in flat {
            metrics.cases_quarantined += usize::from(exec.result.error.is_some());
            metrics.cases_budget_exceeded += usize::from(exec.budget_exceeded);
            metrics.findings_total += exec.result.finding_count;
            for (s, n) in exec.findings_by_structure {
                *metrics.findings_by_structure.entry(s).or_insert(0) += n;
            }
            timing.simulate_us += exec.simulate_us;
            timing.check_us += exec.check_us;
            classes_found.extend(exec.result.classes.iter().copied());
            cases.push(exec.result);
            if let Some(r) = exec.report {
                reports.push(r);
            }
        }

        if let Some(sink) = &self.opts.events {
            sink.emit(&EngineEvent::CampaignFinished {
                metrics: metrics.clone(),
            });
            sink.flush();
        }
        (
            CampaignResult {
                design: self.cfg.name.clone(),
                case_count: cases.len(),
                cases,
                classes_found,
                timing,
                engine: Some(metrics),
            },
            reports,
        )
    }
}

fn case_event(seq: usize, exec: &CaseExecution) -> EngineEvent {
    match &exec.result.error {
        Some(error) => EngineEvent::CaseQuarantined {
            seq,
            case: exec.result.name.clone(),
            error: error.clone(),
        },
        None => EngineEvent::CaseFinished {
            seq,
            case: exec.result.name.clone(),
            cycles: exec.result.cycles,
            halted: exec.result.halted,
            finding_count: exec.result.finding_count,
            findings_by_structure: exec.findings_by_structure.clone(),
            simulate_us: exec.simulate_us,
            check_us: exec.check_us,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::Fuzzer;
    use serde_json::Value;

    fn small_corpus(cfg: &CoreConfig, n: usize) -> Vec<TestCase> {
        Fuzzer::with_target(n).generate(cfg)
    }

    #[test]
    fn engine_events_are_parseable_jsonl() {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let cfg = CoreConfig::boom();
        let corpus = small_corpus(&cfg, 6);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let opts = EngineOptions {
            threads: 2,
            events: Some(EventSink::new(SharedBuf(buf.clone()))),
            ..EngineOptions::default()
        };
        let (result, _) = Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());
        assert_eq!(result.case_count, 6);

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // started + 6x(case started + case outcome) + finished
        assert_eq!(lines.len(), 14, "events:\n{text}");
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.as_object().is_some());
        }
        assert!(lines[0].contains("CampaignStarted"));
        assert!(lines[13].contains("CampaignFinished"));
    }

    #[test]
    fn watchdog_marks_budget_blown_cases_unhalted() {
        let cfg = CoreConfig::boom();
        let corpus = small_corpus(&cfg, 4);
        let opts = EngineOptions {
            threads: 2,
            case_cycle_budget: Some(50), // far below any real case
            ..EngineOptions::default()
        };
        let (result, _) = Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());
        let metrics = result.engine.as_ref().unwrap();
        assert_eq!(metrics.cases_budget_exceeded, 4);
        assert!(result.cases.iter().all(|c| !c.halted));
        assert!(result.cases.iter().all(|c| c.cycles <= 50));
    }

    #[test]
    fn work_stealing_uses_every_worker_on_a_big_corpus() {
        let cfg = CoreConfig::boom();
        let corpus = small_corpus(&cfg, 24);
        let opts = EngineOptions {
            threads: 4,
            ..EngineOptions::default()
        };
        let (result, _) = Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());
        let metrics = result.engine.as_ref().unwrap();
        assert_eq!(metrics.cases_per_worker.len(), 4);
        assert_eq!(metrics.cases_per_worker.iter().sum::<usize>(), 24);
        assert_eq!(metrics.cases_total, 24);
        assert_eq!(metrics.cases_quarantined, 0);
    }
}
