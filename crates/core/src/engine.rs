//! The campaign engine: a fault-isolated, work-stealing executor for
//! simulate-then-check corpora.
//!
//! [`Campaign::run`](crate::campaign::Campaign::run) is the serial reference
//! implementation; the engine produces the *same* [`CampaignResult`] (modulo
//! timing and the attached [`EngineMetrics`]) at any worker count, because
//!
//! * workers pull case indices from one shared atomic cursor (work stealing
//!   over the corpus — no static chunking, so stragglers cannot idle a
//!   worker), and results are re-sorted into corpus order before merging;
//! * every case runs under [`std::panic::catch_unwind`]: a case that fails
//!   to build or panics mid-simulation is *quarantined* — recorded as a
//!   [`CaseResult`] carrying the error text — instead of poisoning the
//!   whole campaign;
//! * an optional simulated-cycle watchdog clamps each case's cycle budget,
//!   so a runaway case exits with `halted: false` rather than hogging its
//!   worker.
//!
//! The engine can also narrate itself: an [`EventSink`] receives one JSON
//! object per line (see [`EngineEvent`]) for live consumption, and the
//! aggregate [`EngineMetrics`] lands in
//! [`CampaignResult::engine`](crate::campaign::CampaignResult::engine).

use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use teesec_obs::{Histogram, Summary};
use teesec_telemetry::{MetricsHub, ProgressModel};
use teesec_trace::{TraceCtx, TraceReport, Tracer};
use teesec_uarch::config::CoreConfig;
use teesec_uarch::introspect::StorageInventory;
use teesec_uarch::{FastPathStats, RunExit, StructureCounters, UarchCounters};

use crate::campaign::{CampaignResult, CaseResult, PhaseTiming};
use crate::checker::{check_case, check_case_coverage};
use crate::coverage::{CaseCoverage, PlanCoverage};
use crate::diff::{diff_case, DiffOptions, DiffVerdict};
use crate::report::CheckReport;
use crate::runner::{run_case_opts, RunOptions, SnapshotCache, SnapshotCacheMetrics};
use crate::stream::StreamingChecker;
use crate::testcase::TestCase;

/// Tuning knobs for one engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads (0 and 1 both mean "one worker").
    pub threads: usize,
    /// Simulated-cycle watchdog: per-case budget overriding any larger
    /// `TestCase::max_cycles`. Budget-blown cases report `halted: false`.
    pub case_cycle_budget: Option<u64>,
    /// Retain full per-case [`CheckReport`]s (memory-heavier).
    pub keep_reports: bool,
    /// Emit a live `[done/total]` progress line to stderr.
    pub progress: bool,
    /// Structured JSONL event stream.
    pub events: Option<EventSink>,
    /// Harvest per-case microarchitectural counters
    /// ([`UarchCounters`]) into [`EngineEvent::CaseCounters`] events and
    /// the aggregate [`ObsMetrics`]. Off by default: harvesting walks
    /// every storage structure at case exit.
    pub counters: bool,
    /// Run the differential co-simulation oracle on every case, emitting
    /// one [`EngineEvent::CaseDiff`] per case and aggregating a
    /// [`DiffMetrics`] into [`EngineMetrics::diff`]. Off by default:
    /// diffing re-simulates each case on both machines.
    pub diff: Option<DiffOptions>,
    /// Check each case *online* with a [`StreamingChecker`] fed from a
    /// trace sink, with trace buffering disabled — same report as the
    /// batch pipeline (proven by the `stream_equivalence` suite), but peak
    /// retained trace events stay O(boot prefix) instead of O(cycles).
    pub streaming: bool,
    /// Record per-case plan coverage (the structure × transition ×
    /// observer matrix) and secret-residency windows, emitting one
    /// [`EngineEvent::CaseCoverage`] per case and merging the aggregate
    /// [`PlanCoverage`] into [`EngineMetrics::plan_coverage`]. Off by
    /// default: recording rides the checker's event scan and the JSONL
    /// stream grows by one event per case.
    pub coverage: bool,
    /// Share one [`SnapshotCache`] across workers so cases with the same
    /// setup configuration fork a copy-on-write boot snapshot instead of
    /// re-assembling and re-simulating the SM boot. Hit/miss/bypass
    /// counters land in [`EngineMetrics::snapshot`].
    pub snapshot_cache: bool,
    /// Force the fast-path simulator (page-keyed decode cache +
    /// dirty-delta storage logging) on or off for every case. `None`
    /// keeps the process default (`TEESEC_FASTPATH`, on unless set to
    /// `0`/`off`/`false`/`no`). Both settings are byte-identical on
    /// reports, coverage, counter digests, and provenance — proven by
    /// the `fastpath_equivalence` suite. Per-case decode-cache and
    /// scan-memo counters aggregate into [`EngineMetrics::fastpath`].
    pub fast_path: Option<bool>,
    /// Span recorder. When enabled ([`Tracer::new`]), the engine emits a
    /// full span tree — `campaign` → per-worker `worker` → `queue_wait` /
    /// `case` → `build` / `simulate` / `scan` / `diff` — plus watchdog
    /// and snapshot-capture instants, analyzes it into
    /// [`EngineMetrics::trace`], and leaves the raw spans retrievable via
    /// [`Tracer::snapshot`] for `--trace-out`. The default (disabled)
    /// tracer makes every instrumentation point a no-op.
    pub tracer: Tracer,
    /// Live-telemetry hub (the `--serve` flag). When set, the engine
    /// mirrors every [`EngineEvent`] into the hub's SSE ring buffer and
    /// periodically publishes a rendered `/metrics` exposition, a
    /// `/status` progress document, and (with coverage on) a live
    /// `/coverage` report. The final publication is built from the same
    /// [`CampaignResult`] the run returns, so the last live scrape and a
    /// `--metrics-out` file written from that result are byte-identical.
    pub telemetry: Option<MetricsHub>,
    /// Crash-durable checkpointing: every
    /// [`CheckpointOptions::every`] finished cases the engine atomically
    /// rewrites the metrics exposition (and optionally the coverage
    /// report) with a `"partial": true` marker in the JSON, so a killed
    /// campaign always leaves parseable mid-flight artifacts behind.
    pub checkpoint: Option<CheckpointOptions>,
}

/// Where and how often the engine checkpoints mid-flight artifacts
/// (see [`EngineOptions::checkpoint`]).
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Prometheus text lands here, JSON at `<path>.json` — the same
    /// layout as `--metrics-out`, which normally shares this path so the
    /// final write simply overwrites the last checkpoint.
    pub path: String,
    /// Checkpoint cadence in finished cases (clamped to ≥ 1).
    pub every: usize,
    /// Optional plan-coverage report checkpoint (requires
    /// [`EngineOptions::coverage`]).
    pub coverage_out: Option<String>,
}

/// A thread-safe JSONL sink for [`EngineEvent`]s.
///
/// Cloning shares the underlying writer; each event is serialized to a
/// single line. Event *emission* order is the order workers finish, not
/// corpus order — consumers should key on `seq`.
///
/// The sink flushes when its last clone drops, so buffered tail events
/// survive even when the caller forgets an explicit [`EventSink::flush`].
#[derive(Clone)]
pub struct EventSink {
    inner: Arc<Mutex<SinkInner>>,
}

struct SinkInner {
    writer: Box<dyn Write + Send>,
    /// One-shot latch: after the first I/O failure the sink goes quiet
    /// instead of spamming stderr once per event.
    failed: bool,
}

impl SinkInner {
    fn fail(&mut self, op: &str, e: &std::io::Error) {
        if !self.failed {
            eprintln!("teesec: event sink {op} failed: {e} (further events dropped)");
            self.failed = true;
        }
    }
}

impl Drop for SinkInner {
    fn drop(&mut self) {
        if !self.failed {
            if let Err(e) = self.writer.flush() {
                self.fail("flush", &e);
            }
        }
    }
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventSink")
    }
}

impl EventSink {
    /// A sink writing JSON lines to `writer`.
    pub fn new(writer: impl Write + Send + 'static) -> EventSink {
        EventSink {
            inner: Arc::new(Mutex::new(SinkInner {
                writer: Box::new(writer),
                failed: false,
            })),
        }
    }

    /// A sink appending to the file at `path` (created/truncated).
    pub fn file(path: &str) -> std::io::Result<EventSink> {
        Ok(EventSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }

    /// Serializes `event` as one line. The first I/O error is reported to
    /// stderr and latches the sink into a drop-everything state —
    /// observability must never kill (or flood) a run.
    pub fn emit(&self, event: &EngineEvent) {
        self.emit_line(&serde_json::to_string(event).expect("serialize event"));
    }

    /// Writes one pre-serialized JSON line — the shared tail of [`emit`]
    /// (`EventSink::emit`) and the dual sink+hub emission path, which
    /// serializes each event exactly once.
    pub(crate) fn emit_line(&self, line: &str) {
        let mut inner = self.inner.lock().expect("event sink poisoned");
        if inner.failed {
            return;
        }
        if let Err(e) = writeln!(inner.writer, "{line}") {
            inner.fail("write", &e);
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().expect("event sink poisoned");
        if inner.failed {
            return;
        }
        if let Err(e) = inner.writer.flush() {
            inner.fail("flush", &e);
        }
    }
}

/// One line of the engine's JSONL event stream.
///
/// Serialized externally tagged, e.g.
/// `{"CaseFinished":{"seq":3,"case":"...","cycles":41210,...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// `CampaignFinished` carries the full `EngineMetrics` (histograms included);
// boxing it is not worth it for a once-per-run event, and the derive shim
// does not serialize through `Box`.
#[allow(clippy::large_enum_variant)]
pub enum EngineEvent {
    /// The engine accepted a corpus and is starting workers.
    CampaignStarted {
        /// Design under test.
        design: String,
        /// Corpus size.
        case_count: usize,
        /// Worker threads.
        threads: usize,
    },
    /// A worker picked up a case.
    CaseStarted {
        /// Corpus index.
        seq: usize,
        /// Case name.
        case: String,
        /// Worker id (0-based).
        worker: usize,
        /// The case's span id on a traced run (`None` untraced) — joins
        /// this event against the `--trace-out` trace.
        span_id: Option<u64>,
        /// The enclosing worker span's id on a traced run.
        parent_id: Option<u64>,
    },
    /// A case simulated and checked normally.
    CaseFinished {
        /// Corpus index.
        seq: usize,
        /// Case name.
        case: String,
        /// Simulated cycles.
        cycles: u64,
        /// Whether the case halted within its budget.
        halted: bool,
        /// Total findings.
        finding_count: usize,
        /// Findings per microarchitectural structure.
        findings_by_structure: BTreeMap<String, usize>,
        /// Platform build phase cost.
        build_us: u128,
        /// Simulation phase cost (platform build excluded).
        simulate_us: u128,
        /// Check phase cost.
        check_us: u128,
        /// The case's span id on a traced run (`None` untraced).
        span_id: Option<u64>,
        /// The enclosing worker span's id on a traced run.
        parent_id: Option<u64>,
    },
    /// The microarchitectural counter digest of one finished case.
    /// Emitted right after [`EngineEvent::CaseFinished`] when
    /// [`EngineOptions::counters`] is on.
    CaseCounters {
        /// Corpus index.
        seq: usize,
        /// Case name.
        case: String,
        /// The case's harvested counters.
        counters: UarchCounters,
        /// The case's span id on a traced run (`None` untraced).
        span_id: Option<u64>,
        /// The enclosing worker span's id on a traced run.
        parent_id: Option<u64>,
    },
    /// The differential-oracle verdict of one finished case. Emitted
    /// right after [`EngineEvent::CaseFinished`] (and any
    /// [`EngineEvent::CaseCounters`]) when [`EngineOptions::diff`] is set.
    CaseDiff {
        /// Corpus index.
        seq: usize,
        /// Case name.
        case: String,
        /// The oracle's verdict for this case.
        verdict: DiffVerdict,
        /// The case's span id on a traced run (`None` untraced).
        span_id: Option<u64>,
        /// The enclosing worker span's id on a traced run.
        parent_id: Option<u64>,
    },
    /// The plan-coverage record of one finished case. Emitted right
    /// after [`EngineEvent::CaseFinished`] (and any
    /// [`EngineEvent::CaseCounters`] / [`EngineEvent::CaseDiff`]) when
    /// [`EngineOptions::coverage`] is on.
    CaseCoverage {
        /// Corpus index.
        seq: usize,
        /// Case name.
        case: String,
        /// Cells exercised, cells with findings, residency windows.
        coverage: CaseCoverage,
        /// The case's span id on a traced run (`None` untraced).
        span_id: Option<u64>,
        /// The enclosing worker span's id on a traced run.
        parent_id: Option<u64>,
    },
    /// A case failed to build or panicked and was quarantined.
    CaseQuarantined {
        /// Corpus index.
        seq: usize,
        /// Case name.
        case: String,
        /// Error description.
        error: String,
        /// The case's span id on a traced run (`None` untraced).
        span_id: Option<u64>,
        /// The enclosing worker span's id on a traced run.
        parent_id: Option<u64>,
    },
    /// All cases drained; aggregate metrics follow.
    CampaignFinished {
        /// The run's aggregate metrics.
        metrics: EngineMetrics,
    },
}

/// Aggregate engine observability, attached to
/// [`CampaignResult::engine`](crate::campaign::CampaignResult::engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Worker threads used.
    pub threads: usize,
    /// Cases attempted (equals the corpus size).
    pub cases_total: usize,
    /// Cases quarantined by fault isolation.
    pub cases_quarantined: usize,
    /// Cases stopped by the simulated-cycle watchdog.
    pub cases_budget_exceeded: usize,
    /// Findings across all cases.
    pub findings_total: usize,
    /// Findings per microarchitectural structure, across all cases.
    pub findings_by_structure: BTreeMap<String, usize>,
    /// Cases executed by each worker (work-stealing balance).
    pub cases_per_worker: Vec<usize>,
    /// Wall-clock time of the execute+check stage.
    pub wall_us: u128,
    /// Deep observability — phase histograms and aggregated
    /// microarchitectural counters. `Some` iff
    /// [`EngineOptions::counters`] was on.
    pub obs: Option<ObsMetrics>,
    /// Differential-oracle aggregates. `Some` iff
    /// [`EngineOptions::diff`] was set.
    pub diff: Option<DiffMetrics>,
    /// Snapshot-cache hit/miss/bypass counters. `Some` iff
    /// [`EngineOptions::snapshot_cache`] was on. Absent in event streams
    /// recorded before the field existed (deserializes to `None`).
    pub snapshot: Option<SnapshotCacheMetrics>,
    /// Trace analysis — critical path, per-phase wall-time attribution,
    /// worker utilization, top straggler cases. `Some` iff
    /// [`EngineOptions::tracer`] was enabled. Absent in event streams
    /// recorded before the field existed (deserializes to `None`).
    pub trace: Option<TraceReport>,
    /// Campaign-lifetime plan-coverage matrix and secret-residency
    /// aggregates. `Some` iff [`EngineOptions::coverage`] was on. Absent
    /// in event streams recorded before the field existed (deserializes
    /// to `None`).
    pub plan_coverage: Option<PlanCoverage>,
    /// Fast-path effectiveness counters (decode-cache hit/miss/
    /// invalidation, dirty-scan check/skip) summed over every case that
    /// ran with the fast path on. `None` when every case ran the
    /// reference path. Absent in event streams recorded before the
    /// field existed (deserializes to `None`).
    pub fastpath: Option<FastPathMetrics>,
}

/// Straggler-table depth of the [`TraceReport`] a traced engine run
/// attaches to its metrics.
const TRACE_TOP_STRAGGLERS: usize = 5;

/// Aggregate fast-path effectiveness for one engine run: how well the
/// page-keyed decode cache and the dirty-scan memoization performed
/// across every case that ran with the fast path on. Purely
/// observational — the fast path is byte-identical to the reference
/// path on all checker-visible output, so none of these counters ever
/// appear in [`UarchCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastPathMetrics {
    /// Cases that ran with the fast path enabled.
    pub cases: usize,
    /// Instruction fetches served from a memoized decode slot.
    pub decode_hits: u64,
    /// Fetches decoded fresh and memoized.
    pub decode_misses: u64,
    /// Decode-cache pages invalidated (version bumps, `fence.i`,
    /// capacity evictions, explicit flushes).
    pub decode_invalidations: u64,
    /// Operand/store-queue stall scans actually performed.
    pub scan_checks: u64,
    /// Stall scans elided because no scan input changed since the
    /// entry's last `Wait` verdict.
    pub scan_skips: u64,
}

impl FastPathMetrics {
    /// Folds one case's harvested [`FastPathStats`] into the aggregate.
    pub fn absorb(&mut self, s: &FastPathStats) {
        self.cases += 1;
        self.decode_hits += s.decode.hits;
        self.decode_misses += s.decode.misses;
        self.decode_invalidations += s.decode.invalidations;
        self.scan_checks += s.scan_checks;
        self.scan_skips += s.scan_skips;
    }
}

/// Serializes `event` once and fans the line out to the JSONL sink and
/// the telemetry hub's SSE ring — whichever are present. With neither,
/// the event is never even serialized, so un-narrated runs pay nothing.
fn emit_event(sink: Option<&EventSink>, hub: Option<&MetricsHub>, event: &EngineEvent) {
    if sink.is_none() && hub.is_none() {
        return;
    }
    let line = serde_json::to_string(event).expect("serialize event");
    if let Some(sink) = sink {
        sink.emit_line(&line);
    }
    if let Some(hub) = hub {
        hub.push_event(&line);
    }
}

/// Aggregate differential-oracle outcomes for one engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffMetrics {
    /// Cases the oracle looked at (equals the non-quarantined count).
    pub cases_compared: usize,
    /// Cases where core and ISS agreed at every compared point.
    pub matches: usize,
    /// Cases where the machines diverged.
    pub divergences: usize,
    /// Cases outside the oracle's model (irq-driven, implementation-
    /// defined translation staleness, budget-blown, rebuild failure).
    pub skipped: usize,
    /// Total retirements compared in lockstep across all matching cases.
    pub retires_compared: u64,
}

impl DiffMetrics {
    /// Folds one case's oracle verdict into the aggregate.
    pub fn fold(&mut self, verdict: &DiffVerdict) {
        self.cases_compared += 1;
        match verdict {
            DiffVerdict::Match { retires, .. } => {
                self.matches += 1;
                self.retires_compared += retires;
            }
            DiffVerdict::Diverged(_) => self.divergences += 1,
            DiffVerdict::Skipped { .. } => self.skipped += 1,
        }
    }
}

impl EngineMetrics {
    /// Folds one finished case into the aggregate — the single folding
    /// path shared by the end-of-run merge loop and the live-telemetry
    /// publisher, so a mid-flight `/metrics` scrape aggregates cases
    /// exactly the way the final exposition does.
    pub(crate) fn fold_case(&mut self, exec: &CaseExecution) {
        self.cases_quarantined += usize::from(exec.result.error.is_some());
        self.cases_budget_exceeded += usize::from(exec.budget_exceeded);
        self.findings_total += exec.result.finding_count;
        if let (Some(pc), Some(cc)) = (self.plan_coverage.as_mut(), &exec.coverage) {
            pc.absorb(&exec.result.name, cc);
        }
        for (s, n) in &exec.findings_by_structure {
            *self.findings_by_structure.entry(s.clone()).or_insert(0) += n;
        }
        if let (Some(dm), Some(verdict)) = (self.diff.as_mut(), &exec.diff) {
            dm.fold(verdict);
        }
        if let Some(fp) = &exec.fastpath {
            self.fastpath
                .get_or_insert_with(FastPathMetrics::default)
                .absorb(fp);
        }
        if let (Some(obs), None) = (self.obs.as_mut(), &exec.result.error) {
            obs.record_case(
                exec.result.cycles,
                exec.build_us,
                exec.simulate_us,
                exec.check_us,
            );
            if let Some(counters) = &exec.counters {
                obs.uarch.absorb(counters);
            }
        }
    }
}

/// Deep-observability aggregates for one engine run: log₂-bucketed
/// per-phase wall-time histograms, a per-case simulated-cycle histogram,
/// and campaign-wide [`UarchCounters`] seeded from the design's
/// [`StorageInventory`] (so every inventoried structure appears even when
/// no case touched it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsMetrics {
    /// Per-case platform build wall time, µs (quarantined cases excluded).
    pub build_us: Histogram,
    /// Per-case simulation wall time, µs (quarantined cases excluded).
    pub simulate_us: Histogram,
    /// Per-case check wall time, µs (quarantined cases excluded).
    pub check_us: Histogram,
    /// Per-case simulated cycles (quarantined cases excluded).
    pub case_cycles: Histogram,
    /// Campaign-wide microarchitectural counters (sums of flows, maxima
    /// of occupancies across cases).
    pub uarch: UarchCounters,
}

impl ObsMetrics {
    /// An empty aggregate whose structure list is pre-seeded from the
    /// design's storage inventory with zeroed flow counters.
    pub fn for_design(cfg: &CoreConfig) -> ObsMetrics {
        let inventory = StorageInventory::profile(cfg);
        ObsMetrics {
            build_us: Histogram::new(),
            simulate_us: Histogram::new(),
            check_us: Histogram::new(),
            case_cycles: Histogram::new(),
            uarch: UarchCounters {
                cycles: 0,
                instructions_retired: 0,
                trace_events: 0,
                counter_bumps: 0,
                domain_switches: 0,
                structures: inventory
                    .elements
                    .iter()
                    .map(|e| StructureCounters {
                        structure: e.structure,
                        fills: 0,
                        writes: 0,
                        reads: 0,
                        flushes: 0,
                        occupancy_at_exit: 0,
                        capacity: e.entries as u64,
                    })
                    .collect(),
            },
        }
    }

    /// Folds one finished (non-quarantined) case into the aggregate.
    pub fn record_case(&mut self, exec_cycles: u64, build: u128, simulate: u128, check: u128) {
        self.case_cycles.record(exec_cycles);
        self.build_us.record(build.min(u64::MAX as u128) as u64);
        self.simulate_us
            .record(simulate.min(u64::MAX as u128) as u64);
        self.check_us.record(check.min(u64::MAX as u128) as u64);
    }

    /// `(phase name, p50/p90/p99 summary)` for each histogram — the
    /// digest the CLI and the metrics snapshot print.
    pub fn phase_summaries(&self) -> [(&'static str, Summary); 4] {
        [
            ("build_us", self.build_us.summary()),
            ("simulate_us", self.simulate_us.summary()),
            ("check_us", self.check_us.summary()),
            ("case_cycles", self.case_cycles.summary()),
        ]
    }
}

/// The outcome of executing one case (shared by serial and engine paths).
pub(crate) struct CaseExecution {
    pub result: CaseResult,
    pub report: Option<CheckReport>,
    pub findings_by_structure: BTreeMap<String, usize>,
    pub budget_exceeded: bool,
    pub build_us: u128,
    pub simulate_us: u128,
    pub check_us: u128,
    pub counters: Option<UarchCounters>,
    pub diff: Option<DiffVerdict>,
    pub coverage: Option<CaseCoverage>,
    /// Which build path produced the platform (`None` for quarantined
    /// cases that never finished building).
    pub cache: Option<&'static str>,
    /// Decode-cache and scan-memo counters harvested at case exit;
    /// `Some` iff the case finished with the fast path on.
    pub fastpath: Option<FastPathStats>,
}

/// Per-case execution knobs for [`execute_case`] (the engine-independent
/// subset of [`EngineOptions`], plus the shared snapshot cache).
#[derive(Default, Clone, Copy)]
pub(crate) struct ExecOptions<'c> {
    pub keep_report: bool,
    pub budget: Option<u64>,
    pub counters: bool,
    pub streaming: bool,
    /// Record per-case plan coverage and residency windows.
    pub coverage: bool,
    pub snapshot_cache: Option<&'c SnapshotCache>,
    /// Force the fast-path simulator on/off (`None`: process default).
    pub fast_path: Option<bool>,
    /// Span recorder for the case's phase spans (`None` untraced).
    pub tracer: Option<&'c Tracer>,
    /// Worker index spans are attributed to.
    pub worker: usize,
    /// The enclosing `case` span's id (0 untraced).
    pub case_span: u64,
}

/// Builds, simulates, and checks `tc`, quarantining build errors and
/// panics into `CaseResult::error` instead of propagating them. When
/// `opts.counters` is set, the finished core's microarchitectural counter
/// digest is harvested into [`CaseExecution::counters`]. With
/// `opts.streaming`, checking happens online in a trace sink and the
/// check phase shrinks to the finalize step.
pub(crate) fn execute_case(
    tc: &TestCase,
    cfg: &CoreConfig,
    opts: ExecOptions<'_>,
) -> CaseExecution {
    let quarantined = |error: String| CaseExecution {
        result: CaseResult {
            name: tc.name.clone(),
            path: tc.path,
            cycles: 0,
            halted: false,
            classes: Default::default(),
            finding_count: 0,
            error: Some(error),
        },
        report: None,
        findings_by_structure: BTreeMap::new(),
        budget_exceeded: false,
        build_us: 0,
        simulate_us: 0,
        check_us: 0,
        counters: None,
        diff: None,
        coverage: None,
        cache: None,
        fastpath: None,
    };
    let tctx = TraceCtx {
        tracer: opts.tracer,
        worker: opts.worker,
        parent: opts.case_span,
    };

    let t_sim = Instant::now();
    let mut outcome = match catch_unwind(AssertUnwindSafe(|| {
        run_case_opts(
            tc,
            cfg,
            RunOptions {
                budget: opts.budget,
                snapshot_cache: opts.snapshot_cache,
                sink: opts.streaming.then(|| {
                    Box::new(if opts.coverage {
                        StreamingChecker::with_coverage(tc, cfg)
                    } else {
                        StreamingChecker::new(tc, cfg)
                    }) as _
                }),
                buffer_trace: !opts.streaming,
                fast_path: opts.fast_path,
                trace: tctx,
            },
        )
    })) {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(build)) => return quarantined(format!("build error: {build}")),
        Err(panic) => return quarantined(format!("panic: {}", panic_message(&panic))),
    };
    let build_us = outcome.build_us;
    let simulate_us = t_sim.elapsed().as_micros().saturating_sub(build_us);

    let t_chk = Instant::now();
    let mut scan_span = tctx.span("scan");
    scan_span.arg("streaming", u64::from(opts.streaming));
    let streamed: Option<Box<StreamingChecker>> = outcome
        .platform
        .core
        .trace
        .take_sink()
        .and_then(|s| s.into_any().downcast::<StreamingChecker>().ok());
    let (report, coverage) = match catch_unwind(AssertUnwindSafe(|| match streamed {
        Some(checker) => checker.finish_coverage(tc, &outcome),
        None if opts.coverage => {
            let (report, cc) = check_case_coverage(tc, &outcome, cfg);
            (report, Some(cc))
        }
        None => (check_case(tc, &outcome, cfg), None),
    })) {
        Ok(out) => out,
        Err(panic) => return quarantined(format!("checker panic: {}", panic_message(&panic))),
    };
    scan_span.arg("findings", report.findings.len());
    drop(scan_span);
    let check_us = t_chk.elapsed().as_micros();
    let counters = opts.counters.then(|| outcome.platform.core.counters());
    let fastpath = outcome
        .platform
        .core
        .fast_path()
        .then(|| outcome.platform.core.fast_path_stats());

    let mut findings_by_structure = BTreeMap::new();
    for f in &report.findings {
        *findings_by_structure
            .entry(f.structure.display_name().to_string())
            .or_insert(0) += 1;
    }
    let budget_exceeded =
        outcome.exit == RunExit::CycleLimit && opts.budget.is_some_and(|b| b < tc.max_cycles);
    CaseExecution {
        result: CaseResult {
            name: tc.name.clone(),
            path: tc.path,
            cycles: outcome.cycles,
            halted: outcome.exit == RunExit::Halted,
            classes: report.classes(),
            finding_count: report.findings.len(),
            error: None,
        },
        report: opts.keep_report.then_some(report),
        findings_by_structure,
        budget_exceeded,
        build_us,
        simulate_us,
        check_us,
        counters,
        diff: None,
        coverage,
        cache: Some(outcome.build.label()),
        fastpath,
    }
}

/// Runs the differential oracle on one case under the same fault isolation
/// as the case itself: a panicking or unbuildable diff becomes a
/// [`DiffVerdict::Skipped`], never a dead worker.
fn execute_diff(tc: &TestCase, cfg: &CoreConfig, opts: &DiffOptions) -> DiffVerdict {
    match catch_unwind(AssertUnwindSafe(|| diff_case(tc, cfg, opts))) {
        Ok(Ok(verdict)) => verdict,
        Ok(Err(build)) => DiffVerdict::Skipped {
            reason: format!("rebuild for diff failed: {build}"),
        },
        Err(panic) => DiffVerdict::Skipped {
            reason: format!("diff panic: {}", panic_message(&panic)),
        },
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Finished cases between two live-telemetry publications. Publishing
/// renders a full Prometheus exposition plus the status and coverage
/// documents, so it is amortized over a small batch of cases rather
/// than done per case.
const LIVE_PUBLISH_EVERY: usize = 8;

/// Minimum wall-clock gap between two live publications. Fast corpora
/// finish hundreds of cases per second; without this gate the case-count
/// cadence alone would spend more worker time rendering expositions than
/// any scraper could consume (a 1 Hz Prometheus scrape sees at most one
/// publication per second anyway).
const LIVE_PUBLISH_MIN_INTERVAL: std::time::Duration = std::time::Duration::from_millis(200);

/// The running mid-flight aggregate behind the live publisher and the
/// crash-durability checkpointer: every finished case is folded in by
/// its worker (via [`EngineMetrics::fold_case`], the same path the
/// end-of-run merge uses), and a publishing worker clones the whole
/// state out of the lock so rendering never blocks its peers.
#[derive(Clone)]
struct LiveState {
    metrics: EngineMetrics,
    cases: Vec<CaseResult>,
    classes: std::collections::BTreeSet<crate::report::LeakClass>,
    finished: usize,
    last_publish: usize,
    last_publish_at: Instant,
    last_checkpoint: usize,
}

/// Builds the interim [`CampaignResult`] a mid-flight publication or
/// checkpoint describes: the cases folded so far, with wall time,
/// snapshot-cache counters, and trace analysis sampled live.
fn live_result(
    cfg: &CoreConfig,
    opts: &EngineOptions,
    st: &LiveState,
    wall_us: u128,
    cache: Option<&SnapshotCache>,
) -> CampaignResult {
    let mut metrics = st.metrics.clone();
    metrics.wall_us = wall_us;
    metrics.snapshot = cache.map(SnapshotCache::metrics);
    metrics.trace = opts
        .tracer
        .enabled()
        .then(|| opts.tracer.snapshot().analyze(TRACE_TOP_STRAGGLERS));
    CampaignResult {
        design: cfg.name.clone(),
        case_count: st.finished,
        cases: st.cases.clone(),
        classes_found: st.classes.clone(),
        timing: PhaseTiming::default(),
        engine: Some(metrics),
    }
}

/// Renders the `/status` progress document: campaign identity and
/// counts, the shared [`ProgressModel`]'s progress/ETA, per-phase
/// percentile digests, worker busy ratios, and the cache/fast-path
/// effectiveness counters. Optional aggregates render as `null` (or an
/// empty array) when the producing option is off.
fn render_status(
    result: &CampaignResult,
    model: &ProgressModel,
    complete: bool,
    events_dropped: u64,
) -> String {
    use serde_json::Value;
    let engine = result.engine.as_ref();
    let uint = |v: u64| Value::UInt(u128::from(v));
    let phases = engine.and_then(|e| e.obs.as_ref()).map_or_else(
        || Value::Array(Vec::new()),
        |obs| {
            Value::Array(
                obs.phase_summaries()
                    .iter()
                    .map(|(name, s)| {
                        Value::Object(vec![
                            ("phase".to_string(), Value::String((*name).to_string())),
                            ("count".to_string(), uint(s.count)),
                            ("p50".to_string(), uint(s.p50)),
                            ("p90".to_string(), uint(s.p90)),
                            ("p99".to_string(), uint(s.p99)),
                        ])
                    })
                    .collect(),
            )
        },
    );
    let workers = engine.and_then(|e| e.trace.as_ref()).map_or_else(
        || Value::Array(Vec::new()),
        |trace| {
            Value::Array(
                trace
                    .workers
                    .iter()
                    .map(|w| {
                        Value::Object(vec![
                            ("worker".to_string(), Value::UInt(w.worker as u128)),
                            ("busy_ppm".to_string(), uint(w.busy_ratio_ppm)),
                        ])
                    })
                    .collect(),
            )
        },
    );
    let snapshot_cache = engine
        .and_then(|e| e.snapshot.as_ref())
        .map_or(Value::Null, |s| {
            Value::Object(vec![
                ("hits".to_string(), uint(s.hits)),
                ("misses".to_string(), uint(s.misses)),
                ("bypasses".to_string(), uint(s.bypasses)),
                ("capture_us".to_string(), uint(s.capture_us)),
            ])
        });
    let fastpath = engine
        .and_then(|e| e.fastpath.as_ref())
        .map_or(Value::Null, |fp| {
            Value::Object(vec![
                ("cases".to_string(), Value::UInt(fp.cases as u128)),
                ("decode_hits".to_string(), uint(fp.decode_hits)),
                ("decode_misses".to_string(), uint(fp.decode_misses)),
                (
                    "decode_invalidations".to_string(),
                    uint(fp.decode_invalidations),
                ),
                ("scan_checks".to_string(), uint(fp.scan_checks)),
                ("scan_skips".to_string(), uint(fp.scan_skips)),
            ])
        });
    let coverage_ratio = engine
        .and_then(|e| e.plan_coverage.as_ref())
        .map_or(Value::Null, |pc| uint(pc.coverage_ratio_ppm()));
    let status = Value::Object(vec![
        ("design".to_string(), Value::String(result.design.clone())),
        ("complete".to_string(), Value::Bool(complete)),
        ("cases_done".to_string(), Value::UInt(model.done as u128)),
        ("cases_total".to_string(), Value::UInt(model.total as u128)),
        (
            "quarantined".to_string(),
            Value::UInt(model.quarantined as u128),
        ),
        (
            "budget_exceeded".to_string(),
            Value::UInt(engine.map_or(0, |e| e.cases_budget_exceeded) as u128),
        ),
        (
            "findings_total".to_string(),
            Value::UInt(engine.map_or(0, |e| e.findings_total) as u128),
        ),
        ("progress_ppm".to_string(), uint(model.progress_ppm())),
        ("elapsed_us".to_string(), uint(model.elapsed_us)),
        (
            "eta_us".to_string(),
            model.eta_us().map_or(Value::Null, uint),
        ),
        ("phases".to_string(), phases),
        ("workers".to_string(), workers),
        ("snapshot_cache".to_string(), snapshot_cache),
        ("fastpath".to_string(), fastpath),
        ("coverage_ratio_ppm".to_string(), coverage_ratio),
        ("events_dropped_total".to_string(), uint(events_dropped)),
    ]);
    serde_json::to_string_pretty(&status).expect("serialize status document")
}

/// Publishes the full live-artifact set for one interim (or final)
/// result: the stamped `/metrics` exposition, the `/status` document,
/// and — with plan coverage on — the `/coverage` report.
fn publish_live(hub: &MetricsHub, result: &CampaignResult, model: &ProgressModel, complete: bool) {
    let dropped = hub.events_dropped_total();
    let snap = crate::metrics::live_campaign_snapshot(result, model.progress_ppm(), dropped);
    hub.publish_metrics(snap.render_prometheus());
    hub.publish_status(render_status(result, model, complete, dropped));
    if let Some(pc) = result
        .engine
        .as_ref()
        .and_then(|e| e.plan_coverage.as_ref())
    {
        hub.publish_coverage(
            serde_json::to_string_pretty(&pc.report_json()).expect("serialize coverage report"),
        );
    }
    hub.set_progress_ppm(model.progress_ppm());
}

/// Atomically checkpoints the mid-flight metrics exposition (and the
/// coverage report, when requested) with the `"partial": true` JSON
/// marker. Checkpoint I/O failures are reported once to stderr and
/// never take down the run — same contract as the event sink.
fn write_checkpoint(
    ckpt: &CheckpointOptions,
    result: &CampaignResult,
    progress_ppm: u64,
    events_dropped: u64,
) {
    let snap = crate::metrics::live_campaign_snapshot(result, progress_ppm, events_dropped);
    if let Err(e) = crate::metrics::write_checkpoint_files(&snap, &ckpt.path) {
        eprintln!("teesec: metrics checkpoint failed: {e}");
    }
    if let (Some(path), Some(pc)) = (
        &ckpt.coverage_out,
        result
            .engine
            .as_ref()
            .and_then(|e| e.plan_coverage.as_ref()),
    ) {
        let json =
            serde_json::to_string_pretty(&pc.report_json()).expect("serialize coverage report");
        if let Err(e) = crate::metrics::write_partial_json(&json, path) {
            eprintln!("teesec: coverage checkpoint failed: {e}");
        }
    }
}

/// Saturating microseconds since `t0` (u128 → u64 for [`ProgressModel`]).
fn elapsed_us(t0: Instant) -> u64 {
    t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// A fault-isolated, work-stealing executor over an explicit corpus.
///
/// Usually reached through
/// [`Campaign::run_engine`](crate::campaign::Campaign::run_engine), which
/// generates the corpus from the campaign's fuzzer; `run_corpus` is public
/// so tests (and embedders) can inject handcrafted — including deliberately
/// broken — cases.
#[derive(Debug)]
pub struct Engine {
    cfg: CoreConfig,
    opts: EngineOptions,
}

impl Engine {
    /// An engine for the design `cfg` with the given options.
    pub fn new(cfg: CoreConfig, opts: EngineOptions) -> Engine {
        Engine { cfg, opts }
    }

    /// Executes every case in `corpus`, in any order, and returns results
    /// in corpus order plus (when `keep_reports`) the per-case reports.
    ///
    /// `timing` carries the plan/construct phase costs measured by the
    /// caller; simulate/check costs are summed across workers (CPU time).
    pub fn run_corpus(
        &self,
        corpus: &[TestCase],
        mut timing: PhaseTiming,
    ) -> (CampaignResult, Vec<CheckReport>) {
        let threads = self.opts.threads.max(1);
        let t0 = Instant::now();
        let mut campaign_span = self.opts.tracer.span(0, "campaign", 0);
        campaign_span.arg("design", self.cfg.name.as_str());
        campaign_span.arg("cases", corpus.len());
        campaign_span.arg("threads", threads);
        let campaign_id = campaign_span.id();
        let hub = self.opts.telemetry.as_ref();
        if let Some(hub) = hub {
            hub.set_up(true);
            if self.opts.tracer.enabled() {
                hub.set_tracer(self.opts.tracer.clone());
            }
        }
        emit_event(
            self.opts.events.as_ref(),
            hub,
            &EngineEvent::CampaignStarted {
                design: self.cfg.name.clone(),
                case_count: corpus.len(),
                threads,
            },
        );

        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let quarantined_ctr = AtomicUsize::new(0);
        let case_us_sum = AtomicU64::new(0);
        let snapshot_cache = self.opts.snapshot_cache.then(SnapshotCache::new);
        let live = (hub.is_some() || self.opts.checkpoint.is_some()).then(|| {
            Mutex::new(LiveState {
                metrics: self.seed_metrics(threads, corpus.len()),
                cases: Vec::new(),
                classes: std::collections::BTreeSet::new(),
                finished: 0,
                last_publish: 0,
                last_publish_at: Instant::now(),
                last_checkpoint: 0,
            })
        });
        // Serve real (empty) artifacts from the first accept onward —
        // a scraper that beats the first publish batch must not see 503.
        if let (Some(hub), Some(live)) = (hub, &live) {
            let st = live.lock().expect("live state poisoned").clone();
            let result = live_result(&self.cfg, &self.opts, &st, 0, snapshot_cache.as_ref());
            let model = ProgressModel {
                done: 0,
                total: corpus.len(),
                quarantined: 0,
                elapsed_us: 0,
                threads,
                mean_case_us: None,
            };
            publish_live(hub, &result, &model, false);
        }
        let mut per_worker: Vec<Vec<(usize, CaseExecution)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..threads {
                let cursor = &cursor;
                let done = &done;
                let quarantined_ctr = &quarantined_ctr;
                let case_us_sum = &case_us_sum;
                let live = &live;
                let opts = &self.opts;
                let cfg = &self.cfg;
                let snapshot_cache = snapshot_cache.as_ref();
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut wspan = opts.tracer.span(worker, "worker", campaign_id);
                    let worker_id = wspan.id();
                    loop {
                        let queue_span = opts.tracer.span(worker, "queue_wait", worker_id);
                        let seq = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(tc) = corpus.get(seq) else { break };
                        drop(queue_span);
                        let mut case_span = opts.tracer.span(worker, "case", worker_id);
                        case_span.arg("case", tc.name.as_str());
                        case_span.arg("seq", seq);
                        case_span.arg("design", cfg.name.as_str());
                        let case_id = case_span.id();
                        let sid = (case_id != 0).then_some(case_id);
                        let pid = (worker_id != 0).then_some(worker_id);
                        if opts.events.is_some() || opts.telemetry.is_some() {
                            emit_event(
                                opts.events.as_ref(),
                                opts.telemetry.as_ref(),
                                &EngineEvent::CaseStarted {
                                    seq,
                                    case: tc.name.clone(),
                                    worker,
                                    span_id: sid,
                                    parent_id: pid,
                                },
                            );
                        }
                        let mut exec = execute_case(
                            tc,
                            cfg,
                            ExecOptions {
                                keep_report: opts.keep_reports,
                                budget: opts.case_cycle_budget,
                                counters: opts.counters,
                                streaming: opts.streaming,
                                coverage: opts.coverage,
                                snapshot_cache,
                                fast_path: opts.fast_path,
                                tracer: opts.tracer.enabled().then_some(&opts.tracer),
                                worker,
                                case_span: case_id,
                            },
                        );
                        if let Some(diff_opts) = &opts.diff {
                            if exec.result.error.is_none() {
                                let mut dspan = opts.tracer.span(worker, "diff", case_id);
                                let verdict = execute_diff(tc, cfg, diff_opts);
                                dspan.arg(
                                    "verdict",
                                    match &verdict {
                                        DiffVerdict::Match { .. } => "match",
                                        DiffVerdict::Diverged(_) => "diverged",
                                        DiffVerdict::Skipped { .. } => "skipped",
                                    },
                                );
                                exec.diff = Some(verdict);
                            }
                        }
                        if exec.budget_exceeded {
                            opts.tracer.mark(worker, "watchdog_fire", case_id);
                        }
                        if exec.result.error.is_some() {
                            case_span.arg("quarantined", 1u64);
                        }
                        if let Some(cache) = exec.cache {
                            case_span.arg("cache", cache);
                        }
                        case_span.arg("cycles", exec.result.cycles);
                        case_span.arg("findings", exec.result.finding_count);
                        if let Some(counters) = &exec.counters {
                            case_span.arg("instructions", counters.instructions_retired);
                            case_span.arg("trace_events", counters.trace_events);
                        }
                        drop(case_span);
                        if opts.events.is_some() || opts.telemetry.is_some() {
                            let sink = opts.events.as_ref();
                            let hub = opts.telemetry.as_ref();
                            emit_event(sink, hub, &case_event(seq, &exec, sid, pid));
                            if let Some(counters) = &exec.counters {
                                emit_event(
                                    sink,
                                    hub,
                                    &EngineEvent::CaseCounters {
                                        seq,
                                        case: exec.result.name.clone(),
                                        counters: counters.clone(),
                                        span_id: sid,
                                        parent_id: pid,
                                    },
                                );
                            }
                            if let Some(verdict) = &exec.diff {
                                emit_event(
                                    sink,
                                    hub,
                                    &EngineEvent::CaseDiff {
                                        seq,
                                        case: exec.result.name.clone(),
                                        verdict: verdict.clone(),
                                        span_id: sid,
                                        parent_id: pid,
                                    },
                                );
                            }
                            if let Some(coverage) = &exec.coverage {
                                emit_event(
                                    sink,
                                    hub,
                                    &EngineEvent::CaseCoverage {
                                        seq,
                                        case: exec.result.name.clone(),
                                        coverage: coverage.clone(),
                                        span_id: sid,
                                        parent_id: pid,
                                    },
                                );
                            }
                        }
                        if exec.result.error.is_some() {
                            quarantined_ctr.fetch_add(1, Ordering::Relaxed);
                        }
                        let case_us = (exec.build_us + exec.simulate_us + exec.check_us)
                            .min(u128::from(u64::MAX)) as u64;
                        case_us_sum.fetch_add(case_us, Ordering::Relaxed);
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(live) = live {
                            // Fold under the lock; the worker that crosses a
                            // cadence threshold clones the state out and does
                            // the (comparatively expensive) rendering and I/O
                            // outside it.
                            let decision = {
                                let mut st = live.lock().expect("live state poisoned");
                                st.metrics.fold_case(&exec);
                                st.classes.extend(exec.result.classes.iter().copied());
                                st.cases.push(exec.result.clone());
                                st.finished += 1;
                                let publish = opts.telemetry.is_some()
                                    && st.finished - st.last_publish >= LIVE_PUBLISH_EVERY
                                    && st.last_publish_at.elapsed() >= LIVE_PUBLISH_MIN_INTERVAL;
                                if publish {
                                    st.last_publish = st.finished;
                                    st.last_publish_at = Instant::now();
                                }
                                let checkpoint = opts.checkpoint.as_ref().is_some_and(|c| {
                                    st.finished - st.last_checkpoint >= c.every.max(1)
                                });
                                if checkpoint {
                                    st.last_checkpoint = st.finished;
                                }
                                (publish || checkpoint).then(|| (st.clone(), publish, checkpoint))
                            };
                            if let Some((st, publish, checkpoint)) = decision {
                                let result = live_result(
                                    cfg,
                                    opts,
                                    &st,
                                    t0.elapsed().as_micros(),
                                    snapshot_cache,
                                );
                                let model = ProgressModel {
                                    done: st.finished,
                                    total: corpus.len(),
                                    quarantined: st.metrics.cases_quarantined,
                                    elapsed_us: elapsed_us(t0),
                                    threads,
                                    mean_case_us: (st.finished > 0).then(|| {
                                        case_us_sum.load(Ordering::Relaxed) / st.finished as u64
                                    }),
                                };
                                if publish {
                                    if let Some(hub) = opts.telemetry.as_ref() {
                                        publish_live(hub, &result, &model, false);
                                    }
                                }
                                if checkpoint {
                                    if let Some(ckpt) = opts.checkpoint.as_ref() {
                                        let dropped = opts
                                            .telemetry
                                            .as_ref()
                                            .map_or(0, MetricsHub::events_dropped_total);
                                        write_checkpoint(
                                            ckpt,
                                            &result,
                                            model.progress_ppm(),
                                            dropped,
                                        );
                                    }
                                }
                            }
                        }
                        if opts.progress {
                            let model = ProgressModel {
                                done: finished,
                                total: corpus.len(),
                                quarantined: quarantined_ctr.load(Ordering::Relaxed),
                                elapsed_us: elapsed_us(t0),
                                threads,
                                mean_case_us: (finished > 0)
                                    .then(|| case_us_sum.load(Ordering::Relaxed) / finished as u64),
                            };
                            // Trailing pad overwrites residue when the
                            // rendered ETA shrinks between repaints.
                            eprint!("\r{}   ", model.render_line());
                        }
                        out.push((seq, exec));
                    }
                    wspan.arg("cases", out.len());
                    out
                }));
            }
            for h in handles {
                per_worker.push(h.join().expect("engine worker panicked outside isolation"));
            }
        });
        if self.opts.progress && !corpus.is_empty() {
            eprintln!();
        }
        drop(campaign_span);

        let mut metrics = self.seed_metrics(threads, corpus.len());
        metrics.cases_per_worker = per_worker.iter().map(Vec::len).collect();
        metrics.wall_us = t0.elapsed().as_micros();
        metrics.snapshot = snapshot_cache.as_ref().map(SnapshotCache::metrics);
        metrics.trace = self
            .opts
            .tracer
            .enabled()
            .then(|| self.opts.tracer.snapshot().analyze(TRACE_TOP_STRAGGLERS));
        let mut flat: Vec<(usize, CaseExecution)> = per_worker.into_iter().flatten().collect();
        flat.sort_by_key(|(seq, _)| *seq);

        let mut cases = Vec::with_capacity(flat.len());
        let mut classes_found = std::collections::BTreeSet::new();
        let mut reports = Vec::new();
        for (_, exec) in flat {
            metrics.fold_case(&exec);
            // Table 2 semantics: "simulate" covers platform build + run.
            timing.simulate_us += exec.build_us + exec.simulate_us;
            timing.check_us += exec.check_us;
            classes_found.extend(exec.result.classes.iter().copied());
            cases.push(exec.result);
            if let Some(r) = exec.report {
                reports.push(r);
            }
        }

        emit_event(
            self.opts.events.as_ref(),
            hub,
            &EngineEvent::CampaignFinished {
                metrics: metrics.clone(),
            },
        );
        if let Some(sink) = &self.opts.events {
            sink.flush();
        }
        let result = CampaignResult {
            design: self.cfg.name.clone(),
            case_count: cases.len(),
            cases,
            classes_found,
            timing,
            engine: Some(metrics),
        };
        // The final publication is built from the returned result itself
        // (after the last ring-buffer push), so the last live `/metrics`
        // scrape is byte-identical to a `--metrics-out` exposition
        // rendered from the same result.
        if let Some(hub) = hub {
            let em = result
                .engine
                .as_ref()
                .expect("engine metrics just attached");
            let model = ProgressModel {
                done: result.case_count,
                total: result.case_count,
                quarantined: em.cases_quarantined,
                elapsed_us: elapsed_us(t0),
                threads,
                mean_case_us: (result.case_count > 0)
                    .then(|| case_us_sum.load(Ordering::Relaxed) / result.case_count as u64),
            };
            publish_live(hub, &result, &model, true);
            hub.set_complete(true);
        }
        (result, reports)
    }

    /// Seeds an [`EngineMetrics`] with the option-dependent aggregates
    /// (deep obs, diff, plan coverage) present-but-zeroed — the shared
    /// starting point of the end-of-run merge loop and the live
    /// publisher's running state, so both aggregate identically.
    fn seed_metrics(&self, threads: usize, cases_total: usize) -> EngineMetrics {
        EngineMetrics {
            threads,
            cases_total,
            cases_quarantined: 0,
            cases_budget_exceeded: 0,
            findings_total: 0,
            findings_by_structure: BTreeMap::new(),
            cases_per_worker: Vec::new(),
            wall_us: 0,
            obs: self
                .opts
                .counters
                .then(|| ObsMetrics::for_design(&self.cfg)),
            diff: self.opts.diff.is_some().then(DiffMetrics::default),
            snapshot: None,
            trace: None,
            plan_coverage: self
                .opts
                .coverage
                .then(|| PlanCoverage::for_design(&self.cfg)),
            fastpath: None,
        }
    }
}

fn case_event(
    seq: usize,
    exec: &CaseExecution,
    span_id: Option<u64>,
    parent_id: Option<u64>,
) -> EngineEvent {
    match &exec.result.error {
        Some(error) => EngineEvent::CaseQuarantined {
            seq,
            case: exec.result.name.clone(),
            error: error.clone(),
            span_id,
            parent_id,
        },
        None => EngineEvent::CaseFinished {
            seq,
            case: exec.result.name.clone(),
            cycles: exec.result.cycles,
            halted: exec.result.halted,
            finding_count: exec.result.finding_count,
            findings_by_structure: exec.findings_by_structure.clone(),
            build_us: exec.build_us,
            simulate_us: exec.simulate_us,
            check_us: exec.check_us,
            span_id,
            parent_id,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::Fuzzer;
    use serde_json::Value;

    fn small_corpus(cfg: &CoreConfig, n: usize) -> Vec<TestCase> {
        Fuzzer::with_target(n).generate(cfg)
    }

    #[test]
    fn engine_events_are_parseable_jsonl() {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let cfg = CoreConfig::boom();
        let corpus = small_corpus(&cfg, 6);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let opts = EngineOptions {
            threads: 2,
            events: Some(EventSink::new(SharedBuf(buf.clone()))),
            ..EngineOptions::default()
        };
        let (result, _) = Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());
        assert_eq!(result.case_count, 6);

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // started + 6x(case started + case outcome) + finished
        assert_eq!(lines.len(), 14, "events:\n{text}");
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.as_object().is_some());
        }
        assert!(lines[0].contains("CampaignStarted"));
        assert!(lines[13].contains("CampaignFinished"));
    }

    #[test]
    fn counters_flag_adds_case_counters_events_and_obs_metrics() {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let cfg = CoreConfig::boom();
        let corpus = small_corpus(&cfg, 4);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let opts = EngineOptions {
            threads: 2,
            counters: true,
            events: Some(EventSink::new(SharedBuf(buf.clone()))),
            ..EngineOptions::default()
        };
        let (result, _) =
            Engine::new(cfg.clone(), opts).run_corpus(&corpus, PhaseTiming::default());

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        // started + 4x(started + finished + counters) + campaign finished
        assert_eq!(text.lines().count(), 14, "events:\n{text}");
        let counter_lines = text.lines().filter(|l| l.contains("CaseCounters")).count();
        assert_eq!(counter_lines, 4);

        let obs = result.engine.as_ref().unwrap().obs.as_ref().expect("obs");
        assert_eq!(obs.case_cycles.count(), 4);
        assert_eq!(obs.simulate_us.count(), 4);
        assert!(obs.uarch.cycles > 0, "aggregated cycles");
        assert!(obs.uarch.instructions_retired > 0);
        // Every inventoried structure is present even if untouched.
        let inventory = StorageInventory::profile(&cfg);
        for e in &inventory.elements {
            assert!(
                obs.uarch.structure(e.structure).is_some(),
                "missing {:?}",
                e.structure
            );
        }
    }

    #[test]
    fn diff_flag_adds_case_diff_events_and_diff_metrics() {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let cfg = CoreConfig::boom();
        let corpus = small_corpus(&cfg, 4);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let opts = EngineOptions {
            threads: 2,
            diff: Some(DiffOptions::default()),
            events: Some(EventSink::new(SharedBuf(buf.clone()))),
            ..EngineOptions::default()
        };
        let (result, _) = Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let diff_lines = text.lines().filter(|l| l.contains("CaseDiff")).count();
        assert_eq!(diff_lines, 4, "one CaseDiff per case:\n{text}");

        let dm = result
            .engine
            .as_ref()
            .unwrap()
            .diff
            .as_ref()
            .expect("diff metrics");
        assert_eq!(dm.cases_compared, 4);
        assert_eq!(
            dm.divergences, 0,
            "default corpus must match the reference model"
        );
        assert_eq!(dm.matches + dm.skipped, 4);
        assert!(dm.matches >= 1, "at least one case compared clean");
        assert!(dm.retires_compared > 0);
    }

    #[test]
    fn diff_off_leaves_the_event_stream_and_metrics_unchanged() {
        let cfg = CoreConfig::boom();
        let corpus = small_corpus(&cfg, 4);
        let opts = EngineOptions {
            threads: 2,
            ..EngineOptions::default()
        };
        let (result, _) = Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());
        assert_eq!(result.engine.as_ref().unwrap().diff, None);
    }

    #[test]
    fn event_sink_flushes_on_drop_and_latches_errors() {
        struct FailAfter {
            shared: Arc<Mutex<(usize, usize)>>, // (writes seen, flushes seen)
            fail_from: usize,
        }
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let mut s = self.shared.lock().unwrap();
                s.0 += 1;
                if s.0 > self.fail_from {
                    return Err(std::io::Error::other("disk full"));
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.shared.lock().unwrap().1 += 1;
                Ok(())
            }
        }

        // Drop flushes a healthy sink.
        let shared = Arc::new(Mutex::new((0, 0)));
        let sink = EventSink::new(FailAfter {
            shared: shared.clone(),
            fail_from: usize::MAX,
        });
        sink.emit(&EngineEvent::CampaignStarted {
            design: "boom".into(),
            case_count: 0,
            threads: 1,
        });
        drop(sink);
        assert_eq!(shared.lock().unwrap().1, 1, "drop must flush");

        // A failing sink latches: writes stop reaching the writer.
        let shared = Arc::new(Mutex::new((0, 0)));
        let sink = EventSink::new(FailAfter {
            shared: shared.clone(),
            fail_from: 1,
        });
        for _ in 0..5 {
            sink.emit(&EngineEvent::CampaignStarted {
                design: "boom".into(),
                case_count: 0,
                threads: 1,
            });
        }
        drop(sink);
        let s = *shared.lock().unwrap();
        assert_eq!(s.0, 2, "one success + one failure, then latched silent");
        assert_eq!(s.1, 0, "failed sink must not flush on drop");
    }

    #[test]
    fn watchdog_marks_budget_blown_cases_unhalted() {
        let cfg = CoreConfig::boom();
        let corpus = small_corpus(&cfg, 4);
        let opts = EngineOptions {
            threads: 2,
            case_cycle_budget: Some(50), // far below any real case
            ..EngineOptions::default()
        };
        let (result, _) = Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());
        let metrics = result.engine.as_ref().unwrap();
        assert_eq!(metrics.cases_budget_exceeded, 4);
        assert!(result.cases.iter().all(|c| !c.halted));
        assert!(result.cases.iter().all(|c| c.cycles <= 50));
    }

    #[test]
    fn work_stealing_uses_every_worker_on_a_big_corpus() {
        let cfg = CoreConfig::boom();
        let corpus = small_corpus(&cfg, 24);
        let opts = EngineOptions {
            threads: 4,
            ..EngineOptions::default()
        };
        let (result, _) = Engine::new(cfg, opts).run_corpus(&corpus, PhaseTiming::default());
        let metrics = result.engine.as_ref().unwrap();
        assert_eq!(metrics.cases_per_worker.len(), 4);
        assert_eq!(metrics.cases_per_worker.iter().sum::<usize>(), 24);
        assert_eq!(metrics.cases_total, 24);
        assert_eq!(metrics.cases_quarantined, 0);
    }
}
