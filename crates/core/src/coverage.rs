//! Security-coverage observability: the campaign-lifetime coverage matrix
//! over the verification plan's enumerated surface, plus cycle-resolved
//! secret-residency windows.
//!
//! TEESec's claim is *systematic* enumeration of microarchitectural
//! structures × enclave transition points — yet a campaign that only
//! reports findings can run a million cases and silently never touch a
//! declared path. This module closes that accountability gap:
//!
//! * [`CoverageTracker`] rides inside the checker's
//!   [`ScanState`](crate::stream::ScanState) (batch *and* streaming, so
//!   coverage output is identical by construction) and records which
//!   (structure, transition point, observer privilege) cells each case
//!   exercised and which leak classes were detected there;
//! * [`CaseCoverage`] is the per-case record — carried on the JSONL event
//!   stream as [`EngineEvent::CaseCoverage`](crate::engine::EngineEvent)
//!   — including the case's secret-residency windows derived from the
//!   provenance tracer's hop data;
//! * [`PlanCoverage`] is the campaign-lifetime aggregate merged across
//!   engine workers into
//!   [`EngineMetrics::plan_coverage`](crate::engine::EngineMetrics):
//!   per-cell exercise counts, per-structure residency histograms, the
//!   coverage ratio, and the explicit gap list rendered by
//!   `teesec coverage-report`.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use teesec_obs::Histogram;
use teesec_uarch::config::CoreConfig;
use teesec_uarch::trace::{Domain, Structure, TraceEvent, TraceEventKind};

use crate::plan::VerificationPlan;
use crate::report::{CheckReport, Finding, LeakClass};

/// An enclave-lifecycle transition point — the "when" axis of the
/// coverage matrix. Derived online from the trace's `DomainSwitch`
/// markers: every event is attributed to the window opened by the most
/// recent transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TransitionPoint {
    /// Before the first TEE interaction: SM platform boot plus host setup
    /// up to the first SBI call (the boot handoff to the host does not
    /// close this window).
    Boot,
    /// A switch into an enclave domain.
    EnclaveEntry,
    /// A switch out of an enclave domain.
    EnclaveExit,
    /// Host → security monitor (SBI call service window).
    MonitorCall,
    /// Security monitor → host (SBI return window).
    MonitorReturn,
}

impl TransitionPoint {
    /// Every transition point, in matrix-row order.
    pub fn all() -> &'static [TransitionPoint] {
        &[
            TransitionPoint::Boot,
            TransitionPoint::EnclaveEntry,
            TransitionPoint::EnclaveExit,
            TransitionPoint::MonitorCall,
            TransitionPoint::MonitorReturn,
        ]
    }

    /// Stable lowercase label (metric label value / JSON key).
    pub fn label(self) -> &'static str {
        match self {
            TransitionPoint::Boot => "boot",
            TransitionPoint::EnclaveEntry => "enclave_entry",
            TransitionPoint::EnclaveExit => "enclave_exit",
            TransitionPoint::MonitorCall => "monitor_call",
            TransitionPoint::MonitorReturn => "monitor_return",
        }
    }

    /// The transition opened by a `prev → to` domain switch.
    fn from_switch(prev: Domain, to: Domain) -> TransitionPoint {
        match (prev, to) {
            (_, Domain::Enclave(_)) => TransitionPoint::EnclaveEntry,
            (Domain::Enclave(_), _) => TransitionPoint::EnclaveExit,
            (_, Domain::SecurityMonitor) => TransitionPoint::MonitorCall,
            (_, Domain::Untrusted) => TransitionPoint::MonitorReturn,
        }
    }

    /// Observer privileges that can legally hold the CPU during this
    /// window (the feasible matrix columns: the observer is the domain
    /// the switch handed control to).
    pub fn observers(self) -> &'static [ObserverKind] {
        match self {
            TransitionPoint::Boot => &[ObserverKind::Host],
            TransitionPoint::EnclaveEntry => &[ObserverKind::Enclave],
            TransitionPoint::EnclaveExit => &[ObserverKind::Host, ObserverKind::Monitor],
            TransitionPoint::MonitorCall => &[ObserverKind::Monitor],
            TransitionPoint::MonitorReturn => &[ObserverKind::Host],
        }
    }
}

/// The privilege class of the domain executing (and thus able to observe
/// microarchitectural state) — the "who" axis of the coverage matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ObserverKind {
    /// Untrusted host user/supervisor.
    Host,
    /// The security monitor.
    Monitor,
    /// Any enclave domain.
    Enclave,
}

impl ObserverKind {
    /// The privilege class of a concrete domain.
    pub fn of(domain: Domain) -> ObserverKind {
        match domain {
            Domain::Untrusted => ObserverKind::Host,
            Domain::SecurityMonitor => ObserverKind::Monitor,
            Domain::Enclave(_) => ObserverKind::Enclave,
        }
    }

    /// Stable lowercase label (metric label value / JSON key).
    pub fn label(self) -> &'static str {
        match self {
            ObserverKind::Host => "host",
            ObserverKind::Monitor => "monitor",
            ObserverKind::Enclave => "enclave",
        }
    }
}

/// One cell of the coverage matrix: a structure touched during a
/// transition window by an observer privilege.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellKey {
    /// The storage element.
    pub structure: Structure,
    /// The enclave-lifecycle window.
    pub transition: TransitionPoint,
    /// Who held the CPU.
    pub observer: ObserverKind,
}

/// One exercised cell where the checker also detected findings, with the
/// leak classes seen there.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectedCell {
    /// The matrix cell.
    pub cell: CellKey,
    /// Leak classes detected at this cell (classified findings only).
    pub classes: Vec<LeakClass>,
}

/// One cycle-resolved secret-exposure window: a secret was resident and
/// observable in `structure` from `start_cycle` (the secret write that
/// materialized it, per the provenance chain's origin/retention hops) to
/// `end_cycle` (the observation, or the end of the run for residues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidencyWindow {
    /// Where the secret was resident.
    pub structure: Structure,
    /// Address identifying the secret.
    pub secret_addr: u64,
    /// Cycle the secret entered the machine (0 = architectural seed).
    pub start_cycle: u64,
    /// Last cycle the residue was observable.
    pub end_cycle: u64,
}

impl ResidencyWindow {
    /// Window length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }
}

/// The per-case coverage record (serialized onto the JSONL event stream
/// as a `CaseCoverage` engine event).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CaseCoverage {
    /// Matrix cells this case exercised, sorted.
    pub exercised: Vec<CellKey>,
    /// Cells where findings were detected, sorted by cell.
    pub detected: Vec<DetectedCell>,
    /// Secret-residency windows, one per (structure, secret), sorted.
    pub residency: Vec<ResidencyWindow>,
}

/// The online per-case coverage recorder, carried by the checker's
/// [`ScanState`](crate::stream::ScanState) so batch and streaming runs
/// record identical coverage by construction.
#[derive(Debug, Clone)]
pub(crate) struct CoverageTracker {
    domain: Domain,
    transition: TransitionPoint,
    exercised: BTreeSet<CellKey>,
    detected: BTreeMap<CellKey, BTreeSet<LeakClass>>,
}

impl CoverageTracker {
    pub(crate) fn new() -> CoverageTracker {
        CoverageTracker {
            domain: Domain::Untrusted,
            transition: TransitionPoint::Boot,
            exercised: BTreeSet::new(),
            detected: BTreeMap::new(),
        }
    }

    /// The cell an access to `structure` by `domain` lands in right now.
    pub(crate) fn cell(&self, structure: Structure, domain: Domain) -> CellKey {
        CellKey {
            structure,
            transition: self.transition,
            observer: ObserverKind::of(domain),
        }
    }

    /// Feeds one trace event: domain switches advance the transition
    /// window, everything else marks its cell exercised. The switch
    /// marker itself (recorded against [`Structure::Hpc`] as a
    /// placeholder) must not count as exercising that structure.
    pub(crate) fn on_event(&mut self, e: &TraceEvent) {
        if let TraceEventKind::DomainSwitch { to } = e.kind {
            // The security monitor boots the platform and hands off to
            // the host before any TEE interaction has happened: that
            // first monitor→host handoff does not close the boot window
            // (host setup before the first SBI call is still "boot").
            let boot_handoff = self.transition == TransitionPoint::Boot && to == Domain::Untrusted;
            if !boot_handoff {
                self.transition = TransitionPoint::from_switch(self.domain, to);
            }
            self.domain = to;
            return;
        }
        let cell = self.cell(e.structure, e.domain);
        self.exercised.insert(cell);
    }

    /// Records a detected finding at the current transition window.
    pub(crate) fn record_detection(&mut self, f: &Finding) {
        let cell = self.cell(f.structure, f.observer);
        self.exercised.insert(cell);
        let classes = self.detected.entry(cell).or_default();
        if let Some(c) = f.class {
            classes.insert(c);
        }
    }

    /// Adds a late-resolved leak class to a cell captured at push time
    /// (the D4/D8 register-file classification is only known at
    /// finalize).
    pub(crate) fn resolve_class(&mut self, cell: CellKey, class: LeakClass) {
        self.detected.entry(cell).or_default().insert(class);
    }

    /// Finalizes into the per-case record, attaching the residency
    /// windows derived from the report's provenance chains.
    pub(crate) fn finish(self, report: &CheckReport) -> CaseCoverage {
        let mut detected: Vec<DetectedCell> = self
            .detected
            .into_iter()
            .map(|(cell, classes)| DetectedCell {
                cell,
                classes: classes.into_iter().collect(),
            })
            .collect();
        detected.sort_by_key(|d| d.cell);
        CaseCoverage {
            exercised: self.exercised.into_iter().collect(),
            detected,
            residency: case_residency(report),
        }
    }
}

/// Derives the case's secret-residency windows from its provenance
/// chains: for every data-leak finding, the chain's origin/retention/
/// observation hops bound when the secret was resident in each
/// structure. Windows for the same (structure, secret) merge to their
/// full extent.
pub(crate) fn case_residency(report: &CheckReport) -> Vec<ResidencyWindow> {
    let mut merged: BTreeMap<(Structure, u64), (u64, u64)> = BTreeMap::new();
    for chain in &report.provenance {
        let finding = match report.findings.get(chain.finding_index) {
            Some(f) => f,
            None => continue,
        };
        let secret = match finding.secret {
            Some(rec) => rec,
            None => continue, // metadata leaks have no secret residency
        };
        for (structure, start, end) in chain.exposure_windows() {
            let entry = merged
                .entry((structure, secret.addr))
                .or_insert((start, end));
            entry.0 = entry.0.min(start);
            entry.1 = entry.1.max(end);
        }
    }
    merged
        .into_iter()
        .map(
            |((structure, secret_addr), (start_cycle, end_cycle))| ResidencyWindow {
                structure,
                secret_addr,
                start_cycle,
                end_cycle,
            },
        )
        .collect()
}

/// One aggregated cell of the campaign-lifetime coverage matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageCell {
    /// The matrix cell.
    pub cell: CellKey,
    /// Whether the verification plan declares this cell (a structure the
    /// design inventories × a feasible transition/observer pair).
    pub declared: bool,
    /// Number of cases that exercised the cell.
    pub cases_exercised: u64,
    /// Leak classes detected at the cell across the campaign, sorted.
    pub classes: Vec<LeakClass>,
}

/// Campaign-lifetime residency aggregate for one structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructureResidency {
    /// The structure.
    pub structure: Structure,
    /// log₂ histogram of window lengths (cycles).
    pub windows: Histogram,
    /// Longest observed window (cycles).
    pub worst_cycles: u64,
    /// Case that produced the longest window.
    pub worst_case: Option<String>,
}

/// The campaign-lifetime coverage aggregate: every declared (and any
/// undeclared-but-exercised) matrix cell with its exercise count and
/// detected classes, plus per-structure residency histograms. Merged
/// into [`EngineMetrics::plan_coverage`](crate::engine::EngineMetrics)
/// and rendered by `teesec coverage-report`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCoverage {
    /// Design name.
    pub design: String,
    /// The matrix, sorted by cell.
    pub cells: Vec<CoverageCell>,
    /// Per-structure residency aggregates, sorted by structure.
    pub residency: Vec<StructureResidency>,
    /// Number of per-case records absorbed.
    pub cases_recorded: u64,
}

impl PlanCoverage {
    /// Seeds the matrix with every cell the design's verification plan
    /// declares (inventoried structures × feasible transition/observer
    /// pairs), all unexercised.
    pub fn for_design(cfg: &CoreConfig) -> PlanCoverage {
        let plan = VerificationPlan::profile(cfg);
        PlanCoverage::for_plan(&plan)
    }

    /// Seeds the matrix from an already-profiled plan.
    pub fn for_plan(plan: &VerificationPlan) -> PlanCoverage {
        let cells = plan
            .coverage_cells()
            .map(|cell| CoverageCell {
                cell,
                declared: true,
                cases_exercised: 0,
                classes: Vec::new(),
            })
            .collect();
        PlanCoverage {
            design: plan.design.clone(),
            cells,
            residency: Vec::new(),
            cases_recorded: 0,
        }
    }

    fn cell_mut(&mut self, key: CellKey) -> &mut CoverageCell {
        match self.cells.binary_search_by(|c| c.cell.cmp(&key)) {
            Ok(i) => &mut self.cells[i],
            Err(i) => {
                self.cells.insert(
                    i,
                    CoverageCell {
                        cell: key,
                        declared: false,
                        cases_exercised: 0,
                        classes: Vec::new(),
                    },
                );
                &mut self.cells[i]
            }
        }
    }

    fn residency_mut(&mut self, structure: Structure) -> &mut StructureResidency {
        match self
            .residency
            .binary_search_by(|r| r.structure.cmp(&structure))
        {
            Ok(i) => &mut self.residency[i],
            Err(i) => {
                self.residency.insert(
                    i,
                    StructureResidency {
                        structure,
                        windows: Histogram::new(),
                        worst_cycles: 0,
                        worst_case: None,
                    },
                );
                &mut self.residency[i]
            }
        }
    }

    /// Folds one case's coverage record into the aggregate.
    pub fn absorb(&mut self, case: &str, cc: &CaseCoverage) {
        self.cases_recorded += 1;
        for &cell in &cc.exercised {
            self.cell_mut(cell).cases_exercised += 1;
        }
        for d in &cc.detected {
            let agg = self.cell_mut(d.cell);
            for &c in &d.classes {
                if let Err(i) = agg.classes.binary_search(&c) {
                    agg.classes.insert(i, c);
                }
            }
        }
        for w in &cc.residency {
            let cycles = w.cycles();
            let agg = self.residency_mut(w.structure);
            agg.windows.record(cycles);
            if agg.worst_case.is_none() || cycles > agg.worst_cycles {
                agg.worst_cycles = cycles;
                agg.worst_case = Some(case.to_string());
            }
        }
    }

    /// Folds another aggregate into this one — the shard-merge the live
    /// telemetry publisher uses. Merging per-worker aggregates is
    /// equivalent to absorbing every case into one aggregate: exercise
    /// counts and `cases_recorded` add, class sets union, residency
    /// histograms merge, and the worst window keeps whichever case's
    /// window is longest.
    pub fn merge(&mut self, other: &PlanCoverage) {
        self.cases_recorded += other.cases_recorded;
        for oc in &other.cells {
            let cell = self.cell_mut(oc.cell);
            cell.declared |= oc.declared;
            cell.cases_exercised += oc.cases_exercised;
            for &c in &oc.classes {
                if let Err(i) = cell.classes.binary_search(&c) {
                    cell.classes.insert(i, c);
                }
            }
        }
        for or in &other.residency {
            let r = self.residency_mut(or.structure);
            r.windows.merge(&or.windows);
            if r.worst_case.is_none() || or.worst_cycles > r.worst_cycles {
                r.worst_cycles = or.worst_cycles;
                r.worst_case.clone_from(&or.worst_case);
            }
        }
    }

    /// Declared cells in the matrix.
    pub fn declared(&self) -> usize {
        self.cells.iter().filter(|c| c.declared).count()
    }

    /// Declared cells exercised by at least one case.
    pub fn exercised_declared(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.declared && c.cases_exercised > 0)
            .count()
    }

    /// Coverage ratio over the declared matrix, in parts per million
    /// (integer fixed point: 1_000_000 = fully covered).
    pub fn coverage_ratio_ppm(&self) -> u64 {
        let declared = self.declared() as u64;
        if declared == 0 {
            return 0;
        }
        self.exercised_declared() as u64 * 1_000_000 / declared
    }

    /// Declared-but-never-exercised cells — the campaign's gap list.
    pub fn gaps(&self) -> impl Iterator<Item = &CoverageCell> {
        self.cells
            .iter()
            .filter(|c| c.declared && c.cases_exercised == 0)
    }

    /// The structured coverage report: summary ratios, the explicit gap
    /// list, and per-structure residency aggregates. This is the
    /// `teesec coverage-report --json` payload and the golden-fixture
    /// schema — keep it append-only.
    pub fn report_json(&self) -> serde_json::Value {
        serde_json::json!({
            "design": self.design,
            "cases_recorded": self.cases_recorded,
            "declared_paths": self.declared(),
            "exercised_paths": self.exercised_declared(),
            "coverage_ratio_ppm": self.coverage_ratio_ppm(),
            "gaps": self.gaps().map(|c| serde_json::json!({
                "structure": c.cell.structure.display_name(),
                "transition": c.cell.transition.label(),
                "observer": c.cell.observer.label(),
            })).collect::<Vec<_>>(),
            "residency": self.residency.iter().map(|r| serde_json::json!({
                "structure": r.structure.display_name(),
                "windows": r.windows.count(),
                "worst_cycles": r.worst_cycles,
                "worst_case": r.worst_case,
                "buckets": r.windows.nonzero_buckets().collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
            "matrix": self.cells,
        })
    }

    /// Feasible transition/observer column pairs, in render order.
    pub fn columns() -> Vec<(TransitionPoint, ObserverKind)> {
        TransitionPoint::all()
            .iter()
            .flat_map(|&t| t.observers().iter().map(move |&o| (t, o)))
            .collect()
    }

    /// Renders the matrix as a terminal heatmap: one row per structure,
    /// one column per feasible (transition, observer) pair. `·` = gap,
    /// `x` = exercised, `X` = exercised with findings detected, blank =
    /// not declared on this design.
    pub fn render_heatmap(&self) -> String {
        use std::fmt::Write as _;
        let columns = PlanCoverage::columns();
        let structures: Vec<Structure> = {
            let mut s: Vec<Structure> = self.cells.iter().map(|c| c.cell.structure).collect();
            s.sort();
            s.dedup();
            s
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan coverage [{}]: {}/{} declared cells exercised ({}.{:02}%)",
            self.design,
            self.exercised_declared(),
            self.declared(),
            self.coverage_ratio_ppm() / 10_000,
            self.coverage_ratio_ppm() % 10_000 / 100,
        );
        let _ = writeln!(out);
        let width = 18usize;
        let mut header = format!("{:width$}", "");
        for (i, _) in columns.iter().enumerate() {
            header.push_str(&format!("{:>4}", format!("c{i}")));
        }
        let _ = writeln!(out, "{header}");
        for s in structures {
            let mut row = format!("{:width$}", s.display_name());
            for &(t, o) in &columns {
                let key = CellKey {
                    structure: s,
                    transition: t,
                    observer: o,
                };
                let mark = match self.cells.iter().find(|c| c.cell == key) {
                    Some(c) if c.cases_exercised > 0 && !c.classes.is_empty() => 'X',
                    Some(c) if c.cases_exercised > 0 => 'x',
                    Some(c) if c.declared => '·',
                    _ => ' ',
                };
                row.push_str(&format!("{mark:>4}"));
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(out);
        for (i, (t, o)) in columns.iter().enumerate() {
            let _ = writeln!(out, "  c{i}: {} / {}", t.label(), o.label());
        }
        let _ = writeln!(
            out,
            "  · declared, never exercised   x exercised   X findings detected"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teesec_isa::priv_level::PrivLevel;

    fn ev(cycle: u64, domain: Domain, structure: Structure, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            priv_level: PrivLevel::Supervisor,
            domain,
            pc: Some(0x8000_0000),
            structure,
            kind,
        }
    }

    #[test]
    fn boot_handoff_keeps_the_boot_window_open() {
        let mut t = CoverageTracker::new();
        // SM boot ends with an mret to the host: still boot.
        t.on_event(&ev(
            1,
            Domain::SecurityMonitor,
            Structure::Hpc,
            TraceEventKind::DomainSwitch {
                to: Domain::Untrusted,
            },
        ));
        assert_eq!(t.transition, TransitionPoint::Boot);
        t.on_event(&ev(
            2,
            Domain::Untrusted,
            Structure::L1d,
            TraceEventKind::Flush,
        ));
        assert!(t.exercised.contains(&CellKey {
            structure: Structure::L1d,
            transition: TransitionPoint::Boot,
            observer: ObserverKind::Host,
        }));
        // The first SBI call closes it for good.
        t.on_event(&ev(
            3,
            Domain::Untrusted,
            Structure::Hpc,
            TraceEventKind::DomainSwitch {
                to: Domain::SecurityMonitor,
            },
        ));
        assert_eq!(t.transition, TransitionPoint::MonitorCall);
        t.on_event(&ev(
            4,
            Domain::SecurityMonitor,
            Structure::Hpc,
            TraceEventKind::DomainSwitch {
                to: Domain::Untrusted,
            },
        ));
        assert_eq!(t.transition, TransitionPoint::MonitorReturn);
    }

    #[test]
    fn transitions_follow_domain_switches() {
        let mut t = CoverageTracker::new();
        assert_eq!(t.transition, TransitionPoint::Boot);
        t.on_event(&ev(
            1,
            Domain::Untrusted,
            Structure::Hpc,
            TraceEventKind::DomainSwitch {
                to: Domain::SecurityMonitor,
            },
        ));
        assert_eq!(t.transition, TransitionPoint::MonitorCall);
        t.on_event(&ev(
            2,
            Domain::SecurityMonitor,
            Structure::Hpc,
            TraceEventKind::DomainSwitch {
                to: Domain::Enclave(0),
            },
        ));
        assert_eq!(t.transition, TransitionPoint::EnclaveEntry);
        t.on_event(&ev(
            3,
            Domain::Enclave(0),
            Structure::Hpc,
            TraceEventKind::DomainSwitch {
                to: Domain::SecurityMonitor,
            },
        ));
        assert_eq!(t.transition, TransitionPoint::EnclaveExit);
        t.on_event(&ev(
            4,
            Domain::SecurityMonitor,
            Structure::Hpc,
            TraceEventKind::DomainSwitch {
                to: Domain::Untrusted,
            },
        ));
        assert_eq!(t.transition, TransitionPoint::MonitorReturn);
        // The switch markers themselves exercised nothing.
        assert!(t.exercised.is_empty());
    }

    #[test]
    fn events_exercise_cells_in_their_window() {
        let mut t = CoverageTracker::new();
        t.on_event(&ev(
            1,
            Domain::Untrusted,
            Structure::L1d,
            TraceEventKind::Flush,
        ));
        t.on_event(&ev(
            2,
            Domain::Untrusted,
            Structure::Hpc,
            TraceEventKind::DomainSwitch {
                to: Domain::Enclave(0),
            },
        ));
        t.on_event(&ev(
            3,
            Domain::Enclave(0),
            Structure::RegFile,
            TraceEventKind::Write {
                index: 1,
                value: 42,
                tag: None,
            },
        ));
        let cells: Vec<CellKey> = t.exercised.iter().copied().collect();
        assert_eq!(
            cells,
            vec![
                CellKey {
                    structure: Structure::RegFile,
                    transition: TransitionPoint::EnclaveEntry,
                    observer: ObserverKind::Enclave,
                },
                CellKey {
                    structure: Structure::L1d,
                    transition: TransitionPoint::Boot,
                    observer: ObserverKind::Host,
                },
            ]
        );
    }

    #[test]
    fn aggregate_ratio_and_gaps() {
        let mut pc = PlanCoverage::for_design(&CoreConfig::boom());
        let declared = pc.declared();
        assert!(declared > 0);
        assert_eq!(pc.coverage_ratio_ppm(), 0);
        assert_eq!(pc.gaps().count(), declared);

        let cc = CaseCoverage {
            exercised: vec![CellKey {
                structure: Structure::L1d,
                transition: TransitionPoint::Boot,
                observer: ObserverKind::Host,
            }],
            detected: vec![DetectedCell {
                cell: CellKey {
                    structure: Structure::L1d,
                    transition: TransitionPoint::Boot,
                    observer: ObserverKind::Host,
                },
                classes: vec![LeakClass::D1],
            }],
            residency: vec![ResidencyWindow {
                structure: Structure::L1d,
                secret_addr: 0x9000_0000,
                start_cycle: 10,
                end_cycle: 200,
            }],
        };
        pc.absorb("case_a", &cc);
        assert_eq!(pc.cases_recorded, 1);
        assert_eq!(pc.exercised_declared(), 1);
        assert_eq!(pc.gaps().count(), declared - 1);
        assert_eq!(pc.coverage_ratio_ppm(), 1_000_000 / declared as u64);
        let res = &pc.residency[0];
        assert_eq!(res.structure, Structure::L1d);
        assert_eq!(res.worst_cycles, 190);
        assert_eq!(res.worst_case.as_deref(), Some("case_a"));
        assert_eq!(res.windows.count(), 1);

        let heat = pc.render_heatmap();
        assert!(heat.contains("plan coverage [boom]"), "{heat}");
        assert!(heat.contains('X'), "{heat}");
        assert!(heat.contains('·'), "{heat}");
    }

    #[test]
    fn boom_plan_declares_feasible_cells_only() {
        let pc = PlanCoverage::for_design(&CoreConfig::boom());
        // BOOM inventories 13 structures (no committed store buffer) and
        // the matrix has 6 feasible transition/observer columns.
        assert_eq!(pc.declared(), 13 * 6);
        let xs = PlanCoverage::for_design(&CoreConfig::xiangshan());
        assert_eq!(xs.declared(), 14 * 6);
    }

    #[test]
    fn case_coverage_roundtrips_through_json() {
        let cc = CaseCoverage {
            exercised: vec![CellKey {
                structure: Structure::Lfb,
                transition: TransitionPoint::EnclaveExit,
                observer: ObserverKind::Monitor,
            }],
            detected: Vec::new(),
            residency: vec![ResidencyWindow {
                structure: Structure::Lfb,
                secret_addr: 1,
                start_cycle: 0,
                end_cycle: 5,
            }],
        };
        let json = serde_json::to_string(&cc).expect("serialize");
        let back: CaseCoverage = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, cc);
    }

    #[test]
    fn merging_shards_equals_absorbing_every_case() {
        let key_a = CellKey {
            structure: Structure::Lfb,
            transition: TransitionPoint::EnclaveExit,
            observer: ObserverKind::Monitor,
        };
        let key_b = CellKey {
            structure: Structure::L1d,
            transition: TransitionPoint::MonitorReturn,
            observer: ObserverKind::Host,
        };
        let cc_a = CaseCoverage {
            exercised: vec![key_a],
            detected: vec![DetectedCell {
                cell: key_a,
                classes: vec![LeakClass::D2],
            }],
            residency: vec![ResidencyWindow {
                structure: Structure::Lfb,
                secret_addr: 1,
                start_cycle: 0,
                end_cycle: 50,
            }],
        };
        let cc_b = CaseCoverage {
            exercised: vec![key_a, key_b],
            detected: Vec::new(),
            residency: vec![ResidencyWindow {
                structure: Structure::Lfb,
                secret_addr: 2,
                start_cycle: 10,
                end_cycle: 200,
            }],
        };

        let cfg = CoreConfig::boom();
        let mut all = PlanCoverage::for_design(&cfg);
        all.absorb("case_a", &cc_a);
        all.absorb("case_b", &cc_b);

        let mut shard1 = PlanCoverage::for_design(&cfg);
        shard1.absorb("case_a", &cc_a);
        let mut shard2 = PlanCoverage::for_design(&cfg);
        shard2.absorb("case_b", &cc_b);
        shard1.merge(&shard2);
        assert_eq!(shard1, all);
        assert_eq!(
            shard1
                .residency
                .iter()
                .find(|r| r.structure == Structure::Lfb)
                .expect("merged residency")
                .worst_case
                .as_deref(),
            Some("case_b")
        );

        // Merging an untouched seed is the identity.
        let before = shard1.clone();
        shard1.merge(&PlanCoverage::for_design(&cfg));
        assert_eq!(shard1, before);
    }
}
