//! The gadget assembler: composes setup + helper + access gadgets into
//! complete test cases (paper §4.2, "Gadget Assembler").
//!
//! An execution model backs the composition: the enclave lifecycle tracker
//! guarantees only valid TEE API orders are generated, and each access
//! gadget's preconditions (secret resident in L1, evicted to L2, pending in
//! the store buffer, ...) are established by the appropriate helper gadgets.

use serde::{Deserialize, Serialize};

use teesec_isa::inst::MemWidth;
use teesec_tee::enclave::LifecycleTracker;
use teesec_tee::layout;
use teesec_tee::SbiCall;
use teesec_uarch::config::CoreConfig;
use teesec_uarch::trace::Domain;

use crate::gadgets;
use crate::paths::AccessPath;
use crate::testcase::{Actor, Step, TestCase};

/// Whose secret the case targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Victim {
    /// Enclave 0's data.
    Enclave,
    /// The security monitor's data.
    SecurityMonitor,
    /// The untrusted host's data (probed *from* an enclave — the D7
    /// direction).
    Host,
}

/// Who performs the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attacker {
    /// The untrusted host supervisor.
    Host,
    /// A second (attacker-controlled) enclave — the D6 direction.
    Enclave1,
}

/// TEE API sequence wrapped around the access (paper §4.1.4: verify after
/// every privilege-transition pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lifecycle {
    /// create → run → (enclave stops) → access.
    Stop,
    /// create → run → stop → resume → stop → access.
    StopResumeStop,
    /// create → run → (enclave exits) → access.
    Exit,
}

/// Fuzzable parameters of one test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CaseParams {
    /// Target of the probe.
    pub victim: Victim,
    /// The probing side.
    pub attacker: Attacker,
    /// Byte offset of the targeted secret inside the victim data region
    /// (8-aligned).
    pub offset: u64,
    /// Access width of the probe.
    pub width: MemWidth,
    /// Seed the secret with enclave stores (`Fill_Enc_Mem`) instead of a
    /// pre-loaded image.
    pub warm_via_stores: bool,
    /// The surrounding TEE API sequence.
    pub lifecycle: Lifecycle,
    /// Schedule a machine external interrupt (Figure 6 exploration).
    pub irq_at: Option<u64>,
    /// Program `mcounteren = 0` (privileged-counter variant of M1).
    pub restricted_counters: bool,
    /// Append a host branch re-probe after the TEE interaction returns
    /// ([`gadgets::host_reprobe_branch`]) so the monitor-return window
    /// exercises the branch predictors. Off in the systematic corpus; the
    /// coverage gap hunt (EXPERIMENTS.md) turns it on.
    pub reprobe: bool,
}

impl Default for CaseParams {
    fn default() -> Self {
        CaseParams {
            victim: Victim::Enclave,
            attacker: Attacker::Host,
            offset: 0,
            width: MemWidth::D,
            warm_via_stores: false,
            lifecycle: Lifecycle::Stop,
            irq_at: None,
            restricted_counters: false,
            reprobe: false,
        }
    }
}

/// Why a (path, params) combination produces no test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkipReason {
    /// The path does not exist on this design (e.g. prefetcher absent).
    PathAbsent,
    /// The parameter combination is architecturally meaningless for this
    /// path (e.g. SM victim for a store-buffer forward).
    InvalidCombo,
}

/// The number of distinct secrets each case seeds in the victim region.
const SECRET_COUNT: u64 = 4;

/// Builds a complete test case for `path` under `params` on `cfg`.
///
/// ```
/// use teesec::assemble::{assemble_case, CaseParams};
/// use teesec::paths::AccessPath;
/// use teesec_uarch::CoreConfig;
///
/// let tc = assemble_case(
///     AccessPath::LoadL1Hit,
///     CaseParams::default(),
///     &CoreConfig::boom(),
/// )?;
/// assert!(tc.name.starts_with("exp_load_l1_hit"));
/// assert!(!tc.secrets.is_empty());
/// # Ok::<(), teesec::assemble::SkipReason>(())
/// ```
///
/// # Errors
///
/// Returns a [`SkipReason`] instead of a case when the combination is not
/// expressible (the fuzzer treats this as pruning, not failure).
pub fn assemble_case(
    path: AccessPath,
    params: CaseParams,
    cfg: &CoreConfig,
) -> Result<TestCase, SkipReason> {
    if !path.exists_on(cfg) {
        return Err(SkipReason::PathAbsent);
    }
    validate_combo(path, &params)?;
    let mut name = format!(
        "{}__{:?}_{:?}_{:?}_off{:x}_{:?}{}",
        path.id(),
        params.victim,
        params.attacker,
        params.lifecycle,
        params.offset,
        params.width,
        if params.warm_via_stores {
            "_st"
        } else {
            "_pre"
        },
    );
    if params.reprobe {
        name.push_str("_reprobe");
    }
    let mut tc = TestCase::new(name, path);
    tc.irq_at = params.irq_at;
    if params.restricted_counters {
        tc.mcounteren = 0;
    }
    // Every case seeds SM and host sentinels so cross-class leaks surface.
    gadgets::preload_sm_secret(&mut tc, params.offset);
    let host_secret_addr = gadgets::fill_host_secret(&mut tc, params.offset);

    let mut lc = LifecycleTracker::new(layout::MAX_ENCLAVES);
    match path {
        AccessPath::LoadL1Hit
        | AccessPath::LoadL2Hit
        | AccessPath::LoadMemMiss
        | AccessPath::LoadMisaligned
        | AccessPath::StoreL1Hit
        | AccessPath::StoreMiss
        | AccessPath::InstFetch => {
            assemble_demand_case(&mut tc, path, &params, cfg, host_secret_addr, &mut lc)?
        }
        AccessPath::LoadSbForward => assemble_sb_case(&mut tc, &params, &mut lc)?,
        AccessPath::PtwCached | AccessPath::PtwMemory => {
            assemble_ptw_legal_case(&mut tc, path, &params, &mut lc)?
        }
        AccessPath::PtwPoisonedRoot => assemble_ptw_poisoned_case(&mut tc, &params, &mut lc)?,
        AccessPath::PrefetchNextLine => assemble_prefetch_case(&mut tc, &params, &mut lc)?,
        AccessPath::SmScrub => assemble_scrub_case(&mut tc, &params, &mut lc)?,
        AccessPath::HpcRead => assemble_hpc_case(&mut tc, &params, cfg, &mut lc)?,
        AccessPath::BtbLookup => assemble_btb_case(&mut tc, &params, &mut lc)?,
    }
    if params.reprobe {
        // Appended after the path's own probe phase, so the branch runs
        // once the TEE interaction has handed control back to the host.
        // Offset 0x800 clears every path's own host code (the BTB case
        // places its primed branch at 0x400) while keeping the same
        // predictor index bits (0x3F0) as the pre-SBI training branch.
        gadgets::host_reprobe_branch(&mut tc, 0x800 + (params.offset & 0x3F0));
    }
    Ok(tc)
}

fn validate_combo(path: AccessPath, p: &CaseParams) -> Result<(), SkipReason> {
    use AccessPath::*;
    // Host-victim probing only makes sense from an enclave attacker.
    if p.victim == Victim::Host && p.attacker == Attacker::Host {
        return Err(SkipReason::InvalidCombo);
    }
    // An enclave attacker cannot probe a warmed-L1 state it can't arrange,
    // nor SM-internal paths.
    if p.attacker == Attacker::Enclave1
        && matches!(
            path,
            PtwCached | PtwMemory | PtwPoisonedRoot | SmScrub | PrefetchNextLine
        )
    {
        return Err(SkipReason::InvalidCombo);
    }
    // SM data reaches the caches only through the SM's own execution
    // (the attest gadget warms the SM key); there is no SM store-buffer
    // state the attacker can target.
    if p.victim == Victim::SecurityMonitor && matches!(path, LoadSbForward) {
        return Err(SkipReason::InvalidCombo);
    }
    // Host victim only for demand-load style probes.
    if p.victim == Victim::Host
        && !matches!(
            path,
            LoadL1Hit | LoadL2Hit | LoadMemMiss | LoadMisaligned | InstFetch
        )
    {
        return Err(SkipReason::InvalidCombo);
    }
    if matches!(path, SmScrub | BtbLookup | HpcRead | PrefetchNextLine)
        && p.victim != Victim::Enclave
    {
        return Err(SkipReason::InvalidCombo);
    }
    Ok(())
}

/// The address of the probed secret for the given victim.
fn victim_addr(victim: Victim, offset: u64, host_secret_addr: u64) -> u64 {
    match victim {
        Victim::Enclave => layout::enclave_data(0) + offset,
        Victim::SecurityMonitor => layout::SM_KEY + offset,
        Victim::Host => host_secret_addr,
    }
}

/// Runs the victim enclave so its secrets are seeded/warmed, returning with
/// the enclave stopped or exited (per the lifecycle variant).
fn run_victim_enclave(
    tc: &mut TestCase,
    p: &CaseParams,
    lc: &mut LifecycleTracker,
    warm_l1: bool,
) -> Result<(), SkipReason> {
    if p.warm_via_stores {
        gadgets::fill_enc_mem(tc, 0, p.offset, SECRET_COUNT);
    } else {
        gadgets::preload_enc_mem(tc, 0, p.offset, SECRET_COUNT);
        if warm_l1 {
            gadgets::enc_mem_to_l1(tc, 0, p.offset, SECRET_COUNT);
        }
    }
    sbi(tc, lc, SbiCall::CreateEnclave, 0)?;
    sbi(tc, lc, SbiCall::RunEnclave, 0)?;
    match p.lifecycle {
        Lifecycle::Stop => {
            // Implicit terminator stops the enclave.
            lc.apply(0, SbiCall::StopEnclave)
                .map_err(|_| SkipReason::InvalidCombo)?;
        }
        Lifecycle::StopResumeStop => {
            tc.push(
                Actor::Enclave(0),
                Step::Sbi {
                    call: SbiCall::StopEnclave,
                    enclave: 0,
                },
            );
            lc.apply(0, SbiCall::StopEnclave)
                .map_err(|_| SkipReason::InvalidCombo)?;
            sbi(tc, lc, SbiCall::ResumeEnclave, 0)?;
            lc.apply(0, SbiCall::StopEnclave)
                .map_err(|_| SkipReason::InvalidCombo)?;
        }
        Lifecycle::Exit => {
            tc.push(
                Actor::Enclave(0),
                Step::Sbi {
                    call: SbiCall::ExitEnclave,
                    enclave: 0,
                },
            );
            lc.apply(0, SbiCall::ExitEnclave)
                .map_err(|_| SkipReason::InvalidCombo)?;
        }
    }
    Ok(())
}

/// Emits a host-side SBI call and checks it against the lifecycle model.
fn sbi(
    tc: &mut TestCase,
    lc: &mut LifecycleTracker,
    call: SbiCall,
    enclave: u64,
) -> Result<(), SkipReason> {
    lc.apply(enclave as usize, call)
        .map_err(|_| SkipReason::InvalidCombo)?;
    tc.push(Actor::Host, Step::Sbi { call, enclave });
    Ok(())
}

/// The probe steps (load/store/fetch + dependent consumer), emitted for the
/// chosen attacker.
fn emit_probe(tc: &mut TestCase, path: AccessPath, p: &CaseParams, addr: u64) {
    let actor = match p.attacker {
        Attacker::Host => Actor::Host,
        Attacker::Enclave1 => Actor::Enclave(1),
    };
    match path {
        AccessPath::LoadMisaligned => {
            tc.push(
                actor,
                Step::Load {
                    addr: addr + 3,
                    width: p.width,
                },
            );
            tc.push(actor, Step::ConsumeLast);
        }
        AccessPath::StoreL1Hit | AccessPath::StoreMiss => {
            tc.push(
                actor,
                Step::Store {
                    addr,
                    value: 0x4141_4141,
                    width: p.width,
                },
            );
        }
        AccessPath::InstFetch => {
            tc.push(actor, Step::FetchProbe { addr });
        }
        _ => {
            tc.push(
                actor,
                Step::Load {
                    addr,
                    width: p.width,
                },
            );
            tc.push(actor, Step::ConsumeLast);
        }
    }
}

/// If the attacker is enclave 1, wrap its probe in a create/run sequence.
fn dispatch_attacker(
    tc: &mut TestCase,
    p: &CaseParams,
    lc: &mut LifecycleTracker,
) -> Result<(), SkipReason> {
    if p.attacker == Attacker::Enclave1 {
        sbi(tc, lc, SbiCall::CreateEnclave, 1)?;
        sbi(tc, lc, SbiCall::RunEnclave, 1)?;
        lc.apply(1, SbiCall::StopEnclave)
            .map_err(|_| SkipReason::InvalidCombo)?;
    }
    Ok(())
}

fn assemble_demand_case(
    tc: &mut TestCase,
    path: AccessPath,
    p: &CaseParams,
    cfg: &CoreConfig,
    host_secret_addr: u64,
    lc: &mut LifecycleTracker,
) -> Result<(), SkipReason> {
    let addr = victim_addr(p.victim, p.offset, host_secret_addr);
    let warm = matches!(
        path,
        AccessPath::LoadL1Hit | AccessPath::LoadL2Hit | AccessPath::StoreL1Hit
    );
    match p.victim {
        Victim::Enclave => {
            run_victim_enclave(tc, p, lc, warm)?;
        }
        Victim::SecurityMonitor => {
            if warm {
                // Attestation makes the SM read its private key, pulling
                // SM-confidential data into the L1D (the D5 hit path).
                sbi(tc, lc, SbiCall::CreateEnclave, 0)?;
                sbi(tc, lc, SbiCall::AttestEnclave, 0)?;
            }
        }
        Victim::Host => {
            // No enclave required; secrets already seeded.
        }
    }
    if path == AccessPath::LoadL2Hit {
        // Evict the secret's set from the L1 while it stays in L2.
        gadgets::evict_l1_set(tc, addr, cfg.l1d_sets, cfg.l1d_ways, cfg.line_size);
    }
    // Dispatch the attacker context, then probe.
    emit_probe_in_context(tc, path, p, lc, addr)
}

fn emit_probe_in_context(
    tc: &mut TestCase,
    path: AccessPath,
    p: &CaseParams,
    lc: &mut LifecycleTracker,
    addr: u64,
) -> Result<(), SkipReason> {
    if p.attacker == Attacker::Enclave1 {
        // Probe runs inside enclave 1.
        emit_probe(tc, path, p, addr);
        dispatch_attacker(tc, p, lc)?;
    } else {
        emit_probe(tc, path, p, addr);
    }
    Ok(())
}

fn assemble_sb_case(
    tc: &mut TestCase,
    p: &CaseParams,
    lc: &mut LifecycleTracker,
) -> Result<(), SkipReason> {
    // The enclave's final action is a burst of stores; they are still
    // draining from the store buffer when the host probes.
    gadgets::fill_enc_mem(tc, 0, p.offset, 8);
    sbi(tc, lc, SbiCall::CreateEnclave, 0)?;
    sbi(tc, lc, SbiCall::RunEnclave, 0)?;
    lc.apply(0, SbiCall::StopEnclave)
        .map_err(|_| SkipReason::InvalidCombo)?;
    // Probe the *last* store (deepest in the buffer).
    let addr = layout::enclave_data(0) + p.offset + 8 * 7;
    emit_probe(tc, AccessPath::LoadSbForward, p, addr);
    Ok(())
}

fn assemble_ptw_legal_case(
    tc: &mut TestCase,
    path: AccessPath,
    p: &CaseParams,
    lc: &mut LifecycleTracker,
) -> Result<(), SkipReason> {
    gadgets::setup_host_vm(tc);
    match p.victim {
        Victim::Enclave => {
            run_victim_enclave(tc, p, lc, false)?;
            // A translated probe of enclave memory: the walk itself is
            // legal (the malicious OS maps the enclave), the final access
            // PMP-faults.
            let addr = layout::enclave_data(0) + p.offset;
            if path == AccessPath::PtwCached {
                // Prime the PTW cache with a neighbouring translation first.
                tc.push(
                    Actor::Host,
                    Step::Load {
                        addr: addr ^ 0x1000,
                        width: MemWidth::D,
                    },
                );
            }
            emit_probe(tc, path, p, addr);
        }
        Victim::SecurityMonitor => {
            let addr = layout::SM_BASE + 0x6000 + p.offset;
            // SM region is unmapped in the host tables — rely on the PMP
            // fault from the identity-mapped shared window instead: probe
            // via the physical alias (no mapping -> page fault path).
            emit_probe(tc, path, p, addr);
        }
        Victim::Host => return Err(SkipReason::InvalidCombo),
    }
    Ok(())
}

fn assemble_ptw_poisoned_case(
    tc: &mut TestCase,
    p: &CaseParams,
    lc: &mut LifecycleTracker,
) -> Result<(), SkipReason> {
    gadgets::setup_host_vm(tc);
    let secret_addr = match p.victim {
        Victim::Enclave => {
            run_victim_enclave(tc, p, lc, false)?;
            layout::enclave_data(0) + p.offset
        }
        Victim::SecurityMonitor => layout::SM_KEY + p.offset,
        Victim::Host => return Err(SkipReason::InvalidCombo),
    };
    let root = secret_addr & !0xFFF;
    gadgets::poison_satp(tc, root);
    // Choose the arbitrary VA so the walk's level-2 PTE fetch lands exactly
    // on the seeded secret: pte_addr = root + vpn2 * 8 (paper Figure 3's
    // `LD a5, Arb_Addr`). The VA is never mapped, so the TLB misses.
    let vpn2 = (secret_addr & 0xFFF) / 8;
    tc.push(
        Actor::Host,
        Step::Load {
            addr: vpn2 << 30,
            width: MemWidth::D,
        },
    );
    gadgets::restore_satp(tc);
    Ok(())
}

fn assemble_prefetch_case(
    tc: &mut TestCase,
    p: &CaseParams,
    lc: &mut LifecycleTracker,
) -> Result<(), SkipReason> {
    let _ = lc;
    // Secrets live in the *first* line of the enclave region; the enclave
    // never executes (a created-but-not-run enclave, as in Figure 2).
    for k in 0..SECRET_COUNT {
        tc.secrets
            .seed(layout::enclave_base(0) + 8 * k, Domain::Enclave(0));
    }
    tc.push(
        Actor::Host,
        Step::Sbi {
            call: SbiCall::CreateEnclave,
            enclave: 0,
        },
    );
    gadgets::touch_page_boundary(tc, 0);
    // Give the asynchronous prefetch time to land before the test ends.
    gadgets::spin_delay(tc, Actor::Host, 64);
    let _ = p;
    Ok(())
}

fn assemble_scrub_case(
    tc: &mut TestCase,
    p: &CaseParams,
    lc: &mut LifecycleTracker,
) -> Result<(), SkipReason> {
    run_victim_enclave(tc, p, lc, false)?;
    // The paper's Fill_Enc_Mem populates enclave memory throughout; in
    // particular the *tail* of the region matters — those are the lines the
    // scrub's final write-allocate refills pull into the LFB, where they
    // persist after the switch back to the host (Figure 4).
    let end = layout::enclave_base(0) + layout::ENCLAVE_SIZE;
    let mut a = end - 8 * 64; // the last eight cache lines
    while a < end {
        tc.secrets.seed(a, Domain::Enclave(0));
        a += 8;
    }
    sbi(tc, lc, SbiCall::DestroyEnclave, 0)?;
    // Let the scrub's stores drain while the host idles in untrusted mode.
    gadgets::spin_delay(tc, Actor::Host, 128);
    Ok(())
}

fn assemble_hpc_case(
    tc: &mut TestCase,
    p: &CaseParams,
    cfg: &CoreConfig,
    lc: &mut LifecycleTracker,
) -> Result<(), SkipReason> {
    // The enclave produces characteristic counter activity: misses + a walk.
    gadgets::preload_enc_mem(tc, 0, p.offset, SECRET_COUNT);
    gadgets::enc_mem_to_l1(tc, 0, p.offset, SECRET_COUNT);
    gadgets::enc_branch(tc, 0, 0x200, true);
    sbi(tc, lc, SbiCall::CreateEnclave, 0)?;
    sbi(tc, lc, SbiCall::RunEnclave, 0)?;
    lc.apply(0, SbiCall::StopEnclave)
        .map_err(|_| SkipReason::InvalidCombo)?;
    if p.restricted_counters {
        // Figure 6 variant: counters privileged; the read transiently
        // writes back; an interrupt spills the context through the store
        // buffer; the host then probes the save area.
        gadgets::read_perf_counters(tc, Actor::Host, cfg.hpm_counters.min(2));
        gadgets::spin_delay(tc, Actor::Host, 32);
        gadgets::read_perf_counters(tc, Actor::Host, cfg.hpm_counters.min(2));
        // Probe the interrupt save slot of a5 (x15).
        let slot = layout::SM_SCRATCH + layout::scratch::IRQ_SAVE + (15 - 1) * 8;
        tc.push(
            Actor::Host,
            Step::Load {
                addr: slot,
                width: MemWidth::D,
            },
        );
        tc.push(Actor::Host, Step::ConsumeLast);
    } else {
        gadgets::read_perf_counters(tc, Actor::Host, cfg.hpm_counters);
    }
    Ok(())
}

fn assemble_btb_case(
    tc: &mut TestCase,
    p: &CaseParams,
    lc: &mut LifecycleTracker,
) -> Result<(), SkipReason> {
    // Offset chosen inside the code area, clear of the emitted prologue.
    let branch_off = 0x400 + (p.offset & 0x3F0);
    // Prime: host taken branch at the colliding offset.
    gadgets::read_cycle(tc, Actor::Host);
    gadgets::prime_ubtb(tc, branch_off);
    // Enclave executes a conditional branch at the same region offset.
    gadgets::enc_branch(tc, 0, branch_off, true);
    sbi(tc, lc, SbiCall::CreateEnclave, 0)?;
    sbi(tc, lc, SbiCall::RunEnclave, 0)?;
    lc.apply(0, SbiCall::StopEnclave)
        .map_err(|_| SkipReason::InvalidCombo)?;
    // Probe: the host branch again, timing it.
    gadgets::read_cycle(tc, Actor::Host);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boom() -> CoreConfig {
        CoreConfig::boom()
    }

    #[test]
    fn every_existing_path_assembles_with_defaults() {
        for path in AccessPath::all() {
            let r = assemble_case(*path, CaseParams::default(), &boom());
            if path.exists_on(&boom()) {
                assert!(r.is_ok(), "{path:?} failed to assemble");
            } else {
                assert_eq!(r.err(), Some(SkipReason::PathAbsent));
            }
        }
    }

    #[test]
    fn sb_forward_assembles_on_xiangshan_only() {
        let xs = CoreConfig::xiangshan();
        assert!(assemble_case(AccessPath::LoadSbForward, CaseParams::default(), &xs).is_ok());
        assert_eq!(
            assemble_case(AccessPath::LoadSbForward, CaseParams::default(), &boom()).err(),
            Some(SkipReason::PathAbsent)
        );
    }

    #[test]
    fn invalid_combos_are_pruned() {
        let p = CaseParams {
            victim: Victim::Host,
            attacker: Attacker::Host,
            ..Default::default()
        };
        assert_eq!(
            assemble_case(AccessPath::LoadL1Hit, p, &boom()).err(),
            Some(SkipReason::InvalidCombo)
        );
        let p = CaseParams {
            victim: Victim::SecurityMonitor,
            ..Default::default()
        };
        assert_eq!(
            assemble_case(AccessPath::LoadSbForward, p, &CoreConfig::xiangshan()).err(),
            Some(SkipReason::InvalidCombo)
        );
    }

    #[test]
    fn d6_and_d7_directions_assemble() {
        // D6: enclave 1 probes enclave 0.
        let p = CaseParams {
            attacker: Attacker::Enclave1,
            ..Default::default()
        };
        let tc = assemble_case(AccessPath::LoadMemMiss, p, &boom()).expect("D6 case");
        assert!(
            !tc.enclave_steps[1].is_empty(),
            "attacker enclave has a program"
        );
        // D7: enclave 1 probes host data.
        let p = CaseParams {
            victim: Victim::Host,
            attacker: Attacker::Enclave1,
            ..Default::default()
        };
        let tc = assemble_case(AccessPath::LoadMemMiss, p, &boom()).expect("D7 case");
        assert!(tc
            .secrets
            .records()
            .iter()
            .any(|r| r.owner == Domain::Untrusted));
    }

    #[test]
    fn lifecycle_variants_produce_valid_sequences() {
        for lifecycle in [Lifecycle::Stop, Lifecycle::StopResumeStop, Lifecycle::Exit] {
            let p = CaseParams {
                lifecycle,
                ..Default::default()
            };
            assemble_case(AccessPath::LoadL1Hit, p, &boom())
                .unwrap_or_else(|e| panic!("{lifecycle:?}: {e:?}"));
        }
    }

    #[test]
    fn poisoned_root_case_points_satp_at_victim() {
        let tc =
            assemble_case(AccessPath::PtwPoisonedRoot, CaseParams::default(), &boom()).unwrap();
        assert!(tc.host_sv39);
        assert!(tc
            .host_steps
            .iter()
            .any(|s| matches!(s, Step::SetSatpSv39 { root_pa } if *root_pa & 0xFFF == 0)));
        assert!(tc.host_steps.iter().any(|s| matches!(s, Step::RestoreSatp)));
    }

    #[test]
    fn names_are_distinct_across_params() {
        let a = assemble_case(AccessPath::LoadL1Hit, CaseParams::default(), &boom()).unwrap();
        let b = assemble_case(
            AccessPath::LoadL1Hit,
            CaseParams {
                offset: 8,
                ..Default::default()
            },
            &boom(),
        )
        .unwrap();
        assert_ne!(a.name, b.name);
    }
}
